//! A uniform registry over the three benchmark kernels.
//!
//! The experiment harnesses, integration tests and examples all need to treat
//! "a benchmark" generically: build the program at some scale, run it under
//! the ASC runtime, and verify that the final state still contains the right
//! answer. [`BuiltWorkload`] packages exactly that.

use crate::collatz::{self, CollatzParams};
use crate::error::WorkloadResult;
use crate::ising::{self, IsingParams};
use crate::logistic_map::{self, LogisticMapParams};
use crate::mm2::{self, Mm2Params};
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;
use std::fmt;

/// The three benchmarks evaluated in the paper, plus the logistic-map
/// chaotic kernel (the paper names chaotic maps among its candidates; this
/// one stresses the predictors with a high-entropy excitation pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Pointer-chasing linked-list energy minimisation.
    Ising,
    /// Polybench-style `D = alpha*A*B*C + beta*D`.
    Mm2,
    /// Collatz conjecture property testing.
    Collatz,
    /// Fixed-point logistic-map iteration in the chaotic regime.
    LogisticMap,
}

impl Benchmark {
    /// All benchmarks: the paper's three in table order, then the chaotic
    /// extension.
    pub const ALL: [Benchmark; 4] =
        [Benchmark::Ising, Benchmark::Mm2, Benchmark::Collatz, Benchmark::LogisticMap];

    /// The display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Ising => "Ising",
            Benchmark::Mm2 => "2mm",
            Benchmark::Collatz => "Collatz",
            Benchmark::LogisticMap => "Logistic",
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How big a problem instance to build.
///
/// `Tiny` suits unit tests (well under a million instructions), `Small` suits
/// integration tests and examples, `Medium` suits the experiment harnesses
/// that regenerate the paper's tables and figures, and `Large` approaches the
/// relative structure of the paper's runs while staying laptop-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Hundreds of thousands of instructions or fewer.
    Tiny,
    /// A few million instructions.
    Small,
    /// Tens of millions of instructions.
    Medium,
    /// On the order of a hundred million instructions.
    Large,
}

/// A benchmark program built at a particular scale, with enough metadata to
/// run it, size it and verify its final state.
pub struct BuiltWorkload {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The scale it was built at.
    pub scale: Scale,
    /// The loadable program image.
    pub program: Program,
    /// Human-readable parameter description for reports.
    pub description: String,
    /// Estimated dynamic instruction count (order of magnitude).
    pub estimated_instructions: u64,
    verifier: Verifier,
}

/// Checks a final state against the pure-Rust reference result.
type Verifier = Box<dyn Fn(&Program, &StateVector) -> bool + Send + Sync>;

impl fmt::Debug for BuiltWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuiltWorkload")
            .field("benchmark", &self.benchmark)
            .field("scale", &self.scale)
            .field("description", &self.description)
            .field("estimated_instructions", &self.estimated_instructions)
            .finish_non_exhaustive()
    }
}

impl BuiltWorkload {
    /// Checks that a final state vector contains the benchmark's correct
    /// answer (as computed by the pure-Rust reference implementation).
    pub fn verify(&self, state: &StateVector) -> bool {
        (self.verifier)(&self.program, state)
    }
}

/// Parameter presets for every benchmark × scale combination.
pub fn ising_params(scale: Scale) -> IsingParams {
    match scale {
        Scale::Tiny => IsingParams { nodes: 16, spins: 16, reps: 2, seed: 0x5eed },
        Scale::Small => IsingParams { nodes: 64, spins: 32, reps: 8, seed: 0x5eed },
        Scale::Medium => IsingParams { nodes: 250, spins: 48, reps: 24, seed: 0x5eed },
        Scale::Large => IsingParams { nodes: 2000, spins: 64, reps: 24, seed: 0x5eed },
    }
}

/// Parameter presets for 2mm.
pub fn mm2_params(scale: Scale) -> Mm2Params {
    match scale {
        Scale::Tiny => Mm2Params { n: 10, alpha: 3, beta: 2 },
        Scale::Small => Mm2Params { n: 24, alpha: 3, beta: 2 },
        Scale::Medium => Mm2Params { n: 48, alpha: 3, beta: 2 },
        Scale::Large => Mm2Params { n: 96, alpha: 3, beta: 2 },
    }
}

/// Parameter presets for the logistic map. The inner loop is kept short
/// enough that the outer-loop head recurs densely inside the recognizer's
/// profiling window (its superstep still clears every scale's
/// `min_superstep`); the chaotic excitations live at that head either way.
pub fn logistic_map_params(scale: Scale) -> LogisticMapParams {
    match scale {
        Scale::Tiny => LogisticMapParams { seeds: 600, steps: 20 },
        Scale::Small => LogisticMapParams { seeds: 5_000, steps: 50 },
        Scale::Medium => LogisticMapParams { seeds: 15_000, steps: 100 },
        Scale::Large => LogisticMapParams { seeds: 50_000, steps: 150 },
    }
}

/// Parameter presets for Collatz.
pub fn collatz_params(scale: Scale) -> CollatzParams {
    match scale {
        Scale::Tiny => CollatzParams { start: 2, count: 300 },
        Scale::Small => CollatzParams { start: 2, count: 3_000 },
        Scale::Medium => CollatzParams { start: 2, count: 20_000 },
        Scale::Large => CollatzParams { start: 2, count: 120_000 },
    }
}

/// Builds a benchmark at the requested scale.
///
/// # Errors
/// Propagates assembly or parameter errors from the benchmark generators.
pub fn build(benchmark: Benchmark, scale: Scale) -> WorkloadResult<BuiltWorkload> {
    match benchmark {
        Benchmark::Ising => {
            let params = ising_params(scale);
            let program = ising::program(&params)?;
            let expected = ising::reference(&params);
            Ok(BuiltWorkload {
                benchmark,
                scale,
                program,
                description: format!(
                    "{} nodes x {} spins, {} passes",
                    params.nodes, params.spins, params.reps
                ),
                estimated_instructions: ising::estimated_instructions(&params),
                verifier: Box::new(move |program, state| {
                    ising::read_result(program, state, &params)
                        .map(|result| result == expected)
                        .unwrap_or(false)
                }),
            })
        }
        Benchmark::Mm2 => {
            let params = mm2_params(scale);
            let program = mm2::program(&params)?;
            let expected = mm2::reference(&params);
            Ok(BuiltWorkload {
                benchmark,
                scale,
                program,
                description: format!(
                    "{n}x{n} matrices, alpha={a}, beta={b}",
                    n = params.n,
                    a = params.alpha,
                    b = params.beta
                ),
                estimated_instructions: mm2::estimated_instructions(&params),
                verifier: Box::new(move |program, state| {
                    mm2::read_result(program, state, &params)
                        .map(|result| result == expected)
                        .unwrap_or(false)
                }),
            })
        }
        Benchmark::Collatz => {
            let params = collatz_params(scale);
            let program = collatz::program(&params)?;
            let expected = collatz::reference(&params);
            Ok(BuiltWorkload {
                benchmark,
                scale,
                program,
                description: format!("integers {}..{}", params.start, params.start + params.count),
                estimated_instructions: collatz::estimated_instructions(&params),
                verifier: Box::new(move |program, state| {
                    collatz::read_result(program, state)
                        .map(|result| result == expected)
                        .unwrap_or(false)
                }),
            })
        }
        Benchmark::LogisticMap => {
            let params = logistic_map_params(scale);
            let program = logistic_map::program(&params)?;
            let expected = logistic_map::reference(&params);
            Ok(BuiltWorkload {
                benchmark,
                scale,
                program,
                description: format!("{} seeds x {} steps, r=3.99", params.seeds, params.steps),
                estimated_instructions: logistic_map::estimated_instructions(&params),
                verifier: Box::new(move |program, state| {
                    logistic_map::read_result(program, state)
                        .map(|result| result == expected)
                        .unwrap_or(false)
                }),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::machine::Machine;

    #[test]
    fn every_benchmark_builds_at_tiny_scale_and_verifies() {
        for benchmark in Benchmark::ALL {
            let workload = build(benchmark, Scale::Tiny).unwrap();
            let mut machine = Machine::load(&workload.program).unwrap();
            machine.run_to_halt(50_000_000).unwrap();
            assert!(workload.verify(machine.state()), "{benchmark} did not verify at tiny scale");
            // A wrong state must not verify.
            let fresh = workload.program.initial_state().unwrap();
            assert!(!workload.verify(&fresh));
        }
    }

    #[test]
    fn scales_are_ordered_by_estimated_work() {
        for benchmark in Benchmark::ALL {
            let tiny = build(benchmark, Scale::Tiny).unwrap().estimated_instructions;
            let small = build(benchmark, Scale::Small).unwrap().estimated_instructions;
            let medium = build(benchmark, Scale::Medium).unwrap().estimated_instructions;
            assert!(tiny < small && small < medium, "{benchmark} scales out of order");
        }
    }

    #[test]
    fn names_match_paper_tables() {
        // The paper's three benchmarks keep their table order; the chaotic
        // extension rides at the end.
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["Ising", "2mm", "Collatz", "Logistic"]);
    }
}
