//! Error types for workload construction and result extraction.

use asc_asm::AsmError;
use asc_tvm::error::VmError;
use std::fmt;

/// Errors raised while building a benchmark program or reading its results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The generated assembly failed to assemble (a bug in the generator).
    Assembly(AsmError),
    /// The simulator reported an error while reading results.
    Vm(VmError),
    /// A result symbol expected by the reader is missing from the program.
    MissingSymbol(String),
    /// Parameters are outside the supported range.
    InvalidParams(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Assembly(e) => write!(f, "generated assembly failed to assemble: {e}"),
            WorkloadError::Vm(e) => write!(f, "simulator error: {e}"),
            WorkloadError::MissingSymbol(s) => write!(f, "program does not export symbol `{s}`"),
            WorkloadError::InvalidParams(msg) => write!(f, "invalid workload parameters: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Assembly(e) => Some(e),
            WorkloadError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Assembly(e)
    }
}

impl From<VmError> for WorkloadError {
    fn from(e: VmError) -> Self {
        WorkloadError::Vm(e)
    }
}

/// Convenience alias for workload results.
pub type WorkloadResult<T> = Result<T, WorkloadError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = WorkloadError::MissingSymbol("answer".into());
        assert!(err.to_string().contains("answer"));
        let err = WorkloadError::Vm(VmError::DivideByZero { addr: 4 });
        assert!(std::error::Error::source(&err).is_some());
    }
}
