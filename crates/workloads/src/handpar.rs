//! Hand-parallelized baselines.
//!
//! Figure 4 of the paper compares LASC against a *hand-parallelized* version
//! of the Ising kernel (partition the linked list once, then process the
//! partitions on separate cores). This module provides both:
//!
//! * real multi-threaded Rust implementations of the benchmark kernels, which
//!   are what a programmer would actually write (used by tests to confirm the
//!   parallelization is semantics-preserving), and
//! * an analytic speedup model (sequential partitioning pass + perfectly
//!   parallel work) used by the figure harnesses, mirroring how the paper's
//!   hand-parallelized line was obtained on its 32-core server.

use crate::collatz::CollatzParams;
use crate::ising::{IsingParams, IsingResult};
use std::thread;

/// Analytic speedup of a hand-parallelized program on `cores` cores.
///
/// `sequential_fraction` is the fraction of the total work that cannot be
/// parallelized (the partitioning pass for Ising, loop setup for 2mm and
/// Collatz). This is Amdahl's law, which is exactly the model behind the
/// paper's near-ideal hand-parallelized line.
pub fn amdahl_speedup(cores: usize, sequential_fraction: f64) -> f64 {
    assert!(cores >= 1, "need at least one core");
    let s = sequential_fraction.clamp(0.0, 1.0);
    1.0 / (s + (1.0 - s) / cores as f64)
}

/// Hand-parallelized Ising: partition the node list across threads, find each
/// partition's minimum, reduce. Produces exactly the same result as the
/// sequential reference.
pub fn ising_parallel(params: &IsingParams, threads: usize) -> IsingResult {
    let threads = threads.max(1).min(params.nodes.max(1));
    // Recreate every node's energy exactly as the kernel does, but assign
    // contiguous chunks of the list to worker threads. The spin generator is
    // sequential, so (as a real programmer would) we pre-generate the spins
    // during the "partitioning pass" and hand each thread its slice.
    let mut seed = params.seed;
    let mut all_spins: Vec<Vec<i32>> = Vec::with_capacity(params.nodes);
    for _ in 0..params.nodes {
        let mut spins = Vec::with_capacity(params.spins);
        for _ in 0..params.spins {
            seed = seed.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            spins.push(if (seed >> 16) & 1 == 1 { 1 } else { -1 });
        }
        all_spins.push(spins);
    }

    let chunk = params.nodes.div_ceil(threads);
    let reps = params.reps;
    let spins_per_node = params.spins;
    let mut partials: Vec<(i32, usize)> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slice) in all_spins.chunks(chunk).enumerate() {
            handles.push(scope.spawn(move || {
                let mut best = (i32::MAX, 0usize);
                for (local, spins) in slice.iter().enumerate() {
                    let mut energy = 0i32;
                    for _ in 0..reps {
                        for i in 0..spins_per_node - 1 {
                            energy = energy.wrapping_add(spins[i].wrapping_mul(spins[i + 1]));
                        }
                    }
                    let energy = energy.wrapping_neg();
                    let index = t * chunk + local;
                    if energy < best.0 {
                        best = (energy, index);
                    }
                }
                best
            }));
        }
        for handle in handles {
            partials.push(handle.join().expect("worker thread panicked"));
        }
    });
    let (min_energy, min_index) = partials
        .into_iter()
        .min_by_key(|(energy, index)| (*energy, *index))
        .unwrap_or((i32::MAX, 0));
    IsingResult { min_energy, min_index }
}

/// Hand-parallelized Collatz: split the integer range across threads and sum
/// the verified counts. Returns the number of verified integers.
pub fn collatz_parallel(params: &CollatzParams, threads: usize) -> u32 {
    let threads = threads.max(1).min(params.count.max(1) as usize);
    let chunk = (params.count as usize).div_ceil(threads) as u32;
    let mut total = 0u32;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads as u32 {
            let start = params.start + t * chunk;
            let count = chunk.min(params.count.saturating_sub(t * chunk));
            handles.push(scope.spawn(move || {
                let mut verified = 0u32;
                for i in 0..count {
                    let mut n = start.wrapping_add(i);
                    while n != 1 {
                        n = if n % 2 == 0 { n / 2 } else { n.wrapping_mul(3).wrapping_add(1) };
                    }
                    verified += 1;
                }
                verified
            }));
        }
        for handle in handles {
            total += handle.join().expect("worker thread panicked");
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ising::reference as ising_reference;

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_speedup(1, 0.01) - 1.0).abs() < 1e-9);
        assert!((amdahl_speedup(32, 0.0) - 32.0).abs() < 1e-9);
        // With a 5% sequential part the asymptote is 20x.
        assert!(amdahl_speedup(10_000, 0.05) < 20.0);
        assert!(amdahl_speedup(10_000, 0.05) > 19.0);
    }

    #[test]
    fn ising_parallel_matches_sequential_reference() {
        let params = IsingParams { nodes: 37, spins: 12, reps: 2, seed: 77 };
        let sequential = ising_reference(&params);
        for threads in [1, 2, 4, 7] {
            assert_eq!(ising_parallel(&params, threads), sequential);
        }
    }

    #[test]
    fn collatz_parallel_counts_everything() {
        let params = CollatzParams { start: 5, count: 100 };
        for threads in [1, 3, 8] {
            assert_eq!(collatz_parallel(&params, threads), 100);
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn amdahl_rejects_zero_cores() {
        amdahl_speedup(0, 0.1);
    }
}
