//! The Ising benchmark kernel (paper §5.1, first benchmark).
//!
//! A pointer-based condensed-matter kernel: the program builds a linked list
//! of spin configurations (bump-allocated, so node addresses are regular even
//! though the code only ever follows pointers), then walks the list computing
//! a computationally expensive energy for each configuration and tracking the
//! configuration with the lowest energy. Programs like this defeat static
//! parallelizing compilers because of pointer aliasing; ASC parallelizes it
//! by *predicting the addresses of the linked-list elements* (§5.1), and the
//! rarely-changing minimum trackers are exactly where the simple
//! mean/weatherman predictors earn their keep (Figure 3).

use crate::error::{WorkloadError, WorkloadResult};
use asc_asm::Assembler;
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;

/// Parameters of the Ising kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsingParams {
    /// Number of linked-list nodes (spin configurations).
    pub nodes: usize,
    /// Number of spins per configuration.
    pub spins: usize,
    /// Number of passes the energy computation makes over a configuration
    /// (scales the per-node compute cost, i.e. the superstep length).
    pub reps: usize,
    /// Seed of the linear congruential generator that fills the spins.
    pub seed: u32,
}

impl Default for IsingParams {
    fn default() -> Self {
        IsingParams { nodes: 64, spins: 32, reps: 8, seed: 0x1234_5678 }
    }
}

impl IsingParams {
    /// Size in bytes of one node: the spin words plus the `next` pointer.
    pub fn node_size(&self) -> usize {
        self.spins * 4 + 4
    }
}

/// Result of the Ising kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsingResult {
    /// Lowest energy found along the list.
    pub min_energy: i32,
    /// Zero-based index of the node with the lowest energy.
    pub min_index: usize,
}

/// The linear congruential generator used by both the kernel and the
/// reference implementation (glibc constants).
fn lcg_next(seed: u32) -> u32 {
    seed.wrapping_mul(1_103_515_245).wrapping_add(12_345)
}

fn spin_from(seed: u32) -> i32 {
    if (seed >> 16) & 1 == 1 {
        1
    } else {
        -1
    }
}

/// Generates the TVM assembly source for the kernel.
pub fn source(params: &IsingParams) -> String {
    let spins = params.spins;
    let nodes = params.nodes;
    let reps = params.reps;
    let node_size = params.node_size();
    let next_offset = spins * 4;
    let last_spin = spins - 1;
    format!(
        r#"; Ising kernel: walk a linked list of {nodes} spin configurations,
; {spins} spins each, {reps} energy passes per node.
.text
main:
    ; ---- build the linked list (bump allocation from `heap`) ----
    movi r1, 0              ; node index
    movi r2, {seed}         ; LCG state
init_node:
    mul  r3, r1, {node_size}
    movi r4, heap
    add  r3, r3, r4         ; r3 = &node[i]
    movi r5, 0              ; spin index
init_spin:
    mul  r2, r2, 1103515245
    add  r2, r2, 12345
    shr  r6, r2, 16
    and  r6, r6, 1
    mul  r6, r6, 2
    sub  r6, r6, 1          ; spin in {{-1, +1}}
    mul  r7, r5, 4
    add  r7, r7, r3
    stw  [r7], r6
    add  r5, r5, 1
    cmpi r5, {spins}
    jlt  init_spin
    add  r6, r1, 1          ; link to the next node (0 for the last)
    cmpi r6, {nodes}
    jlt  link_next
    movi r7, 0
    jmp  store_next
link_next:
    mul  r7, r6, {node_size}
    movi r5, heap
    add  r7, r7, r5
store_next:
    stw  [r3+{next_offset}], r7
    add  r1, r1, 1
    cmpi r1, {nodes}
    jlt  init_node
    ; ---- walk the list, tracking the minimum-energy configuration ----
    movi r1, heap           ; cur = head
    movi r11, 0x7fffffff    ; minimum energy so far
    movi r12, 0             ; pointer to the minimum-energy node
walk:
    cmpi r1, 0
    jeq  walk_done
    call energy             ; r0 = energy(cur)
    cmp  r0, r11
    jge  no_update
    mov  r11, r0
    mov  r12, r1
no_update:
    ldw  r1, [r1+{next_offset}]
    jmp  walk
walk_done:
    movi r2, min_energy
    stw  [r2], r11
    movi r2, min_node
    stw  [r2], r12
    halt

; energy(cur in r1) -> r0, clobbers r2-r6
energy:
    movi r0, 0
    movi r2, 0              ; pass counter
e_pass:
    movi r3, 0              ; spin index
e_spin:
    mul  r4, r3, 4
    add  r4, r4, r1
    ldw  r5, [r4]           ; s[i]
    ldw  r6, [r4+4]         ; s[i+1]
    mul  r5, r5, r6
    add  r0, r0, r5
    add  r3, r3, 1
    cmpi r3, {last_spin}
    jlt  e_spin
    add  r2, r2, 1
    cmpi r2, {reps}
    jlt  e_pass
    neg  r0, r0             ; lower energy = more aligned neighbours
    ret

.data
min_energy:
    .word 0
min_node:
    .word 0
heap:
    .space {heap_size}
"#,
        nodes = nodes,
        spins = spins,
        reps = reps,
        seed = params.seed,
        node_size = node_size,
        next_offset = next_offset,
        last_spin = last_spin,
        heap_size = nodes * node_size,
    )
}

/// Assembles the kernel into a loadable program.
///
/// # Errors
/// Returns [`WorkloadError::InvalidParams`] for degenerate sizes and
/// [`WorkloadError::Assembly`] if the generated source fails to assemble.
pub fn program(params: &IsingParams) -> WorkloadResult<Program> {
    if params.nodes == 0 || params.spins < 2 || params.reps == 0 {
        return Err(WorkloadError::InvalidParams(format!(
            "need nodes >= 1, spins >= 2, reps >= 1; got {params:?}"
        )));
    }
    Assembler::new().headroom(16 * 1024).assemble(&source(params)).map_err(WorkloadError::from)
}

/// Pure-Rust reference implementation with identical arithmetic.
pub fn reference(params: &IsingParams) -> IsingResult {
    let mut seed = params.seed;
    let mut min_energy = i32::MAX;
    let mut min_index = 0usize;
    for node in 0..params.nodes {
        let mut spins = Vec::with_capacity(params.spins);
        for _ in 0..params.spins {
            seed = lcg_next(seed);
            spins.push(spin_from(seed));
        }
        let mut energy = 0i32;
        for _ in 0..params.reps {
            for i in 0..params.spins - 1 {
                energy = energy.wrapping_add(spins[i].wrapping_mul(spins[i + 1]));
            }
        }
        let energy = energy.wrapping_neg();
        if energy < min_energy {
            min_energy = energy;
            min_index = node;
        }
    }
    IsingResult { min_energy, min_index }
}

/// Reads the kernel's result back out of a final state vector.
///
/// # Errors
/// Returns [`WorkloadError::MissingSymbol`] when the program was not built by
/// [`program`], or a VM error if memory reads fail.
pub fn read_result(
    program: &Program,
    state: &StateVector,
    params: &IsingParams,
) -> WorkloadResult<IsingResult> {
    let energy_addr = program
        .symbol("min_energy")
        .ok_or_else(|| WorkloadError::MissingSymbol("min_energy".into()))?;
    let node_addr = program
        .symbol("min_node")
        .ok_or_else(|| WorkloadError::MissingSymbol("min_node".into()))?;
    let heap = program.symbol("heap").ok_or_else(|| WorkloadError::MissingSymbol("heap".into()))?;
    let min_energy = state.load_word(energy_addr)? as i32;
    let min_ptr = state.load_word(node_addr)?;
    let min_index = (min_ptr.saturating_sub(heap) as usize) / params.node_size();
    Ok(IsingResult { min_energy, min_index })
}

/// An estimate of the kernel's total instruction count.
pub fn estimated_instructions(params: &IsingParams) -> u64 {
    let init = params.nodes as u64 * (params.spins as u64 * 11 + 12);
    let energy = params.reps as u64 * (params.spins as u64 - 1) * 9 + params.reps as u64 * 3 + 5;
    let walk = params.nodes as u64 * (energy + 8);
    init + walk + 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::machine::Machine;

    #[test]
    fn kernel_matches_reference_small() {
        let params = IsingParams { nodes: 8, spins: 8, reps: 2, seed: 42 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(10_000_000).unwrap();
        let got = read_result(&program, machine.state(), &params).unwrap();
        assert_eq!(got, reference(&params));
    }

    #[test]
    fn kernel_matches_reference_default_params() {
        let params = IsingParams { nodes: 16, spins: 16, reps: 3, seed: 0xdead_beef };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(50_000_000).unwrap();
        let got = read_result(&program, machine.state(), &params).unwrap();
        assert_eq!(got, reference(&params));
    }

    #[test]
    fn reference_minimum_is_global() {
        let params = IsingParams { nodes: 20, spins: 10, reps: 1, seed: 7 };
        let result = reference(&params);
        // Recompute every node energy independently and check the reported
        // minimum really is the smallest (and the first occurrence).
        let mut seed = params.seed;
        let mut energies = Vec::new();
        for _ in 0..params.nodes {
            let mut spins = Vec::new();
            for _ in 0..params.spins {
                seed = lcg_next(seed);
                spins.push(spin_from(seed));
            }
            let mut e = 0i32;
            for i in 0..params.spins - 1 {
                e += spins[i] * spins[i + 1];
            }
            energies.push(-e);
        }
        let best = *energies.iter().min().unwrap();
        assert_eq!(result.min_energy, best);
        assert_eq!(energies[result.min_index], best);
        assert!(energies[..result.min_index].iter().all(|e| *e > best));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(program(&IsingParams { nodes: 0, spins: 8, reps: 1, seed: 1 }).is_err());
        assert!(program(&IsingParams { nodes: 4, spins: 1, reps: 1, seed: 1 }).is_err());
        assert!(program(&IsingParams { nodes: 4, spins: 8, reps: 0, seed: 1 }).is_err());
    }

    #[test]
    fn estimated_instructions_close_to_actual() {
        let params = IsingParams { nodes: 10, spins: 12, reps: 2, seed: 3 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        let actual = machine.run_to_halt(10_000_000).unwrap();
        let estimate = estimated_instructions(&params);
        let ratio = estimate as f64 / actual as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "estimate {estimate} vs actual {actual}");
    }

    #[test]
    fn different_seeds_give_different_minima() {
        let a = reference(&IsingParams { nodes: 32, spins: 16, reps: 1, seed: 1 });
        let b = reference(&IsingParams { nodes: 32, spins: 16, reps: 1, seed: 999 });
        // Not a strict requirement of the kernel, but with 32 nodes the
        // minima coinciding in both index and energy would be suspicious.
        assert!(a != b);
    }
}
