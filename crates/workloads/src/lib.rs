//! # asc-workloads — the paper's benchmark kernels for the TVM
//!
//! The ASC paper evaluates three unmodified sequential programs (§5.1):
//! `Ising` (pointer-based linked-list energy minimisation), `2mm`
//! (Polybench `D = alpha*A*B*C + beta*D`) and `Collatz` (chaotic property
//! testing). This crate re-authors those kernels for the TVM ISA — plus a
//! logistic-map chaotic kernel from the paper's wider candidate list, whose
//! high-entropy excitations stress the predictors — generates them at
//! several problem scales, and pairs each with a pure-Rust reference
//! implementation so every run of the ASC runtime can be checked for
//! correctness — speculation must never change program results.
//!
//! ```
//! use asc_workloads::registry::{build, Benchmark, Scale};
//! use asc_tvm::machine::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = build(Benchmark::Collatz, Scale::Tiny)?;
//! let mut machine = Machine::load(&workload.program)?;
//! machine.run_to_halt(100_000_000)?;
//! assert!(workload.verify(machine.state()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collatz;
pub mod error;
pub mod handpar;
pub mod ising;
pub mod logistic_map;
pub mod mm2;
pub mod registry;

pub use error::{WorkloadError, WorkloadResult};
pub use registry::{build, Benchmark, BuiltWorkload, Scale};
