//! The Collatz benchmark kernel (paper §5.1, third benchmark).
//!
//! The outer loop iterates over a range of positive integers; the inner loop
//! performs the notoriously chaotic Collatz property test (`n/2` when even,
//! `3n+1` when odd) until the value converges to 1, then counts the integer
//! as verified. The outer loop is trivially parallel — which the ASC
//! recognizer discovers automatically — and the chaotic inner loop contains
//! shared final subsequences that the trajectory cache memoizes (Figure 6).

use crate::error::{WorkloadError, WorkloadResult};
use asc_asm::Assembler;
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;

/// Parameters of the Collatz kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollatzParams {
    /// First integer tested.
    pub start: u32,
    /// Number of consecutive integers tested.
    pub count: u32,
}

impl Default for CollatzParams {
    fn default() -> Self {
        // A laptop-scale default; the experiment harnesses pick their own sizes.
        CollatzParams { start: 2, count: 200 }
    }
}

/// Result of the Collatz kernel: what the program writes back to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollatzResult {
    /// Number of integers whose sequence converged to 1.
    pub verified: u32,
    /// Largest number of inner-loop steps observed for any tested integer.
    pub max_steps: u32,
}

/// Generates the TVM assembly source for the kernel.
///
/// The program mirrors the paper's 15-line C kernel: an outer loop over
/// integers and an inner `while (n != 1)` loop applying the 3n+1 rule.
pub fn source(params: &CollatzParams) -> String {
    format!(
        r#"; Collatz conjecture kernel ({count} integers starting at {start})
.text
main:
    movi r1, {start}        ; n, the integer under test
    movi r2, {count}        ; remaining outer iterations
    movi r5, 0              ; verified counter
    movi r7, 0              ; maximum steps seen
outer:
    mov  r3, r1             ; working copy of n
    movi r6, 0              ; steps for this n
inner:
    cmpi r3, 1
    jeq  converged
    and  r4, r3, 1
    cmpi r4, 0
    jne  odd
    shr  r3, r3, 1
    jmp  step
odd:
    mul  r3, r3, 3
    add  r3, r3, 1
step:
    add  r6, r6, 1
    jmp  inner
converged:
    add  r5, r5, 1          ; one more integer verified
    cmp  r7, r6
    jge  no_new_max
    mov  r7, r6
no_new_max:
    add  r1, r1, 1
    sub  r2, r2, 1
    cmpi r2, 0
    jne  outer
    movi r8, verified
    stw  [r8], r5
    movi r8, max_steps
    stw  [r8], r7
    halt
.data
verified:
    .word 0
max_steps:
    .word 0
"#,
        start = params.start,
        count = params.count,
    )
}

/// Assembles the kernel into a loadable program.
///
/// # Errors
/// Returns [`WorkloadError::Assembly`] if the generated source fails to
/// assemble (which would indicate a bug in this module).
pub fn program(params: &CollatzParams) -> WorkloadResult<Program> {
    Assembler::new().headroom(4 * 1024).assemble(&source(params)).map_err(WorkloadError::from)
}

/// Pure-Rust reference implementation with identical arithmetic.
pub fn reference(params: &CollatzParams) -> CollatzResult {
    let mut verified = 0u32;
    let mut max_steps = 0u32;
    for i in 0..params.count {
        let mut n = params.start.wrapping_add(i);
        let mut steps = 0u32;
        while n != 1 {
            if n % 2 == 0 {
                n /= 2;
            } else {
                n = n.wrapping_mul(3).wrapping_add(1);
            }
            steps += 1;
        }
        verified += 1;
        max_steps = max_steps.max(steps);
    }
    CollatzResult { verified, max_steps }
}

/// Reads the kernel's result back out of a final state vector.
///
/// # Errors
/// Returns [`WorkloadError::MissingSymbol`] when the program was not built by
/// [`program`], or a VM error if the recorded addresses are out of range.
pub fn read_result(program: &Program, state: &StateVector) -> WorkloadResult<CollatzResult> {
    let verified_addr = program
        .symbol("verified")
        .ok_or_else(|| WorkloadError::MissingSymbol("verified".into()))?;
    let max_addr = program
        .symbol("max_steps")
        .ok_or_else(|| WorkloadError::MissingSymbol("max_steps".into()))?;
    Ok(CollatzResult {
        verified: state.load_word(verified_addr)?,
        max_steps: state.load_word(max_addr)?,
    })
}

/// An estimate of the kernel's total instruction count, used by experiment
/// harnesses to size runs without executing them first.
pub fn estimated_instructions(params: &CollatzParams) -> u64 {
    // ~7 instructions per inner step, ~85 steps on average for small ranges,
    // plus ~10 per outer iteration.
    params.count as u64 * (7 * 85 + 10)
}

/// A "pure" variant of the kernel that only verifies convergence (no
/// per-integer step counting). Its inner loop depends on nothing but the
/// working value, so single-core generalized memoization (Figure 6, right)
/// can reuse the shared final subsequences every Collatz sequence ends with.
pub fn pure_source(params: &CollatzParams) -> String {
    format!(
        r#"; Pure Collatz verification kernel ({count} integers starting at {start})
.text
main:
    movi r1, {start}
    movi r2, {count}
    movi r5, 0
outer:
    mov  r3, r1
inner:
    cmpi r3, 1
    jeq  converged
    and  r4, r3, 1
    cmpi r4, 0
    jne  odd
    shr  r3, r3, 1
    jmp  inner
odd:
    mul  r3, r3, 3
    add  r3, r3, 1
    jmp  inner
converged:
    add  r5, r5, 1
    add  r1, r1, 1
    sub  r2, r2, 1
    cmpi r2, 0
    jne  outer
    movi r8, verified
    stw  [r8], r5
    halt
.data
verified:
    .word 0
"#,
        start = params.start,
        count = params.count,
    )
}

/// Assembles the pure (memoization-friendly) kernel variant.
///
/// # Errors
/// Returns [`WorkloadError::Assembly`] if the generated source fails to
/// assemble.
pub fn pure_program(params: &CollatzParams) -> WorkloadResult<Program> {
    Assembler::new().headroom(4 * 1024).assemble(&pure_source(params)).map_err(WorkloadError::from)
}

/// Reads the pure kernel's verified count from a final state.
///
/// # Errors
/// Returns [`WorkloadError::MissingSymbol`] for foreign programs.
pub fn read_pure_result(program: &Program, state: &StateVector) -> WorkloadResult<u32> {
    let addr = program
        .symbol("verified")
        .ok_or_else(|| WorkloadError::MissingSymbol("verified".into()))?;
    Ok(state.load_word(addr)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::machine::Machine;

    #[test]
    fn kernel_matches_reference_small() {
        let params = CollatzParams { start: 2, count: 30 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(10_000_000).unwrap();
        let got = read_result(&program, machine.state()).unwrap();
        assert_eq!(got, reference(&params));
        assert_eq!(got.verified, 30);
    }

    #[test]
    fn kernel_matches_reference_larger_range() {
        let params = CollatzParams { start: 1_000, count: 50 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(50_000_000).unwrap();
        let got = read_result(&program, machine.state()).unwrap();
        assert_eq!(got, reference(&params));
    }

    #[test]
    fn pure_variant_counts_verified_integers() {
        let params = CollatzParams { start: 2, count: 40 };
        let program = pure_program(&params).unwrap();
        let mut machine = asc_tvm::machine::Machine::load(&program).unwrap();
        machine.run_to_halt(10_000_000).unwrap();
        assert_eq!(read_pure_result(&program, machine.state()).unwrap(), 40);
    }

    #[test]
    fn reference_known_value() {
        // 27 famously takes 111 steps.
        let result = reference(&CollatzParams { start: 27, count: 1 });
        assert_eq!(result.max_steps, 111);
        assert_eq!(result.verified, 1);
    }

    #[test]
    fn source_lines_are_counted() {
        let params = CollatzParams::default();
        let program = program(&params).unwrap();
        // The paper lists Collatz at 15 lines of C; our assembly is small too.
        assert!(program.source_lines() > 10 && program.source_lines() < 60);
    }

    #[test]
    fn estimated_instructions_is_same_order_as_actual() {
        let params = CollatzParams { start: 2, count: 20 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        let actual = machine.run_to_halt(10_000_000).unwrap();
        let estimate = estimated_instructions(&params);
        assert!(estimate > actual / 20 && estimate < actual * 20);
    }
}
