//! The `2mm` benchmark kernel (paper §5.1, second benchmark).
//!
//! Computes `D = alpha*A*B*C + beta*D` over square integer matrices, exactly
//! like the Polybench/C `2mm` kernel the paper uses: a first triple loop
//! forms `TMP = alpha*(A×B)`, a second triple loop forms `D = TMP×C + beta*D`,
//! and a final pass folds `D` into a checksum so the result is a single
//! memory word that tests can compare against the reference implementation.
//!
//! The kernel's affine loop nest is what a conventional parallelizing
//! compiler targets; in ASC it is discovered dynamically by the recognizer
//! and the linear-regression predictor (which learns the induction
//! variables and row/column addresses).

use crate::error::{WorkloadError, WorkloadResult};
use asc_asm::Assembler;
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;
use std::fmt::Write as _;

/// Parameters of the 2mm kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mm2Params {
    /// Matrices are `n × n`.
    pub n: usize,
    /// The `alpha` scalar.
    pub alpha: i32,
    /// The `beta` scalar.
    pub beta: i32,
}

impl Default for Mm2Params {
    fn default() -> Self {
        Mm2Params { n: 16, alpha: 3, beta: 2 }
    }
}

/// Result of the 2mm kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mm2Result {
    /// Wrapping sum of every element of the final `D` matrix.
    pub checksum: i32,
    /// The final `D` matrix in row-major order.
    pub d: Vec<i32>,
}

/// Deterministic initial value generators shared by the program generator and
/// the reference implementation (mirroring Polybench's `init_array`).
fn init_a(i: usize, j: usize) -> i32 {
    ((i * 7 + j * 3) % 13) as i32 - 6
}
fn init_b(i: usize, j: usize) -> i32 {
    ((i * 5 + j * 11) % 17) as i32 - 8
}
fn init_c(i: usize, j: usize) -> i32 {
    ((i + j * 2) % 9) as i32 - 4
}
fn init_d(i: usize, j: usize) -> i32 {
    ((i * 3 + j) % 7) as i32 - 3
}

fn emit_matrix(out: &mut String, label: &str, n: usize, f: fn(usize, usize) -> i32) {
    let _ = writeln!(out, "{label}:");
    for i in 0..n {
        let row: Vec<String> = (0..n).map(|j| f(i, j).to_string()).collect();
        let _ = writeln!(out, "    .word {}", row.join(", "));
    }
}

/// Generates the TVM assembly source for the kernel.
pub fn source(params: &Mm2Params) -> String {
    let n = params.n;
    let mut text = format!(
        r#"; 2mm kernel: D = alpha*A*B*C + beta*D over {n}x{n} matrices
.text
main:
    movi r8, {n}
    movi r9, {alpha}
    movi r10, {beta}
    ; ---- phase 1: TMP = alpha * (A x B) ----
    movi r1, 0              ; i
p1_i:
    movi r2, 0              ; j
p1_j:
    movi r4, 0              ; acc
    movi r3, 0              ; k
p1_k:
    mul  r5, r1, r8
    add  r5, r5, r3
    mul  r5, r5, 4
    movi r6, mat_a
    add  r5, r5, r6
    ldw  r5, [r5]           ; A[i][k]
    mul  r6, r3, r8
    add  r6, r6, r2
    mul  r6, r6, 4
    movi r7, mat_b
    add  r6, r6, r7
    ldw  r6, [r6]           ; B[k][j]
    mul  r5, r5, r6
    add  r4, r4, r5
    add  r3, r3, 1
    cmp  r3, r8
    jlt  p1_k
    mul  r4, r4, r9         ; alpha * acc
    mul  r5, r1, r8
    add  r5, r5, r2
    mul  r5, r5, 4
    movi r6, mat_tmp
    add  r5, r5, r6
    stw  [r5], r4           ; TMP[i][j]
    add  r2, r2, 1
    cmp  r2, r8
    jlt  p1_j
    add  r1, r1, 1
    cmp  r1, r8
    jlt  p1_i
    ; ---- phase 2: D = TMP x C + beta * D ----
    movi r1, 0
p2_i:
    movi r2, 0
p2_j:
    movi r4, 0
    movi r3, 0
p2_k:
    mul  r5, r1, r8
    add  r5, r5, r3
    mul  r5, r5, 4
    movi r6, mat_tmp
    add  r5, r5, r6
    ldw  r5, [r5]           ; TMP[i][k]
    mul  r6, r3, r8
    add  r6, r6, r2
    mul  r6, r6, 4
    movi r7, mat_c
    add  r6, r6, r7
    ldw  r6, [r6]           ; C[k][j]
    mul  r5, r5, r6
    add  r4, r4, r5
    add  r3, r3, 1
    cmp  r3, r8
    jlt  p2_k
    mul  r5, r1, r8
    add  r5, r5, r2
    mul  r5, r5, 4
    movi r6, mat_d
    add  r5, r5, r6
    ldw  r7, [r5]           ; old D[i][j]
    mul  r7, r7, r10
    add  r7, r7, r4
    stw  [r5], r7           ; new D[i][j]
    add  r2, r2, 1
    cmp  r2, r8
    jlt  p2_j
    add  r1, r1, 1
    cmp  r1, r8
    jlt  p2_i
    ; ---- checksum of D ----
    movi r1, 0
    movi r4, 0
    mul  r5, r8, r8
chk:
    mul  r6, r1, 4
    movi r7, mat_d
    add  r6, r6, r7
    ldw  r6, [r6]
    add  r4, r4, r6
    add  r1, r1, 1
    cmp  r1, r5
    jlt  chk
    movi r6, checksum
    stw  [r6], r4
    halt
.data
checksum:
    .word 0
"#,
        n = n,
        alpha = params.alpha,
        beta = params.beta,
    );
    emit_matrix(&mut text, "mat_a", n, init_a);
    emit_matrix(&mut text, "mat_b", n, init_b);
    emit_matrix(&mut text, "mat_c", n, init_c);
    emit_matrix(&mut text, "mat_d", n, init_d);
    let _ = writeln!(text, "mat_tmp:\n    .space {}", 4 * n * n);
    text
}

/// Assembles the kernel into a loadable program.
///
/// # Errors
/// Returns [`WorkloadError::InvalidParams`] for degenerate sizes and
/// [`WorkloadError::Assembly`] if the generated source fails to assemble.
pub fn program(params: &Mm2Params) -> WorkloadResult<Program> {
    if params.n == 0 || params.n > 256 {
        return Err(WorkloadError::InvalidParams(format!(
            "matrix size {} must be between 1 and 256",
            params.n
        )));
    }
    Assembler::new().headroom(16 * 1024).assemble(&source(params)).map_err(WorkloadError::from)
}

/// Pure-Rust reference implementation with identical (wrapping) arithmetic.
pub fn reference(params: &Mm2Params) -> Mm2Result {
    let n = params.n;
    let at = |i: usize, j: usize| i * n + j;
    let mut a = vec![0i32; n * n];
    let mut b = vec![0i32; n * n];
    let mut c = vec![0i32; n * n];
    let mut d = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[at(i, j)] = init_a(i, j);
            b[at(i, j)] = init_b(i, j);
            c[at(i, j)] = init_c(i, j);
            d[at(i, j)] = init_d(i, j);
        }
    }
    let mut tmp = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(a[at(i, k)].wrapping_mul(b[at(k, j)]));
            }
            tmp[at(i, j)] = acc.wrapping_mul(params.alpha);
        }
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i32;
            for k in 0..n {
                acc = acc.wrapping_add(tmp[at(i, k)].wrapping_mul(c[at(k, j)]));
            }
            d[at(i, j)] = d[at(i, j)].wrapping_mul(params.beta).wrapping_add(acc);
        }
    }
    let checksum = d.iter().fold(0i32, |s, v| s.wrapping_add(*v));
    Mm2Result { checksum, d }
}

/// Reads the kernel's result back out of a final state vector.
///
/// # Errors
/// Returns [`WorkloadError::MissingSymbol`] when the program was not built by
/// [`program`], or a VM error if memory reads fail.
pub fn read_result(
    program: &Program,
    state: &StateVector,
    params: &Mm2Params,
) -> WorkloadResult<Mm2Result> {
    let checksum_addr = program
        .symbol("checksum")
        .ok_or_else(|| WorkloadError::MissingSymbol("checksum".into()))?;
    let d_addr =
        program.symbol("mat_d").ok_or_else(|| WorkloadError::MissingSymbol("mat_d".into()))?;
    let n = params.n;
    let mut d = Vec::with_capacity(n * n);
    for index in 0..(n * n) {
        d.push(state.load_word(d_addr + 4 * index as u32)? as i32);
    }
    Ok(Mm2Result { checksum: state.load_word(checksum_addr)? as i32, d })
}

/// An estimate of the kernel's total instruction count.
pub fn estimated_instructions(params: &Mm2Params) -> u64 {
    let n = params.n as u64;
    // Two triple loops at ~16 instructions per innermost iteration plus the
    // per-(i,j) epilogues and the checksum pass.
    2 * n * n * (16 * n + 14) + n * n * 9 + 20
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::machine::Machine;

    #[test]
    fn kernel_matches_reference_small() {
        let params = Mm2Params { n: 6, alpha: 3, beta: 2 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(10_000_000).unwrap();
        let got = read_result(&program, machine.state(), &params).unwrap();
        let want = reference(&params);
        assert_eq!(got.d, want.d);
        assert_eq!(got.checksum, want.checksum);
    }

    #[test]
    fn kernel_matches_reference_non_trivial_scalars() {
        let params = Mm2Params { n: 9, alpha: -2, beta: 5 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(50_000_000).unwrap();
        let got = read_result(&program, machine.state(), &params).unwrap();
        assert_eq!(got, reference(&params));
    }

    #[test]
    fn reference_identity_sanity() {
        // With alpha=1, beta=0 the result is exactly (A*B)*C.
        let params = Mm2Params { n: 3, alpha: 1, beta: 0 };
        let result = reference(&params);
        // Hand-compute one element: D[0][0] = sum_k (sum_m A[0][m]B[m][k]) * C[k][0]
        let n = 3;
        let mut expect = 0i64;
        for k in 0..n {
            let mut tmp = 0i64;
            for m in 0..n {
                tmp += init_a(0, m) as i64 * init_b(m, k) as i64;
            }
            expect += tmp * init_c(k, 0) as i64;
        }
        assert_eq!(result.d[0] as i64, expect);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(program(&Mm2Params { n: 0, alpha: 1, beta: 1 }).is_err());
        assert!(program(&Mm2Params { n: 1000, alpha: 1, beta: 1 }).is_err());
    }

    #[test]
    fn estimated_instructions_close_to_actual() {
        let params = Mm2Params { n: 8, alpha: 3, beta: 2 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        let actual = machine.run_to_halt(10_000_000).unwrap();
        let estimate = estimated_instructions(&params);
        let ratio = estimate as f64 / actual as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "estimate {estimate} vs actual {actual}");
    }
}
