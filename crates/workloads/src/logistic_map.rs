//! The logistic-map benchmark kernel (ROADMAP "more workloads"; the paper
//! names chaotic maps among its candidate programs, §5.1).
//!
//! The outer loop iterates over a range of seeds; the inner loop applies a
//! fixed-point logistic map `x ← r·x·(1 − x)` (15-bit fraction, `r ≈ 3.99` in
//! the chaotic regime) a fixed number of steps, perturbed by the seed index
//! so truncated orbits can never collapse onto a fixed point. Each seed's
//! final value folds into a running checksum.
//!
//! The kernel is the *adversarial* complement to Collatz/Ising/2mm: at the
//! recognized loop head the excited state words are fully chaotic, so the
//! predictor ensemble is exercised on a high-entropy excitation pattern —
//! every occurrence produces near-maximal mistake masks, the worst case for
//! the packed training path. Speculation rarely pays here (the paper's
//! framework predicts as much: prediction accuracy drives attainable
//! scaling), but the runtime must stay correct and cheap while it tries.

use crate::error::{WorkloadError, WorkloadResult};
use asc_asm::Assembler;
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;

/// Fixed-point one: 15 fraction bits.
const ONE: u32 = 1 << 15;
/// `r = 3.99` in a 13-bit fraction (`3.99 * 8192 ≈ 32686`), chosen so the
/// intermediate product `r_f13 · t` stays below 2³¹.
const R_F13: u32 = 32686;
/// Seed-mixing multiplier (odd, fits the 16-bit immediate comfortably).
const SEED_MIX: u32 = 26099;

/// Parameters of the logistic-map kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogisticMapParams {
    /// Number of seeds iterated by the outer loop.
    pub seeds: u32,
    /// Map iterations per seed.
    pub steps: u32,
}

impl Default for LogisticMapParams {
    fn default() -> Self {
        LogisticMapParams { seeds: 200, steps: 20 }
    }
}

/// Result of the kernel: what the program writes back to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogisticMapResult {
    /// Wrapping sum of every seed's final map value.
    pub checksum: u32,
    /// The last seed's final map value.
    pub last_x: u32,
}

/// One perturbed fixed-point map step: `x ← (r·(x·(ONE−x) >> 15) >> 13) + i + s`,
/// masked back into the 15-bit fraction domain, where `s` is the inner
/// loop's countdown value. Because the perturbation changes every step, the
/// truncated map cannot settle on the `x = 0` / `x = 1` fixed points that
/// plain fixed-point truncation produces.
fn map_step(x: u32, i: u32, s: u32) -> u32 {
    let t = x.wrapping_mul(ONE.wrapping_sub(x)) >> 15;
    let mapped = R_F13.wrapping_mul(t) >> 13;
    mapped.wrapping_add(i).wrapping_add(s) & (ONE - 1)
}

/// The deterministic per-seed initial value: a cheap mix of the seed index.
fn seed_value(i: u32) -> u32 {
    (i.wrapping_mul(SEED_MIX) ^ i) & (ONE - 2) | 1
}

/// Generates the TVM assembly source for the kernel.
pub fn source(params: &LogisticMapParams) -> String {
    format!(
        r#"; Logistic-map chaotic kernel ({seeds} seeds x {steps} steps, r=3.99 f13)
.text
main:
    movi r1, 0              ; i, the seed index
    movi r2, {seeds}        ; outer bound
    movi r7, 0              ; checksum
outer:
    mul  r3, r1, {seed_mix} ; x = (i * MIX ^ i) & (ONE-2) | 1
    xor  r3, r3, r1
    and  r3, r3, {one_minus_two}
    or   r3, r3, 1
    movi r4, {steps}        ; inner countdown
inner:
    movi r5, {one}          ; t = (x * (ONE - x)) >> 15
    sub  r5, r5, r3
    mul  r5, r5, r3
    shr  r5, r5, 15
    mul  r5, r5, {r_f13}    ; x' = (r_f13 * t) >> 13, perturbed by i + s
    shr  r5, r5, 13
    add  r5, r5, r1
    add  r5, r5, r4
    and  r3, r5, {one_minus_one}
    sub  r4, r4, 1
    cmpi r4, 0
    jne  inner
    add  r7, r7, r3         ; fold the seed's final x into the checksum
    add  r1, r1, 1
    cmp  r1, r2
    jlt  outer
    movi r8, checksum
    stw  [r8], r7
    movi r8, last_x
    stw  [r8], r3
    halt
.data
checksum:
    .word 0
last_x:
    .word 0
"#,
        seeds = params.seeds,
        steps = params.steps,
        seed_mix = SEED_MIX,
        one = ONE,
        one_minus_one = ONE - 1,
        one_minus_two = ONE - 2,
        r_f13 = R_F13,
    )
}

/// Assembles the kernel into a loadable program.
///
/// # Errors
/// Returns [`WorkloadError::Assembly`] if the generated source fails to
/// assemble (which would indicate a bug in this module).
pub fn program(params: &LogisticMapParams) -> WorkloadResult<Program> {
    Assembler::new().headroom(4 * 1024).assemble(&source(params)).map_err(WorkloadError::from)
}

/// Pure-Rust reference implementation with identical integer arithmetic.
pub fn reference(params: &LogisticMapParams) -> LogisticMapResult {
    let mut checksum = 0u32;
    let mut x = 0u32;
    for i in 0..params.seeds {
        x = seed_value(i);
        for s in (1..=params.steps).rev() {
            x = map_step(x, i, s);
        }
        checksum = checksum.wrapping_add(x);
    }
    LogisticMapResult { checksum, last_x: x }
}

/// Reads the kernel's result back out of a final state vector.
///
/// # Errors
/// Returns [`WorkloadError::MissingSymbol`] when the program was not built by
/// [`program`], or a VM error if the recorded addresses are out of range.
pub fn read_result(program: &Program, state: &StateVector) -> WorkloadResult<LogisticMapResult> {
    let checksum_addr = program
        .symbol("checksum")
        .ok_or_else(|| WorkloadError::MissingSymbol("checksum".into()))?;
    let last_addr =
        program.symbol("last_x").ok_or_else(|| WorkloadError::MissingSymbol("last_x".into()))?;
    Ok(LogisticMapResult {
        checksum: state.load_word(checksum_addr)?,
        last_x: state.load_word(last_addr)?,
    })
}

/// An estimate of the kernel's total instruction count, used by experiment
/// harnesses to size runs without executing them first.
pub fn estimated_instructions(params: &LogisticMapParams) -> u64 {
    // 12 instructions per inner step, ~10 per outer iteration.
    params.seeds as u64 * (12 * params.steps as u64 + 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::machine::Machine;

    #[test]
    fn kernel_matches_reference() {
        let params = LogisticMapParams { seeds: 12, steps: 50 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(10_000_000).unwrap();
        let got = read_result(&program, machine.state()).unwrap();
        assert_eq!(got, reference(&params));
    }

    #[test]
    fn orbits_stay_inside_the_fraction_domain_and_move() {
        // The perturbed map must neither leave [0, ONE) nor collapse onto a
        // fixed point for any tested seed.
        for i in 0..64u32 {
            let mut x = seed_value(i);
            let mut distinct = std::collections::BTreeSet::new();
            for s in (1..=200u32).rev() {
                x = map_step(x, i, s);
                assert!(x < ONE, "orbit escaped the fraction domain: {x}");
                distinct.insert(x);
            }
            assert!(distinct.len() > 20, "seed {i} orbit collapsed: {} states", distinct.len());
        }
    }

    #[test]
    fn checksum_is_sensitive_to_every_parameter() {
        let base = reference(&LogisticMapParams { seeds: 16, steps: 60 });
        let more_seeds = reference(&LogisticMapParams { seeds: 17, steps: 60 });
        let more_steps = reference(&LogisticMapParams { seeds: 16, steps: 61 });
        assert_ne!(base.checksum, more_seeds.checksum);
        assert_ne!(base.checksum, more_steps.checksum);
    }

    #[test]
    fn estimated_instructions_is_same_order_as_actual() {
        let params = LogisticMapParams { seeds: 8, steps: 40 };
        let program = program(&params).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        let actual = machine.run_to_halt(10_000_000).unwrap();
        let estimate = estimated_instructions(&params);
        assert!(estimate > actual / 4 && estimate < actual * 4, "{estimate} vs {actual}");
    }
}
