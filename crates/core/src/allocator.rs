//! The allocator: expected-utility scheduling of speculative work (§4.5).
//!
//! Given the rollout of predicted future states produced by the predictor
//! bank, the allocator decides which of them are worth dispatching to
//! speculative execution. Each candidate's expected utility is the length of
//! the trajectory that would be cached (one superstep per rollout depth)
//! multiplied by the probability, under the ensemble's joint distribution
//! (Eq. 2), that the prediction is correct and the entry will therefore be
//! used by the main thread. Predictions whose start states are already
//! covered by the cache are skipped.

use crate::cache::{LookupScratch, TrajectoryCache};
use crate::predictor_bank::PredictedState;

/// One unit of speculative work the allocator decided to dispatch.
#[derive(Debug, Clone)]
pub struct SpeculationTask {
    /// How many supersteps ahead of the main thread the start state is.
    pub depth: usize,
    /// The predicted start state.
    pub predicted: PredictedState,
    /// Expected utility: estimated instructions saved × probability of use.
    pub expected_utility: f64,
}

/// Plans which rollout predictions to speculate from.
///
/// * `rollouts` — predictions at depths 1..=k produced by
///   [`PredictorBank::rollout`](crate::predictor_bank::PredictorBank::rollout).
/// * `superstep_estimate` — mean instructions per superstep, used as the
///   utility of one cached trajectory.
/// * `max_tasks` — how many speculative executions can be dispatched (the
///   number of idle cores in a real deployment).
/// * `cache`/`rip` — used to skip predictions already covered by an entry.
/// * `lookup` — the caller's reusable scratch for those coverage checks
///   (planning runs on the miss path, which must not allocate per
///   occurrence).
///
/// Tasks are returned in decreasing expected-utility order.
pub fn plan_speculation(
    rollouts: Vec<PredictedState>,
    superstep_estimate: f64,
    max_tasks: usize,
    cache: &TrajectoryCache,
    rip: u32,
    lookup: &mut LookupScratch,
) -> Vec<SpeculationTask> {
    let mut tasks: Vec<SpeculationTask> = rollouts
        .into_iter()
        .filter(|predicted| !cache.covers_with(rip, &predicted.state, lookup))
        .map(|predicted| {
            let probability = predicted.log_probability.exp();
            SpeculationTask {
                depth: predicted.depth,
                expected_utility: probability * superstep_estimate.max(1.0),
                predicted,
            }
        })
        .collect();
    tasks.sort_by(|a, b| {
        b.expected_utility.partial_cmp(&a.expected_utility).unwrap_or(std::cmp::Ordering::Equal)
    });
    tasks.truncate(max_tasks);
    tasks
}

/// The latency model for recursive ("rollout") prediction in the paper's
/// prototype: the worker speculating `rank` supersteps ahead must first
/// compute `rank` chained predictions, so its prediction latency grows
/// linearly with rank (§5.3: ~10³·k µs on Blue Gene/P). Expressed here in
/// instruction-equivalent cycles so the cluster model can charge it.
pub fn rollout_latency(rank: usize, cost_per_step: f64) -> f64 {
    rank as f64 * cost_per_step.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::state::StateVector;

    fn predicted(depth: usize, log_probability: f64) -> PredictedState {
        PredictedState { state: StateVector::new(64).unwrap(), log_probability, depth }
    }

    #[test]
    fn plans_highest_utility_first_and_respects_budget() {
        let cache = TrajectoryCache::new(16);
        let rollouts = vec![
            predicted(1, -0.01), // very likely
            predicted(2, -0.2),
            predicted(3, -2.0), // unlikely
        ];
        let tasks = plan_speculation(rollouts, 1_000.0, 2, &cache, 0, &mut LookupScratch::new());
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].depth, 1);
        assert_eq!(tasks[1].depth, 2);
        assert!(tasks[0].expected_utility >= tasks[1].expected_utility);
    }

    #[test]
    fn skips_predictions_already_cached() {
        let cache = TrajectoryCache::new(16);
        let prediction = predicted(1, -0.1);
        // Insert an entry that matches the predicted state (empty read set
        // matches anything).
        cache.insert(crate::cache::CacheEntry::new(
            0,
            asc_tvm::delta::SparseBytes::default(),
            asc_tvm::delta::SparseBytes::default(),
            10,
        ));
        let tasks =
            plan_speculation(vec![prediction], 100.0, 4, &cache, 0, &mut LookupScratch::new());
        assert!(tasks.is_empty());
    }

    #[test]
    fn utility_scales_with_probability() {
        let cache = TrajectoryCache::new(16);
        let tasks = plan_speculation(
            vec![predicted(1, 0.0), predicted(2, -1.0)],
            100.0,
            4,
            &cache,
            0,
            &mut LookupScratch::new(),
        );
        assert!((tasks[0].expected_utility - 100.0).abs() < 1e-9);
        assert!((tasks[1].expected_utility - 100.0 * (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rollout_latency_is_linear_in_rank() {
        assert_eq!(rollout_latency(0, 50.0), 0.0);
        assert_eq!(rollout_latency(10, 50.0), 500.0);
        assert_eq!(rollout_latency(10, -1.0), 0.0);
    }
}
