//! The allocator: expected-utility scheduling of speculative work (§4.5),
//! gated by the dispatch value model.
//!
//! Given the rollout of predicted future states produced by the predictor
//! bank, the allocator decides which of them are worth dispatching to
//! speculative execution. The decision has two layers:
//!
//! 1. **Ranking.** Each candidate's expected utility is the *benefit* of the
//!    entry it would produce — the length of the trajectory that would be
//!    cached (one superstep per rollout depth, using the live superstep-EMA
//!    as the instruction estimate) — multiplied by the probability, under
//!    the ensemble's joint distribution (Eq. 2), that the prediction is
//!    correct and the entry will therefore be used by the main thread.
//!    Candidates are sorted by that utility and truncated to the core
//!    budget. Predictions whose start states are already covered by the
//!    cache are skipped: their benefit has already been bought.
//!
//! 2. **Economics.** The survivors are then individually priced by
//!    [`SpeculationEconomics::evaluate`]: a candidate dispatches only when
//!    its calibrated `P(hit)` beats the *cost* of running the rollout — the
//!    same superstep of instructions a worker core must burn, times the
//!    configured speculation overhead for dependency tracking and cache
//!    insertion. The model probability alone is not trusted for this:
//!    it is capped by the rip's realized hit-rate EMA, because on chaotic
//!    workloads the ensemble is confidently wrong in ways Eq. 2 never
//!    admits (see the [`economics`](crate::economics) module docs for the
//!    full calibration story).
//!
//! A candidate refused by layer 2 is *suppressed*, never lost: suppression
//! only means no cache entry is produced, so the main thread executes that
//! superstep itself — exactly what it does on any cache miss. Gating is
//! therefore never a correctness event; it can only trade away a potential
//! speed-up that the evidence says was unlikely to materialize. The
//! economics keep a periodic probe leak and a hit-triggered re-admission
//! path so a suppressed rip is re-evaluated rather than blacklisted.

use crate::cache::{LookupScratch, TrajectoryCache};
use crate::economics::SpeculationEconomics;
use crate::predictor_bank::PredictedState;

/// One unit of speculative work the allocator decided to dispatch.
#[derive(Debug, Clone)]
pub struct SpeculationTask {
    /// How many supersteps ahead of the main thread the start state is.
    pub depth: usize,
    /// The predicted start state.
    pub predicted: PredictedState,
    /// Expected utility: estimated instructions saved × probability of use.
    pub expected_utility: f64,
}

/// Plans which rollout predictions to speculate from.
///
/// * `rollouts` — predictions at depths 1..=k produced by
///   [`PredictorBank::rollout`](crate::predictor_bank::PredictorBank::rollout).
/// * `superstep_estimate` — mean instructions per superstep, used as the
///   utility of one cached trajectory and as the cost unit of executing it.
/// * `max_tasks` — how many speculative executions can be dispatched (the
///   number of idle cores in a real deployment).
/// * `cache`/`rip` — used to skip predictions already covered by an entry.
/// * `lookup` — the caller's reusable scratch for those coverage checks
///   (planning runs on the miss path, which must not allocate per
///   occurrence).
/// * `economics` — the caller's per-rip value model; each ranked candidate
///   must clear its cost test to survive (a disabled model passes all).
///
/// Tasks are returned in decreasing expected-utility order.
pub fn plan_speculation(
    rollouts: Vec<PredictedState>,
    superstep_estimate: f64,
    max_tasks: usize,
    cache: &TrajectoryCache,
    rip: u32,
    lookup: &mut LookupScratch,
    economics: &mut SpeculationEconomics,
) -> Vec<SpeculationTask> {
    let mut tasks: Vec<SpeculationTask> = rollouts
        .into_iter()
        .filter(|predicted| !cache.covers_with(rip, &predicted.state, lookup))
        .map(|predicted| {
            let probability = predicted.log_probability.exp();
            SpeculationTask {
                depth: predicted.depth,
                expected_utility: probability * superstep_estimate.max(1.0),
                predicted,
            }
        })
        .collect();
    tasks.sort_by(|a, b| {
        b.expected_utility.partial_cmp(&a.expected_utility).unwrap_or(std::cmp::Ordering::Equal)
    });
    tasks.truncate(max_tasks);
    // Price only the candidates that made the core budget: the economics
    // counters then reflect real dispatch decisions, not ranking losers.
    tasks.retain(|task| {
        economics.evaluate(task.predicted.log_probability, task.depth, superstep_estimate)
    });
    tasks
}

/// The latency model for recursive ("rollout") prediction in the paper's
/// prototype: the worker speculating `rank` supersteps ahead must first
/// compute `rank` chained predictions, so its prediction latency grows
/// linearly with rank (§5.3: ~10³·k µs on Blue Gene/P). Expressed here in
/// instruction-equivalent cycles so the cluster model can charge it.
pub fn rollout_latency(rank: usize, cost_per_step: f64) -> f64 {
    rank as f64 * cost_per_step.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EconomicsConfig;
    use asc_tvm::state::StateVector;

    fn predicted(depth: usize, log_probability: f64) -> PredictedState {
        PredictedState { state: StateVector::new(64).unwrap(), log_probability, depth }
    }

    fn open_economics() -> SpeculationEconomics {
        SpeculationEconomics::new(&EconomicsConfig::default())
    }

    #[test]
    fn plans_highest_utility_first_and_respects_budget() {
        let cache = TrajectoryCache::new(16);
        let rollouts = vec![
            predicted(1, -0.01), // very likely
            predicted(2, -0.2),
            predicted(3, -2.0), // unlikely
        ];
        let tasks = plan_speculation(
            rollouts,
            1_000.0,
            2,
            &cache,
            0,
            &mut LookupScratch::new(),
            &mut open_economics(),
        );
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].depth, 1);
        assert_eq!(tasks[1].depth, 2);
        assert!(tasks[0].expected_utility >= tasks[1].expected_utility);
    }

    #[test]
    fn skips_predictions_already_cached() {
        let cache = TrajectoryCache::new(16);
        let prediction = predicted(1, -0.1);
        // Insert an entry that matches the predicted state (empty read set
        // matches anything).
        cache.insert(crate::cache::CacheEntry::new(
            0,
            asc_tvm::delta::SparseBytes::default(),
            asc_tvm::delta::SparseBytes::default(),
            10,
        ));
        let tasks = plan_speculation(
            vec![prediction],
            100.0,
            4,
            &cache,
            0,
            &mut LookupScratch::new(),
            &mut open_economics(),
        );
        assert!(tasks.is_empty());
    }

    #[test]
    fn utility_scales_with_probability() {
        let cache = TrajectoryCache::new(16);
        let tasks = plan_speculation(
            vec![predicted(1, 0.0), predicted(2, -1.0)],
            100.0,
            4,
            &cache,
            0,
            &mut LookupScratch::new(),
            &mut open_economics(),
        );
        assert!((tasks[0].expected_utility - 100.0).abs() < 1e-9);
        assert!((tasks[1].expected_utility - 100.0 * (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn junk_saturated_economics_suppress_the_whole_plan() {
        let cache = TrajectoryCache::new(16);
        let mut economics = open_economics();
        for _ in 0..1_000 {
            economics.record_lookup(false);
        }
        let tasks = plan_speculation(
            vec![predicted(1, 0.0), predicted(2, -0.1)],
            1_000.0,
            4,
            &cache,
            0,
            &mut LookupScratch::new(),
            &mut economics,
        );
        assert!(tasks.is_empty(), "a junk-saturated rip must not dispatch");
        assert_eq!(economics.stats().suppressed, 2);
    }

    #[test]
    fn rollout_latency_is_linear_in_rank() {
        assert_eq!(rollout_latency(0, 50.0), 0.0);
        assert_eq!(rollout_latency(10, 50.0), 500.0);
        assert_eq!(rollout_latency(10, -1.0), 0.0);
    }
}
