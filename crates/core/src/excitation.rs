//! Excitation tracking: which bits change between recognized-IP occurrences.
//!
//! The paper observes (§4.4) that although a program's state space has 10⁵ to
//! 10⁷ bits, fewer than a few hundred bits change from one occurrence of the
//! recognized instruction pointer to the next. LASC learns binary classifiers
//! only for those *excitations*. The [`ExcitationTracker`] accumulates
//! change counts from observed occurrence states; once enough occurrences
//! have been seen it is frozen into an [`ExcitationMap`] that converts full
//! state vectors to and from the packed [`PackedObservation`] representation
//! the learners work with.
//!
//! Because the map always expands the tracked set to whole aligned 32-bit
//! words, the packed bit view of an observation is just the tracked word
//! values laid end to end — extraction and materialisation are pure word
//! moves with no per-bit work.

use asc_learn::features::{packed_len, ExcitationSchema, PackedObservation};
use asc_learn::persist::{self, Reader};
use asc_tvm::state::StateVector;
use std::collections::BTreeMap;

/// Accumulates per-bit change counts between successive occurrence states.
#[derive(Debug, Clone)]
pub struct ExcitationTracker {
    threshold: u32,
    previous: Option<StateVector>,
    change_counts: BTreeMap<usize, u32>,
    observations: usize,
}

impl ExcitationTracker {
    /// Creates a tracker; a bit becomes an excitation after it has changed at
    /// least `threshold` times (the paper's default is once).
    pub fn new(threshold: u32) -> Self {
        ExcitationTracker {
            threshold: threshold.max(1),
            previous: None,
            change_counts: BTreeMap::new(),
            observations: 0,
        }
    }

    /// Number of occurrence states observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Number of distinct bits seen to change at least once.
    pub fn changed_bits(&self) -> usize {
        self.change_counts.len()
    }

    /// Folds in the state at a new occurrence of the recognized IP.
    pub fn observe(&mut self, state: &StateVector) {
        if let Some(previous) = &self.previous {
            for byte_index in previous.diff_bytes(state) {
                let old = previous.byte(byte_index);
                let new = state.byte(byte_index);
                let changed = old ^ new;
                for bit in 0..8 {
                    if changed & (1 << bit) != 0 {
                        *self.change_counts.entry(byte_index * 8 + bit).or_insert(0) += 1;
                    }
                }
            }
        }
        self.previous = Some(state.clone());
        self.observations += 1;
    }

    /// Freezes the tracker into a map over the bits that crossed the change
    /// threshold. Returns `None` when nothing qualifies yet.
    pub fn build_map(&self) -> Option<ExcitationMap> {
        self.build_map_with_limit(usize::MAX)
    }

    /// Appends the accumulated change statistics to `out` for checkpointing.
    /// The `previous` occurrence state is deliberately *not* saved: restoring
    /// breaks the observation stream (exactly like
    /// `PredictorBank::break_stream`), costing one training transition rather
    /// than a full state vector per checkpoint.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, self.threshold);
        persist::put_usize(out, self.observations);
        persist::put_usize(out, self.change_counts.len());
        for (&bit, &count) in &self.change_counts {
            persist::put_usize(out, bit);
            persist::put_u32(out, count);
        }
    }

    /// Restores statistics written by
    /// [`save_state`](ExcitationTracker::save_state) into a tracker built
    /// with the same threshold. Returns `None` (tracker unusable, re-warm
    /// instead) on mismatch or malformed bytes.
    pub fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        if reader.u32()? != self.threshold {
            return None;
        }
        let observations = reader.usize()?;
        let entries = reader.usize()?;
        // Each entry costs at least 12 bytes on the wire, so the remaining
        // byte count bounds the allocation before anything is built.
        if entries > reader.remaining() / 12 {
            return None;
        }
        let mut change_counts = BTreeMap::new();
        for _ in 0..entries {
            let bit = reader.usize()?;
            let count = reader.u32()?;
            change_counts.insert(bit, count);
        }
        self.observations = observations;
        self.change_counts = change_counts;
        self.previous = None;
        Some(())
    }

    /// Like [`ExcitationTracker::build_map`], but keeps at most `max_bits`
    /// bits (before word expansion), preferring the most frequently changing
    /// ones. Bounding the excitation set bounds the memory and training cost
    /// of the block learners for programs (such as `2mm`) that touch a new
    /// output location on every superstep.
    pub fn build_map_with_limit(&self, max_bits: usize) -> Option<ExcitationMap> {
        let mut qualifying: Vec<(usize, u32)> = self
            .change_counts
            .iter()
            .filter(|(_, count)| **count >= self.threshold)
            .map(|(bit, count)| (*bit, *count))
            .collect();
        if qualifying.is_empty() {
            return None;
        }
        if qualifying.len() > max_bits {
            qualifying.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            qualifying.truncate(max_bits);
        }
        Some(ExcitationMap::new(qualifying.into_iter().map(|(bit, _)| bit).collect()))
    }
}

/// A frozen set of excitation bits with conversions between full state
/// vectors and packed observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExcitationMap {
    /// Absolute bit indices of the tracked bits, sorted.
    bit_indices: Vec<usize>,
    /// Absolute byte index of the first byte of each tracked aligned 32-bit
    /// word, sorted; every tracked bit lives in one of these words.
    word_bytes: Vec<usize>,
    schema: ExcitationSchema,
}

impl ExcitationMap {
    /// Builds a map from absolute bit indices.
    ///
    /// The tracked set is expanded to *every* bit of each aligned 32-bit word
    /// that contains a changed bit. Accumulators, induction variables and
    /// bump-allocated pointers keep exciting progressively higher bits as a
    /// program runs; tracking the whole containing word up front means the
    /// predictors model those carries from the start instead of repeatedly
    /// discovering "new" excitations (the word is also the granularity the
    /// linear-regression predictor operates at, and what makes packed
    /// extraction a pure word move).
    pub fn new(bit_indices: Vec<usize>) -> Self {
        // Tracked words are the aligned 32-bit words containing tracked bits.
        let mut word_bytes: Vec<usize> = bit_indices.iter().map(|bit| (bit / 32) * 4).collect();
        word_bytes.sort_unstable();
        word_bytes.dedup();
        let bit_indices: Vec<usize> = word_bytes
            .iter()
            .flat_map(|byte| (0..32).map(move |offset| byte * 8 + offset))
            .collect();
        let bit_homes = bit_indices
            .iter()
            .map(|bit| {
                let word_byte = (bit / 32) * 4;
                let word_index =
                    word_bytes.binary_search(&word_byte).expect("word must be tracked");
                (word_index, (bit % 32) as u8)
            })
            .collect();
        let schema = ExcitationSchema::new(word_bytes.len(), bit_homes);
        ExcitationMap { bit_indices, word_bytes, schema }
    }

    /// Number of tracked bits.
    pub fn bit_count(&self) -> usize {
        self.bit_indices.len()
    }

    /// Number of tracked 32-bit words.
    pub fn word_count(&self) -> usize {
        self.word_bytes.len()
    }

    /// The tracked absolute bit indices.
    pub fn bit_indices(&self) -> &[usize] {
        &self.bit_indices
    }

    /// The learner-facing schema describing observation shape.
    pub fn schema(&self) -> &ExcitationSchema {
        &self.schema
    }

    /// The tracked word at index `w` of `state` (0 when the state is too
    /// short, which only happens for foreign states).
    fn word_of(&self, state: &StateVector, w: usize) -> u32 {
        let byte = self.word_bytes[w];
        if byte + 4 <= state.len_bytes() {
            state.word(byte)
        } else {
            0
        }
    }

    /// Extracts the tracked bits and words of a state vector directly into
    /// packed form. Tracked bits are exactly the bits of the tracked words,
    /// so the packed bit view is the word values laid end to end — one
    /// 32-bit read per tracked word and no per-bit work.
    pub fn observe(&self, state: &StateVector) -> PackedObservation {
        let word_count = self.word_bytes.len();
        let words: Vec<u32> = (0..word_count).map(|w| self.word_of(state, w)).collect();
        let mut packed = vec![0u64; packed_len(self.bit_count())];
        for (k, chunk) in words.chunks(2).enumerate() {
            packed[k] = chunk[0] as u64 | (chunk.get(1).copied().unwrap_or(0) as u64) << 32;
        }
        PackedObservation::new(packed, self.bit_count(), words)
    }

    /// Rebuilds an observation from a packed predicted block (the inverse of
    /// the bit view of [`observe`]): the tracked word values are the packed
    /// halves. Used when rolling predictions forward without materialising a
    /// full state per step.
    ///
    /// # Panics
    /// Panics when `bits` does not hold one packed word per 64 tracked bits.
    ///
    /// [`observe`]: ExcitationMap::observe
    pub fn observation_from_packed(&self, bits: &[u64]) -> PackedObservation {
        assert_eq!(bits.len(), packed_len(self.bit_count()), "predicted block has wrong arity");
        let words =
            (0..self.word_bytes.len()).map(|w| (bits[w / 2] >> (32 * (w % 2))) as u32).collect();
        PackedObservation::new(bits.to_vec(), self.bit_count(), words)
    }

    /// Materialises a predicted state: a copy of `base` with the tracked
    /// words replaced by the predicted packed bits. Untracked bits keep their
    /// `base` values, which is exactly the paper's sparsity argument —
    /// everything that never changed between occurrences is carried forward
    /// unchanged.
    ///
    /// # Panics
    /// Panics when `bits` does not hold one packed word per 64 tracked bits.
    pub fn materialize(&self, base: &StateVector, bits: &[u64]) -> StateVector {
        assert_eq!(bits.len(), packed_len(self.bit_count()), "predicted block has wrong arity");
        let mut state = base.clone();
        for (w, &byte) in self.word_bytes.iter().enumerate() {
            if byte + 4 <= state.len_bytes() {
                state.set_word(byte, (bits[w / 2] >> (32 * (w % 2))) as u32);
            }
        }
        state
    }

    /// Whether two states agree on every tracked word (and therefore every
    /// modelled excitation bit).
    pub fn states_agree(&self, a: &StateVector, b: &StateVector) -> bool {
        (0..self.word_bytes.len()).all(|w| self.word_of(a, w) == self.word_of(b, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with(mem: usize, patch: &[(u32, u32)]) -> StateVector {
        let mut s = StateVector::new(mem).unwrap();
        for &(addr, value) in patch {
            s.store_word(addr, value).unwrap();
        }
        s
    }

    #[test]
    fn tracker_finds_changing_bits_only() {
        let mut tracker = ExcitationTracker::new(1);
        // Word at address 0 counts 1,2,3; word at address 8 stays constant.
        for i in 1..=3u32 {
            tracker.observe(&state_with(64, &[(0, i), (8, 0xff)]));
        }
        assert_eq!(tracker.observations(), 3);
        let map = tracker.build_map().expect("some bits changed");
        // Bits 0 and 1 of the first memory word changed (1->2->3).
        assert!(map.bit_count() >= 2);
        let word_base_bit = (asc_tvm::state::MEM_BASE) * 8;
        assert!(map.bit_indices().contains(&word_base_bit));
        assert!(map.bit_indices().contains(&(word_base_bit + 1)));
        // The constant word contributed nothing.
        let constant_bit = (asc_tvm::state::MEM_BASE + 8) * 8;
        assert!(!map.bit_indices().iter().any(|&b| (constant_bit..constant_bit + 32).contains(&b)));
    }

    #[test]
    fn threshold_filters_rare_changes() {
        let mut tracker = ExcitationTracker::new(2);
        // Bit flips once only.
        tracker.observe(&state_with(32, &[(0, 0)]));
        tracker.observe(&state_with(32, &[(0, 1)]));
        tracker.observe(&state_with(32, &[(0, 1)]));
        assert_eq!(tracker.changed_bits(), 1);
        assert!(tracker.build_map().is_none());
        // A second flip crosses the threshold.
        tracker.observe(&state_with(32, &[(0, 0)]));
        assert!(tracker.build_map().is_some());
    }

    #[test]
    fn map_roundtrips_observation_and_materialisation() {
        let base = state_with(64, &[(0, 0b1010), (4, 77)]);
        let changed = state_with(64, &[(0, 0b0110), (4, 78)]);
        let mut tracker = ExcitationTracker::new(1);
        tracker.observe(&base);
        tracker.observe(&changed);
        let map = tracker.build_map().unwrap();
        let obs = map.observe(&changed);
        assert_eq!(obs.bit_count(), map.bit_count());
        // The packed bit view is the tracked words laid end to end.
        for (w, &value) in obs.words().iter().enumerate() {
            assert_eq!((obs.packed()[w / 2] >> (32 * (w % 2))) as u32, value);
        }
        // Materialising the observed bits onto the base reproduces the
        // changed state exactly (untracked bits were identical already).
        let rebuilt = map.materialize(&base, obs.packed());
        assert_eq!(rebuilt, changed);
        assert!(map.states_agree(&rebuilt, &changed));
        assert!(!map.states_agree(&base, &changed));
    }

    #[test]
    fn observation_from_packed_inverts_the_bit_view() {
        let map = ExcitationMap::new(vec![0, 40, 70]);
        let state = state_with(64, &[(0, 0xDEAD_BEEF), (4, 0x1234_5678), (8, 0xCAFE_F00D)]);
        let obs = map.observe(&state);
        let rebuilt = map.observation_from_packed(obs.packed());
        assert_eq!(rebuilt, obs);
    }

    #[test]
    fn words_cover_every_tracked_bit() {
        let map = ExcitationMap::new(vec![5, 37, 36, 100]);
        // Bits 36 and 37 share a word, so three words — and every bit of each
        // tracked word is modelled (the word-expansion described on `new`).
        assert_eq!(map.word_count(), 3);
        assert_eq!(map.bit_count(), 96);
        let schema = map.schema();
        assert_eq!(schema.bit_count, 96);
        for j in 0..schema.bit_count {
            let (word, offset) = schema.home(j);
            assert!(word < schema.word_count);
            assert!(offset < 32);
        }
        // The originally requested bits are all tracked.
        for bit in [5usize, 36, 37, 100] {
            assert!(map.bit_indices().contains(&bit));
        }
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn materialize_checks_arity() {
        let map = ExcitationMap::new(vec![0, 1]);
        let base = StateVector::new(16).unwrap();
        map.materialize(&base, &[]);
    }
}
