//! Deterministic fault injection for the supervised speculation runtime
//! (only compiled under the `fault-inject` cargo feature).
//!
//! The injector exists to *prove* the supervision layer's claim: faults may
//! only ever cost speed, never correctness. A [`FaultPlan`] configures
//! rates for every failure class the supervisor contains — worker panics,
//! job stalls (killed by the instruction deadline), thread-spawn failures,
//! planner death, and bit-flipped cache-entry payloads (rejected by the
//! checksum) — and the fault-mode determinism tests then assert that runs
//! under an aggressive plan stay bit-identical to fault-free runs.
//!
//! Decisions are drawn from [`asc_learn::rng`]'s xorshift generator, one
//! throw-away generator per event ordinal: event `n`'s generator is seeded
//! from `seed`, a per-class stream constant, and `n` itself. Which *thread*
//! observes ordinal `n` depends on scheduling, but the fault pattern over
//! ordinals is a pure function of the seed — two runs with the same plan
//! inject the same multiset of faults, which is what the soak harness needs
//! to reproduce a failure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use asc_learn::rng::{Rng, XorShiftRng};
use asc_tvm::delta::fnv1a;

use crate::supervisor::InjectedFaults;

/// Configured fault rates for one run; `Default` injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability that a speculation job panics mid-execution.
    pub worker_panic_rate: f64,
    /// Probability that a speculation job stalls (runs away) so the
    /// instruction deadline must kill it. Requires a nonzero
    /// [`job_deadline_instructions`](crate::config::AscConfig::job_deadline_instructions)
    /// to be observable — an un-deadlined stall just exhausts the job's
    /// own budget.
    pub job_stall_rate: f64,
    /// Probability that a completed entry's payload gets a bit flipped
    /// before insert (caught by the cache's checksum at apply time).
    pub entry_corruption_rate: f64,
    /// Probability that a worker-thread spawn is forced to fail.
    pub spawn_failure_rate: f64,
    /// Kill the planner thread at this recognized-IP occurrence ordinal
    /// (fires once per run); `None` leaves the planner alone.
    pub planner_death_after: Option<u64>,
    /// Restrict job faults to the first this-many sampled jobs (`0` = no
    /// limit). A bounded burst lets tests assert breaker *recovery*: the
    /// fault storm ends, the half-open probe succeeds, and speculation
    /// resumes.
    pub burst_jobs: u64,
    /// Abort the whole process (`std::process::abort`, dying by `SIGABRT`
    /// with no cleanup — the kill-resume soak's crash model) at the first
    /// recognized-IP occurrence at or past this ordinal; `None` never
    /// aborts. Fires at the occurrence boundary, after any checkpoint due at
    /// it has been written.
    pub abort_at_occurrence: Option<u64>,
    /// Stall the *main loop* (not a worker job) at the first occurrence at
    /// or past this ordinal, spinning without ticking the heartbeat until
    /// the watchdog escalates — the livelock the watchdog exists to detect.
    /// Fires once per run; `None` never stalls.
    pub stall_at_occurrence: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            worker_panic_rate: 0.0,
            job_stall_rate: 0.0,
            entry_corruption_rate: 0.0,
            spawn_failure_rate: 0.0,
            planner_death_after: None,
            burst_jobs: 0,
            abort_at_occurrence: None,
            stall_at_occurrence: None,
        }
    }
}

/// Per-class stream constants, xored into the seed so the same ordinal
/// draws independently for each fault class.
const STREAM_JOB: u64 = 0x6a6f_625f;
const STREAM_SPAWN: u64 = 0x7370_6177_6e5f;
const STREAM_FRAME: u64 = 0x6672_616d_655f;

fn event_rng(seed: u64, stream: u64, ordinal: u64) -> XorShiftRng {
    XorShiftRng::new(seed ^ stream ^ fnv1a(ordinal.to_le_bytes()))
}

/// Shared injector state: the plan plus the event ordinals, shared by every
/// thread of one run via `Arc`.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    job_ordinal: AtomicU64,
    spawn_ordinal: AtomicU64,
    frame_ordinal: AtomicU64,
    planner_killed: AtomicBool,
    stalled: AtomicBool,
}

impl FaultState {
    /// Fresh injector state for one run.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            job_ordinal: AtomicU64::new(0),
            spawn_ordinal: AtomicU64::new(0),
            frame_ordinal: AtomicU64::new(0),
            planner_killed: AtomicBool::new(false),
            stalled: AtomicBool::new(false),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fault decisions for the next speculation job. At most one
    /// fault fires per job — a panicking job never reaches the stall, a
    /// stalled job never completes an entry to corrupt — so the classes are
    /// sampled as an ordered cascade.
    pub fn sample_job(&self) -> InjectedFaults {
        let ordinal = self.job_ordinal.fetch_add(1, Ordering::Relaxed);
        if self.plan.burst_jobs > 0 && ordinal >= self.plan.burst_jobs {
            return InjectedFaults::default();
        }
        let mut rng = event_rng(self.plan.seed, STREAM_JOB, ordinal);
        let panic = rng.gen_bool(self.plan.worker_panic_rate);
        let stall = !panic && rng.gen_bool(self.plan.job_stall_rate);
        let corrupt = (!panic && !stall && rng.gen_bool(self.plan.entry_corruption_rate))
            .then(|| rng.next_u64());
        InjectedFaults { panic, stall, corrupt }
    }

    /// Whether the next worker-thread spawn is forced to fail.
    pub fn sample_spawn_failure(&self) -> bool {
        let ordinal = self.spawn_ordinal.fetch_add(1, Ordering::Relaxed);
        event_rng(self.plan.seed, STREAM_SPAWN, ordinal).gen_bool(self.plan.spawn_failure_rate)
    }

    /// Draws the corruption decision for the next wire frame a cache peer
    /// sends: `Some(selector)` flips a payload bit chosen by `selector`
    /// before the frame leaves the peer, exercising the codec's
    /// checksum/length rejection path end to end. Reuses the plan's
    /// `entry_corruption_rate` (both classes model the same physical fault —
    /// a damaged entry payload — at different boundaries) on its own stream,
    /// so enabling frame corruption never perturbs the in-process corruption
    /// pattern a seed produces.
    pub fn sample_frame_corruption(&self) -> Option<u64> {
        let ordinal = self.frame_ordinal.fetch_add(1, Ordering::Relaxed);
        let mut rng = event_rng(self.plan.seed, STREAM_FRAME, ordinal);
        rng.gen_bool(self.plan.entry_corruption_rate).then(|| rng.next_u64())
    }

    /// Whether the planner dies at occurrence `ordinal` — fires exactly
    /// once, at the first occurrence at or past the configured point.
    pub fn planner_death_at(&self, ordinal: u64) -> bool {
        match self.plan.planner_death_after {
            Some(at) if ordinal >= at => !self.planner_killed.swap(true, Ordering::Relaxed),
            _ => false,
        }
    }

    /// Whether the process aborts at occurrence `ordinal` (the kill-resume
    /// soak's SIGKILL-equivalent crash point). The caller aborts, so this
    /// can only ever return `true` once per process.
    pub fn abort_at(&self, ordinal: u64) -> bool {
        matches!(self.plan.abort_at_occurrence, Some(at) if ordinal >= at)
    }

    /// Whether the main loop stalls at occurrence `ordinal` — fires exactly
    /// once, at the first occurrence at or past the configured point.
    pub fn stall_at(&self, ordinal: u64) -> bool {
        match self.plan.stall_at_occurrence {
            Some(at) if ordinal >= at => !self.stalled.swap(true, Ordering::Relaxed),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let state = FaultState::new(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(state.sample_job().count(), 0);
            assert!(!state.sample_spawn_failure());
        }
        assert!(!state.planner_death_at(1_000));
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let plan = FaultPlan {
            seed: 42,
            worker_panic_rate: 0.2,
            job_stall_rate: 0.1,
            entry_corruption_rate: 0.1,
            ..FaultPlan::default()
        };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for _ in 0..200 {
            let (fa, fb) = (a.sample_job(), b.sample_job());
            assert_eq!(fa.panic, fb.panic);
            assert_eq!(fa.stall, fb.stall);
            assert_eq!(fa.corrupt, fb.corrupt);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let state =
            FaultState::new(FaultPlan { seed: 7, worker_panic_rate: 0.25, ..FaultPlan::default() });
        let panics = (0..10_000).filter(|_| state.sample_job().panic).count();
        assert!((1_900..3_100).contains(&panics), "got {panics}");
    }

    #[test]
    fn at_most_one_fault_per_job() {
        let state = FaultState::new(FaultPlan {
            seed: 3,
            worker_panic_rate: 0.9,
            job_stall_rate: 0.9,
            entry_corruption_rate: 0.9,
            ..FaultPlan::default()
        });
        for _ in 0..500 {
            assert!(state.sample_job().count() <= 1);
        }
    }

    #[test]
    fn burst_limit_silences_later_jobs() {
        let plan =
            FaultPlan { seed: 9, worker_panic_rate: 1.0, burst_jobs: 10, ..FaultPlan::default() };
        let state = FaultState::new(plan);
        let first: Vec<_> = (0..10).map(|_| state.sample_job().panic).collect();
        assert!(first.iter().all(|&p| p), "burst jobs must all panic at rate 1.0");
        for _ in 0..100 {
            assert_eq!(state.sample_job().count(), 0);
        }
    }

    #[test]
    fn frame_corruption_is_deterministic_and_independent() {
        let plan = FaultPlan { seed: 11, entry_corruption_rate: 0.5, ..FaultPlan::default() };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan.clone());
        let pattern_a: Vec<_> = (0..200).map(|_| a.sample_frame_corruption()).collect();
        let pattern_b: Vec<_> = (0..200).map(|_| b.sample_frame_corruption()).collect();
        assert_eq!(pattern_a, pattern_b);
        let fired = pattern_a.iter().filter(|c| c.is_some()).count();
        assert!((50..150).contains(&fired), "got {fired}");
        // Its own stream: drawing frame decisions must not shift the job
        // corruption pattern the same seed produces.
        let fresh = FaultState::new(plan);
        let jobs_fresh: Vec<_> = (0..50).map(|_| fresh.sample_job().corrupt).collect();
        let jobs_after: Vec<_> = (0..50).map(|_| a.sample_job().corrupt).collect();
        assert_eq!(jobs_fresh, jobs_after);
    }

    #[test]
    fn stall_fires_exactly_once_and_abort_latches() {
        let state = FaultState::new(FaultPlan {
            abort_at_occurrence: Some(20),
            stall_at_occurrence: Some(10),
            ..FaultPlan::default()
        });
        assert!(!state.stall_at(9));
        assert!(state.stall_at(11));
        assert!(!state.stall_at(12), "stall fires once per run");
        assert!(!state.abort_at(19));
        assert!(state.abort_at(20));
    }

    #[test]
    fn planner_death_fires_exactly_once() {
        let state =
            FaultState::new(FaultPlan { planner_death_after: Some(40), ..FaultPlan::default() });
        assert!(!state.planner_death_at(39));
        assert!(state.planner_death_at(40));
        assert!(!state.planner_death_at(41));
        assert!(!state.planner_death_at(40));
    }
}
