//! The parallel speculation engine: a persistent pool of worker threads
//! turning spare cores into sequential speedup (§4.1, Figure 1).
//!
//! The paper's whole premise is that idle cores can execute *predicted*
//! future supersteps while the main thread runs the present one. This module
//! provides that execution substrate: [`SpeculationPool`] owns N OS threads,
//! each looping over a shared job queue. A job is a predicted start state
//! plus superstep bounds; a worker runs
//! [`execute_superstep`](crate::speculator::execute_superstep) with full
//! dependency tracking and, when the superstep completed usefully (reached
//! the recognized IP again or halted), inserts the compressed trajectory
//! into the shared, thread-safe [`TrajectoryCache`].
//!
//! Correctness never depends on scheduling: a cache entry is applied by the
//! main thread only when its full read set matches the live state, so a
//! late, dropped or faulted speculation can cost at most a missed
//! fast-forward opportunity. That is what keeps accelerated results
//! bit-for-bit identical to sequential execution regardless of worker count.
//!
//! Dispatch is non-blocking: the queue is bounded (a few jobs per worker)
//! and [`SpeculationPool::dispatch`] drops work when it is full rather than
//! stalling the main thread — mirroring the paper's allocator, which only
//! schedules speculation onto cores that are actually idle.

use crate::cache::TrajectoryCache;
use crate::speculator::{execute_superstep_with, SpeculationResult, SpeculationScratch};
use asc_tvm::state::StateVector;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Hash of the full state bytes: identifies a start state cheaply so the
/// pool can refuse to speculate from the same state twice concurrently.
fn state_fingerprint(state: &StateVector) -> u64 {
    asc_tvm::delta::fnv1a(state.as_bytes().iter().copied())
}

/// A job plus its precomputed start-state fingerprint (computed once at
/// dispatch, reused by the worker for in-flight bookkeeping).
struct QueuedJob {
    job: SpeculationJob,
    fingerprint: u64,
}

/// Removes a fingerprint from the in-flight set when dropped, so the entry
/// is released even if superstep execution or the cache insert panics —
/// a leaked fingerprint would otherwise saturate the pool permanently and
/// silently disable speculation.
struct InflightGuard<'a> {
    inflight: &'a Mutex<HashSet<u64>>,
    fingerprint: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.fingerprint);
    }
}

/// One unit of speculative work: run a superstep from `start`.
#[derive(Debug, Clone)]
pub struct SpeculationJob {
    /// The (predicted) start state to execute from.
    pub start: StateVector,
    /// The recognized IP whose next occurrence ends the superstep.
    pub rip: u32,
    /// How many occurrences of `rip` one superstep spans.
    pub stride: usize,
    /// Instruction allowance before the speculation gives up.
    pub max_instructions: u64,
}

/// Counters describing what a pool did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted onto the queue.
    pub dispatched: u64,
    /// Jobs rejected because the queue was full (all workers busy).
    pub dropped: u64,
    /// Jobs rejected because an identical start state was already queued or
    /// executing (re-planned predictions between occurrences).
    pub deduplicated: u64,
    /// Supersteps that completed (reached the rip or halted).
    pub completed: u64,
    /// Supersteps that faulted from a mispredicted start state.
    pub faulted: u64,
    /// Supersteps that ran out of budget before reaching the rip.
    pub exhausted: u64,
    /// Completed supersteps whose entry changed the cache.
    pub inserted: u64,
}

#[derive(Default)]
struct SharedCounters {
    completed: AtomicU64,
    faulted: AtomicU64,
    exhausted: AtomicU64,
    inserted: AtomicU64,
}

/// A persistent pool of speculation worker threads feeding a shared
/// trajectory cache.
pub struct SpeculationPool {
    sender: Option<SyncSender<QueuedJob>>,
    handles: Vec<JoinHandle<()>>,
    counters: Arc<SharedCounters>,
    /// Fingerprints of start states queued or executing right now; prevents
    /// wasting workers on duplicate speculation when the main thread
    /// re-plans overlapping rollouts at consecutive occurrences.
    inflight: Arc<Mutex<HashSet<u64>>>,
    dispatched: u64,
    dropped: u64,
    deduplicated: u64,
}

impl std::fmt::Debug for SpeculationPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculationPool")
            .field("workers", &self.handles.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SpeculationPool {
    /// Spawns `workers` threads inserting into `cache`.
    ///
    /// # Panics
    /// Panics when `workers` is zero — callers decide between inline and
    /// pooled speculation, a zero-thread pool is always a caller bug.
    pub fn new(workers: usize, cache: Arc<TrajectoryCache>) -> Self {
        assert!(workers > 0, "a speculation pool needs at least one worker");
        // A shallow queue: speculative work goes stale quickly (the main
        // thread moves on), so buffering deeply only wastes memory on
        // predictions that will be outdated by the time a worker frees up.
        let (sender, receiver) = sync_channel::<QueuedJob>(workers * 4);
        let receiver = Arc::new(Mutex::new(receiver));
        let counters = Arc::new(SharedCounters::default());
        let inflight = Arc::new(Mutex::new(HashSet::new()));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let cache = Arc::clone(&cache);
                let counters = Arc::clone(&counters);
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("asc-speculator-{index}"))
                    .spawn(move || worker_loop(&receiver, &cache, &counters, &inflight))
                    .expect("spawning a speculation worker failed")
            })
            .collect();
        SpeculationPool {
            sender: Some(sender),
            handles,
            counters,
            inflight,
            dispatched: 0,
            dropped: 0,
            deduplicated: 0,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Number of jobs currently queued or executing.
    pub fn pending(&self) -> usize {
        self.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the pool has at least as much queued/executing work as it has
    /// workers. The runtime uses this to skip re-planning (the expensive
    /// predictor rollout) while a previous batch is still in flight.
    pub fn is_saturated(&self) -> bool {
        self.pending() >= self.workers()
    }

    /// Queues a job without blocking. Returns `false` when the job was
    /// rejected: either an identical start state is already in flight
    /// (counted in `deduplicated`) or every worker is busy and the queue is
    /// full (counted in `dropped`).
    pub fn dispatch(&mut self, job: SpeculationJob) -> bool {
        let fingerprint = state_fingerprint(&job.start);
        {
            let mut inflight =
                self.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !inflight.insert(fingerprint) {
                self.deduplicated += 1;
                return false;
            }
        }
        let sender = self.sender.as_ref().expect("pool already shut down");
        match sender.try_send(QueuedJob { job, fingerprint }) {
            Ok(()) => {
                self.dispatched += 1;
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&fingerprint);
                self.dropped += 1;
                false
            }
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatched: self.dispatched,
            dropped: self.dropped,
            deduplicated: self.deduplicated,
            completed: self.counters.completed.load(Ordering::Relaxed),
            faulted: self.counters.faulted.load(Ordering::Relaxed),
            exhausted: self.counters.exhausted.load(Ordering::Relaxed),
            inserted: self.counters.inserted.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue, drains outstanding jobs and joins every worker,
    /// returning the final counters.
    pub fn shutdown(mut self) -> PoolStats {
        self.sender = None; // closing the channel ends every worker loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for SpeculationPool {
    fn drop(&mut self) {
        self.sender = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    receiver: &Mutex<Receiver<QueuedJob>>,
    cache: &TrajectoryCache,
    counters: &SharedCounters,
    inflight: &Mutex<HashSet<u64>>,
) {
    // One scratch (dependency vector + decoded-instruction cache) for the
    // worker's whole lifetime: reset between jobs, never reallocated while
    // the state size is stable.
    let mut scratch = SpeculationScratch::new();
    loop {
        // Take the lock only to receive; execution happens unlocked so
        // workers genuinely run concurrently.
        let queued = {
            let guard = receiver.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(QueuedJob { job, fingerprint }) = queued else { return };
        // Released on every exit path, including panics mid-execution;
        // afterwards, identical predictions are filtered by the
        // cache-coverage check instead.
        let _inflight = InflightGuard { inflight, fingerprint };
        match execute_superstep_with(
            &job.start,
            job.rip,
            job.stride,
            job.max_instructions,
            &mut scratch,
        ) {
            Ok(SpeculationResult::Completed(outcome)) => {
                if outcome.reached_rip || outcome.halted {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                    if cache.insert(outcome.entry) {
                        counters.inserted.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    counters.exhausted.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(SpeculationResult::Faulted { .. }) | Err(_) => {
                // Faults are the expected price of mispredicted start
                // states; the result is simply discarded (§4.1).
                counters.faulted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_tvm::machine::Machine;

    fn looping_program() -> (asc_tvm::program::Program, u32) {
        let program = assemble(
            r#"
            main:
                movi r1, 200
                movi r2, 0
            loop:
                add  r2, r2, r1
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#,
        )
        .unwrap();
        let rip = program.symbol("loop").unwrap();
        (program, rip)
    }

    #[test]
    fn workers_execute_jobs_and_fill_the_cache() {
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();

        let cache = Arc::new(TrajectoryCache::new(1024));
        let mut pool = SpeculationPool::new(4, Arc::clone(&cache));
        assert_eq!(pool.workers(), 4);

        // Dispatch one job per loop iteration state.
        let mut dispatched = 0;
        for _ in 0..32 {
            let job = SpeculationJob {
                start: machine.state().clone(),
                rip,
                stride: 1,
                max_instructions: 10_000,
            };
            // Retry briefly: the queue is bounded and this test dispatches
            // faster than tiny supersteps complete.
            for _ in 0..1000 {
                if pool.dispatch(job.clone()) {
                    dispatched += 1;
                    break;
                }
                std::thread::yield_now();
            }
            machine.run_until_ip(rip, 1_000).unwrap();
        }
        assert!(dispatched > 0);
        let stats = pool.shutdown();
        assert_eq!(stats.completed + stats.faulted + stats.exhausted, stats.dispatched);
        assert!(stats.inserted > 0);
        assert!(!cache.is_empty());

        // Every inserted entry fast-forwards correctly: applying it to a
        // matching state must equal direct execution.
        let mut check = Machine::load(&program).unwrap();
        check.run_until_ip(rip, 1_000).unwrap();
        if let Some(entry) = cache.peek(rip, check.state()) {
            let mut forwarded = check.state().clone();
            entry.apply(&mut forwarded);
            let mut direct = Machine::from_state(check.state().clone());
            direct.run_until_ip(rip, 10_000).unwrap();
            assert_eq!(&forwarded, direct.state());
        }
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(1, Arc::clone(&cache));
        // Flood with slow, *distinct* jobs (whole-program budget); the
        // bounded queue must reject some without blocking this thread.
        for i in 0..256u32 {
            let mut state = start.clone();
            state.set_reg_index(1, i);
            pool.dispatch(SpeculationJob {
                start: state,
                rip,
                stride: usize::MAX,
                max_instructions: 1_000,
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatched + stats.dropped + stats.deduplicated, 256);
        assert!(stats.dropped > 0, "{stats:?}");
        pool.shutdown();
    }

    #[test]
    fn duplicate_start_states_are_dispatched_once() {
        // An endless spin keeps the single worker busy for the whole test,
        // so the in-flight set deterministically contains the first job.
        let program = assemble("spin:\n jmp spin\n").unwrap();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(1, Arc::clone(&cache));
        let job = SpeculationJob {
            start,
            rip: 8, // never reached: the IP stays at the spin
            stride: 1,
            max_instructions: 2_000_000,
        };
        assert!(pool.dispatch(job.clone()));
        // While the first copy is queued or executing, identical start
        // states are refused without consuming queue slots.
        for _ in 0..8 {
            assert!(!pool.dispatch(job.clone()));
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.deduplicated, 8);
        assert_eq!(stats.dropped, 0);
        assert!(pool.pending() >= 1);
        let final_stats = pool.shutdown();
        // The spin exhausts its budget without reaching the rip.
        assert_eq!(final_stats.exhausted, 1);
    }

    #[test]
    fn shutdown_drains_outstanding_work() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(2, Arc::clone(&cache));
        let mut dispatched = 0;
        for _ in 0..8 {
            if pool.dispatch(SpeculationJob {
                start: start.clone(),
                rip,
                stride: 1,
                max_instructions: 10_000,
            }) {
                dispatched += 1;
            }
        }
        let stats = pool.shutdown();
        assert_eq!(stats.dispatched, dispatched);
        assert_eq!(stats.completed + stats.faulted + stats.exhausted, dispatched);
    }
}
