//! The parallel speculation engine: a persistent, *supervised* pool of
//! worker threads turning spare cores into sequential speedup (§4.1,
//! Figure 1).
//!
//! The paper's whole premise is that idle cores can execute *predicted*
//! future supersteps while the main thread runs the present one. This module
//! provides that execution substrate: [`SpeculationPool`] owns N OS threads,
//! each looping over a shared job queue. A job is a predicted start state
//! plus superstep bounds; a worker runs
//! [`execute_superstep`](crate::speculator::execute_superstep) with full
//! dependency tracking and, when the superstep completed usefully (reached
//! the recognized IP again or halted), inserts the compressed trajectory
//! into the shared, thread-safe [`TrajectoryCache`].
//!
//! Correctness never depends on scheduling: a cache entry is applied by the
//! main thread only when its full read set matches the live state, so a
//! late, dropped or faulted speculation can cost at most a missed
//! fast-forward opportunity. That is what keeps accelerated results
//! bit-for-bit identical to sequential execution regardless of worker count.
//!
//! Dispatch is non-blocking: the queue is bounded (a few jobs per worker)
//! and [`SpeculationPool::dispatch`] drops work when it is full rather than
//! stalling the main thread — mirroring the paper's allocator, which only
//! schedules speculation onto cores that are actually idle.
//!
//! ## Supervision
//!
//! The same economy extends to *execution* failures (see
//! [`supervisor`](crate::supervisor)): every job runs under `catch_unwind`
//! with an optional instruction deadline. A panicking job releases its
//! in-flight permit, ticks the health counters and retires its worker (the
//! scratch state is suspect after an unwind); a monitor thread joins the
//! corpse and respawns the slot with exponential backoff, up to
//! [`max_worker_restarts`](crate::config::AscConfig::max_worker_restarts)
//! times before abandoning it and letting the pool shrink. Thread-spawn
//! failure at startup is likewise non-fatal: the pool runs with however
//! many workers materialized (down to zero — dispatch then just drops), and
//! the shortfall is recorded in
//! [`HealthStats`](crate::supervisor::HealthStats). Shutdown joins
//! everything and surfaces any panic it was not already told about.

use crate::cache::TrajectoryCache;
use crate::speculator::{execute_superstep_with, SpeculationResult, SpeculationScratch};
use crate::supervisor::Supervision;
use asc_tvm::state::StateVector;
use asc_tvm::TierStats;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Hash of the full state bytes: identifies a start state cheaply so the
/// pool can refuse to speculate from the same state twice concurrently.
fn state_fingerprint(state: &StateVector) -> u64 {
    asc_tvm::delta::fnv1a(state.as_bytes().iter().copied())
}

/// A job plus its precomputed start-state fingerprint (computed once at
/// dispatch, reused by the worker for in-flight bookkeeping).
struct QueuedJob {
    job: SpeculationJob,
    fingerprint: u64,
}

/// Removes a fingerprint from the in-flight set when dropped, so the entry
/// is released even if superstep execution or the cache insert panics —
/// a leaked fingerprint would otherwise saturate the pool permanently and
/// silently disable speculation.
struct InflightGuard<'a> {
    inflight: &'a Mutex<HashSet<u64>>,
    fingerprint: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.fingerprint);
    }
}

/// One unit of speculative work: run a superstep from `start`.
#[derive(Debug, Clone)]
pub struct SpeculationJob {
    /// The (predicted) start state to execute from.
    pub start: StateVector,
    /// The recognized IP whose next occurrence ends the superstep.
    pub rip: u32,
    /// How many occurrences of `rip` one superstep spans.
    pub stride: usize,
    /// Instruction allowance before the speculation gives up.
    pub max_instructions: u64,
}

/// Counters describing what a pool did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs accepted onto the queue.
    pub dispatched: u64,
    /// Jobs rejected because the queue was full (all workers busy).
    pub dropped: u64,
    /// Jobs rejected because an identical start state was already queued or
    /// executing (re-planned predictions between occurrences).
    pub deduplicated: u64,
    /// Supersteps that completed (reached the rip or halted).
    pub completed: u64,
    /// Supersteps that faulted from a mispredicted start state.
    pub faulted: u64,
    /// Supersteps that ran out of budget before reaching the rip.
    pub exhausted: u64,
    /// Completed supersteps whose entry changed the cache.
    pub inserted: u64,
    /// Jobs whose execution panicked; each panic was contained, the job
    /// discarded and the worker retired (and usually respawned).
    pub panicked: u64,
    /// Jobs killed at the per-job instruction deadline
    /// ([`job_deadline_instructions`](crate::config::AscConfig::job_deadline_instructions)).
    pub deadline_killed: u64,
    /// Worker joins at shutdown that surfaced a panic the supervisor had
    /// not already contained per-job.
    pub panicked_joins: u64,
    /// Aggregated tier-up execution counters across every worker: block
    /// compiles, invalidations and the tier-1 / tier-0 instruction split
    /// (drained from each worker's [`SpeculationScratch`] after every job).
    pub tier: TierStats,
}

#[derive(Default)]
struct SharedCounters {
    completed: AtomicU64,
    faulted: AtomicU64,
    exhausted: AtomicU64,
    inserted: AtomicU64,
    panicked: AtomicU64,
    deadline_killed: AtomicU64,
    tier_blocks_compiled: AtomicU64,
    tier_blocks_invalidated: AtomicU64,
    tier_fused_ops: AtomicU64,
    tier1_instructions: AtomicU64,
    tier0_instructions: AtomicU64,
}

impl SharedCounters {
    /// Folds one job's tier counters into the pool-wide totals.
    fn record_tier(&self, stats: &TierStats) {
        self.tier_blocks_compiled.fetch_add(stats.blocks_compiled, Ordering::Relaxed);
        self.tier_blocks_invalidated.fetch_add(stats.blocks_invalidated, Ordering::Relaxed);
        self.tier_fused_ops.fetch_add(stats.fused_ops, Ordering::Relaxed);
        self.tier1_instructions.fetch_add(stats.tier1_instructions, Ordering::Relaxed);
        self.tier0_instructions.fetch_add(stats.tier0_instructions, Ordering::Relaxed);
    }

    fn tier_snapshot(&self) -> TierStats {
        TierStats {
            blocks_compiled: self.tier_blocks_compiled.load(Ordering::Relaxed),
            blocks_invalidated: self.tier_blocks_invalidated.load(Ordering::Relaxed),
            fused_ops: self.tier_fused_ops.load(Ordering::Relaxed),
            tier1_instructions: self.tier1_instructions.load(Ordering::Relaxed),
            tier0_instructions: self.tier0_instructions.load(Ordering::Relaxed),
        }
    }
}

/// Everything a worker (and the monitor respawning workers) needs, behind
/// one `Arc`. Holding the queue's receiver here — not in the worker
/// closures — keeps queued jobs alive across worker deaths: a respawned
/// worker resumes draining exactly where the dead one stopped.
struct WorkerShared {
    receiver: Mutex<Receiver<QueuedJob>>,
    cache: Arc<TrajectoryCache>,
    counters: SharedCounters,
    /// Fingerprints of start states queued or executing right now; prevents
    /// wasting workers on duplicate speculation when the main thread
    /// re-plans overlapping rollouts at consecutive occurrences.
    inflight: Mutex<HashSet<u64>>,
    supervision: Supervision,
    /// Live worker threads. Incremented *before* each spawn and decremented
    /// at thread exit (or on spawn failure), so it never underflows however
    /// quickly a worker dies.
    live: AtomicUsize,
}

/// Messages to the monitor thread. The monitor is spawned before any
/// worker, and workers are handed to it by message — so a handle exists
/// somewhere even when a later spawn in the startup loop fails.
enum ExitEvent {
    /// A freshly spawned worker's handle, from the pool's startup loop.
    Adopt { index: usize, handle: JoinHandle<()> },
    /// Worker `index` contained a job panic and retired; join the corpse
    /// and decide whether to respawn the slot.
    Panicked { index: usize },
    /// The pool is shutting down: join every remaining worker and exit.
    Shutdown,
}

/// A persistent pool of speculation worker threads feeding a shared
/// trajectory cache.
pub struct SpeculationPool {
    sender: Option<SyncSender<QueuedJob>>,
    shared: Arc<WorkerShared>,
    exit_sender: Sender<ExitEvent>,
    monitor: Option<JoinHandle<()>>,
    dispatched: u64,
    dropped: u64,
    deduplicated: u64,
}

impl std::fmt::Debug for SpeculationPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeculationPool")
            .field("workers", &self.workers())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SpeculationPool {
    /// Spawns `workers` threads inserting into `cache`, with default
    /// (no-op) supervision: no deadline, no fault injection, panics still
    /// contained and counted.
    ///
    /// # Panics
    /// Panics when `workers` is zero — callers decide between inline and
    /// pooled speculation, a zero-thread pool is always a caller bug.
    pub fn new(workers: usize, cache: Arc<TrajectoryCache>) -> Self {
        Self::with_supervision(workers, cache, Supervision::default())
    }

    /// Spawns `workers` threads under the given supervision context.
    ///
    /// Thread-spawn failure is *not* fatal: the pool runs with however many
    /// workers could be spawned — recorded as
    /// [`spawn_failures`](crate::supervisor::HealthStats::spawn_failures) —
    /// and a pool with zero live workers degrades to dropping every
    /// dispatch, which the runtime treats exactly like a saturated queue.
    ///
    /// # Panics
    /// Panics when `workers` is zero (see [`new`](SpeculationPool::new)).
    pub fn with_supervision(
        workers: usize,
        cache: Arc<TrajectoryCache>,
        supervision: Supervision,
    ) -> Self {
        assert!(workers > 0, "a speculation pool needs at least one worker");
        // A shallow queue: speculative work goes stale quickly (the main
        // thread moves on), so buffering deeply only wastes memory on
        // predictions that will be outdated by the time a worker frees up.
        let (sender, receiver) = sync_channel::<QueuedJob>(workers * 4);
        let shared = Arc::new(WorkerShared {
            receiver: Mutex::new(receiver),
            cache,
            counters: SharedCounters::default(),
            inflight: Mutex::new(HashSet::new()),
            supervision,
            live: AtomicUsize::new(0),
        });
        // The monitor is spawned first so every worker handle has somewhere
        // to live; if even the monitor cannot be spawned, fall back to a
        // supervisor-less pool (workers unsupervised but still panic-safe
        // per job; shutdown joins nothing it was not told about).
        let (exit_sender, exit_receiver) = std::sync::mpsc::channel::<ExitEvent>();
        let monitor = {
            let shared = Arc::clone(&shared);
            let exit_sender = exit_sender.clone();
            std::thread::Builder::new()
                .name("asc-supervisor".into())
                .spawn(move || monitor_loop(&exit_receiver, &shared, &exit_sender))
                .ok()
        };
        if monitor.is_none() {
            shared.supervision.health.record_spawn_failures(1);
        }
        let pool = SpeculationPool {
            sender: Some(sender),
            shared,
            exit_sender,
            monitor,
            dispatched: 0,
            dropped: 0,
            deduplicated: 0,
        };
        for index in 0..workers {
            match spawn_worker(index, &pool.shared, &pool.exit_sender) {
                Ok(handle) => {
                    // The monitor owns every join handle. With no monitor the
                    // send fails and the handle is detached — nothing joins
                    // it, but workers exit on queue close regardless.
                    let _ = pool.exit_sender.send(ExitEvent::Adopt { index, handle });
                }
                Err(_) => {
                    pool.shared.supervision.health.record_spawn_failures(1);
                }
            }
        }
        pool
    }

    /// Number of live worker threads (shrinks when supervision abandons a
    /// slot, grows back while respawns succeed).
    pub fn workers(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// The pool's supervision context (shared health counters).
    pub fn supervision(&self) -> &Supervision {
        &self.shared.supervision
    }

    /// Number of jobs currently queued or executing.
    pub fn pending(&self) -> usize {
        self.shared.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the pool has at least as much queued/executing work as it has
    /// workers. The runtime uses this to skip re-planning (the expensive
    /// predictor rollout) while a previous batch is still in flight.
    pub fn is_saturated(&self) -> bool {
        self.pending() >= self.workers()
    }

    /// Queues a job without blocking. Returns `false` when the job was
    /// rejected: either an identical start state is already in flight
    /// (counted in `deduplicated`) or every worker is busy and the queue is
    /// full (counted in `dropped`).
    pub fn dispatch(&mut self, job: SpeculationJob) -> bool {
        let fingerprint = state_fingerprint(&job.start);
        {
            let mut inflight =
                self.shared.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !inflight.insert(fingerprint) {
                self.deduplicated += 1;
                return false;
            }
        }
        let sender = self.sender.as_ref().expect("pool already shut down");
        match sender.try_send(QueuedJob { job, fingerprint }) {
            Ok(()) => {
                self.dispatched += 1;
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared
                    .inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&fingerprint);
                self.dropped += 1;
                false
            }
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let counters = &self.shared.counters;
        PoolStats {
            dispatched: self.dispatched,
            dropped: self.dropped,
            deduplicated: self.deduplicated,
            completed: counters.completed.load(Ordering::Relaxed),
            faulted: counters.faulted.load(Ordering::Relaxed),
            exhausted: counters.exhausted.load(Ordering::Relaxed),
            inserted: counters.inserted.load(Ordering::Relaxed),
            panicked: counters.panicked.load(Ordering::Relaxed),
            deadline_killed: counters.deadline_killed.load(Ordering::Relaxed),
            panicked_joins: self.shared.supervision.health.panicked_joins(),
            tier: counters.tier_snapshot(),
        }
    }

    /// Closes the queue, drains outstanding jobs, joins every worker and
    /// the monitor, and returns the final counters — including
    /// [`panicked_joins`](PoolStats::panicked_joins), the number of worker
    /// deaths first surfaced by the join rather than contained in flight.
    pub fn shutdown(mut self) -> PoolStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        self.sender = None; // closing the channel ends every worker loop
        if let Some(monitor) = self.monitor.take() {
            // The explicit message is required: the monitor holds a sender
            // clone of its own channel, so a disconnect can never reach it.
            let _ = self.exit_sender.send(ExitEvent::Shutdown);
            if monitor.join().is_err() {
                self.shared.supervision.health.record_panicked_joins(1);
            }
        }
    }
}

impl Drop for SpeculationPool {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Spawns one worker thread. `live` is incremented first and decremented on
/// the failure path (and by the worker itself at exit), so the counter is
/// correct no matter how quickly the thread dies.
fn spawn_worker(
    index: usize,
    shared: &Arc<WorkerShared>,
    exit: &Sender<ExitEvent>,
) -> std::io::Result<JoinHandle<()>> {
    shared.live.fetch_add(1, Ordering::Relaxed);
    if shared.supervision.spawn_fault() {
        shared.live.fetch_sub(1, Ordering::Relaxed);
        return Err(std::io::Error::other("injected worker spawn failure"));
    }
    let result = std::thread::Builder::new().name(format!("asc-speculator-{index}")).spawn({
        let shared = Arc::clone(shared);
        let exit = exit.clone();
        move || {
            worker_loop(&shared, &exit, index);
            shared.live.fetch_sub(1, Ordering::Relaxed);
        }
    });
    if result.is_err() {
        shared.live.fetch_sub(1, Ordering::Relaxed);
    }
    result
}

/// The monitor: adopts worker handles, joins panicked workers and respawns
/// their slot with exponential backoff until the restart budget runs out,
/// then joins everything at shutdown and surfaces uncontained panics.
fn monitor_loop(
    events: &Receiver<ExitEvent>,
    shared: &Arc<WorkerShared>,
    exit_sender: &Sender<ExitEvent>,
) {
    let supervision = &shared.supervision;
    let mut handles: HashMap<usize, JoinHandle<()>> = HashMap::new();
    let mut restarts: HashMap<usize, u32> = HashMap::new();
    loop {
        match events.recv() {
            Ok(ExitEvent::Adopt { index, handle }) => {
                handles.insert(index, handle);
            }
            Ok(ExitEvent::Panicked { index }) => {
                if let Some(handle) = handles.remove(&index) {
                    // The worker contained the panic and already counted
                    // it; it exits right after sending, so this join is
                    // immediate and (normally) clean.
                    if handle.join().is_err() {
                        supervision.health.record_panicked_joins(1);
                    }
                }
                let attempt = restarts.entry(index).or_insert(0);
                *attempt += 1;
                if *attempt > supervision.max_restarts {
                    supervision.health.record_workers_lost(1);
                    continue;
                }
                let backoff = supervision.backoff_ms << (*attempt - 1).min(6);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                match spawn_worker(index, shared, exit_sender) {
                    Ok(handle) => {
                        supervision.health.record_worker_restarts(1);
                        handles.insert(index, handle);
                    }
                    Err(_) => {
                        supervision.health.record_spawn_failures(1);
                        supervision.health.record_workers_lost(1);
                    }
                }
            }
            // `Err` is a backstop: the monitor holds a sender clone, so the
            // channel cannot disconnect while it runs.
            Ok(ExitEvent::Shutdown) | Err(_) => break,
        }
    }
    for handle in handles.into_values() {
        if handle.join().is_err() {
            supervision.health.record_panicked_joins(1);
        }
    }
}

fn worker_loop(shared: &WorkerShared, exit: &Sender<ExitEvent>, index: usize) {
    // One scratch (dependency vector + tier-up block cache) for the
    // worker's whole lifetime: reset between jobs, never reallocated while
    // the state size is stable — so blocks compiled for one job keep paying
    // off across every later job speculating over the same code.
    let mut scratch = SpeculationScratch::with_tier(shared.supervision.tier);
    loop {
        // Take the lock only to receive; execution happens unlocked so
        // workers genuinely run concurrently.
        let queued = {
            let guard = shared.receiver.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(queued) = queued else { return };
        if run_one_job(shared, queued, &mut scratch) {
            // The job panicked. The panic was contained and counted, but
            // the scratch (and anything else touched mid-unwind) is
            // suspect: retire this worker and let the monitor respawn the
            // slot with a fresh one.
            let _ = exit.send(ExitEvent::Panicked { index });
            return;
        }
    }
}

/// Runs one job under `catch_unwind` and the supervision deadline; returns
/// `true` when the job panicked (contained) and the worker must retire.
fn run_one_job(shared: &WorkerShared, queued: QueuedJob, scratch: &mut SpeculationScratch) -> bool {
    let QueuedJob { job, fingerprint } = queued;
    // Released on every exit path, including panics mid-execution;
    // afterwards, identical predictions are filtered by the cache-coverage
    // check instead.
    let _inflight = InflightGuard { inflight: &shared.inflight, fingerprint };
    let faults = shared.supervision.job_faults();
    let (budget, deadline_bound) = shared.supervision.job_budget(job.max_instructions);
    // An injected stall models a runaway speculation: a stride no real
    // program reaches, so the job burns its whole budget and the deadline
    // (when armed) is what kills it.
    let stride = if faults.stall { usize::MAX } else { job.stride };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if faults.panic {
            panic!("injected worker panic");
        }
        execute_superstep_with(&job.start, job.rip, stride, budget, scratch)
    }));
    let counters = &shared.counters;
    // Drain tier counters unconditionally: even a faulted or panicked job
    // retired real instructions, and the drain keeps per-job deltas from
    // double counting when the scratch outlives thousands of jobs.
    counters.record_tier(&scratch.take_tier_stats());
    match outcome {
        Err(_) => {
            counters.panicked.fetch_add(1, Ordering::Relaxed);
            shared.supervision.health.record_worker_panics(1);
            true
        }
        Ok(Ok(SpeculationResult::Completed(outcome))) => {
            if outcome.reached_rip || outcome.halted {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                shared.supervision.health.record_jobs_ok(1);
                #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
                let mut entry = outcome.entry;
                #[cfg(feature = "fault-inject")]
                if let Some(selector) = faults.corrupt {
                    entry.corrupt_payload(selector);
                }
                if shared.cache.insert(entry) {
                    counters.inserted.fetch_add(1, Ordering::Relaxed);
                }
            } else if deadline_bound {
                // The deadline, not the job's own budget, was the binding
                // constraint: this speculation was killed, not merely
                // unlucky.
                counters.deadline_killed.fetch_add(1, Ordering::Relaxed);
                shared.supervision.health.record_deadline_kills(1);
            } else {
                counters.exhausted.fetch_add(1, Ordering::Relaxed);
                shared.supervision.health.record_jobs_ok(1);
            }
            false
        }
        Ok(Ok(SpeculationResult::Faulted { .. })) | Ok(Err(_)) => {
            // Faults are the expected price of mispredicted start states;
            // the result is simply discarded (§4.1).
            counters.faulted.fetch_add(1, Ordering::Relaxed);
            shared.supervision.health.record_jobs_ok(1);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_tvm::machine::Machine;

    fn looping_program() -> (asc_tvm::program::Program, u32) {
        let program = assemble(
            r#"
            main:
                movi r1, 200
                movi r2, 0
            loop:
                add  r2, r2, r1
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#,
        )
        .unwrap();
        let rip = program.symbol("loop").unwrap();
        (program, rip)
    }

    #[test]
    fn workers_execute_jobs_and_fill_the_cache() {
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();

        let cache = Arc::new(TrajectoryCache::new(1024));
        let mut pool = SpeculationPool::new(4, Arc::clone(&cache));
        assert_eq!(pool.workers(), 4);

        // Dispatch one job per loop iteration state.
        let mut dispatched = 0;
        for _ in 0..32 {
            let job = SpeculationJob {
                start: machine.state().clone(),
                rip,
                stride: 1,
                max_instructions: 10_000,
            };
            // Retry briefly: the queue is bounded and this test dispatches
            // faster than tiny supersteps complete.
            for _ in 0..1000 {
                if pool.dispatch(job.clone()) {
                    dispatched += 1;
                    break;
                }
                std::thread::yield_now();
            }
            machine.run_until_ip(rip, 1_000).unwrap();
        }
        assert!(dispatched > 0);
        let stats = pool.shutdown();
        assert_eq!(stats.completed + stats.faulted + stats.exhausted, stats.dispatched);
        assert_eq!(stats.panicked, 0);
        assert_eq!(stats.panicked_joins, 0);
        assert!(stats.inserted > 0);
        assert!(!cache.is_empty());
        // Default supervision has the tier enabled, and `seed_hot(rip)` makes
        // the inter-occurrence region compile on a worker's first arrival —
        // so the pool must report tier-1 activity, not just tier-0 stepping.
        assert!(stats.tier.blocks_compiled > 0, "{stats:?}");
        assert!(stats.tier.tier1_instructions > 0, "{stats:?}");

        // Every inserted entry fast-forwards correctly: applying it to a
        // matching state must equal direct execution.
        let mut check = Machine::load(&program).unwrap();
        check.run_until_ip(rip, 1_000).unwrap();
        if let Some(entry) = cache.peek(rip, check.state()) {
            let mut forwarded = check.state().clone();
            entry.apply(&mut forwarded);
            let mut direct = Machine::from_state(check.state().clone());
            direct.run_until_ip(rip, 10_000).unwrap();
            assert_eq!(&forwarded, direct.state());
        }
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(1, Arc::clone(&cache));
        // Flood with slow, *distinct* jobs (whole-program budget); the
        // bounded queue must reject some without blocking this thread.
        for i in 0..256u32 {
            let mut state = start.clone();
            state.set_reg_index(1, i);
            pool.dispatch(SpeculationJob {
                start: state,
                rip,
                stride: usize::MAX,
                max_instructions: 1_000,
            });
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatched + stats.dropped + stats.deduplicated, 256);
        assert!(stats.dropped > 0, "{stats:?}");
        pool.shutdown();
    }

    #[test]
    fn duplicate_start_states_are_dispatched_once() {
        // An endless spin keeps the single worker busy for the whole test,
        // so the in-flight set deterministically contains the first job.
        let program = assemble("spin:\n jmp spin\n").unwrap();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(1, Arc::clone(&cache));
        let job = SpeculationJob {
            start,
            rip: 8, // never reached: the IP stays at the spin
            stride: 1,
            max_instructions: 2_000_000,
        };
        assert!(pool.dispatch(job.clone()));
        // While the first copy is queued or executing, identical start
        // states are refused without consuming queue slots.
        for _ in 0..8 {
            assert!(!pool.dispatch(job.clone()));
        }
        let stats = pool.stats();
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.deduplicated, 8);
        assert_eq!(stats.dropped, 0);
        assert!(pool.pending() >= 1);
        let final_stats = pool.shutdown();
        // The spin exhausts its budget without reaching the rip.
        assert_eq!(final_stats.exhausted, 1);
    }

    #[test]
    fn shutdown_drains_outstanding_work() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(2, Arc::clone(&cache));
        let mut dispatched = 0;
        for _ in 0..8 {
            if pool.dispatch(SpeculationJob {
                start: start.clone(),
                rip,
                stride: 1,
                max_instructions: 10_000,
            }) {
                dispatched += 1;
            }
        }
        let stats = pool.shutdown();
        assert_eq!(stats.dispatched, dispatched);
        assert_eq!(stats.completed + stats.faulted + stats.exhausted, dispatched);
    }

    #[test]
    fn deadline_kills_runaway_jobs() {
        // A spin never reaches its rip; without a deadline it would burn
        // its whole 2M-instruction budget and count as `exhausted`. With
        // the supervision deadline armed, it is killed early and counted
        // as a deadline kill instead.
        let program = assemble("spin:\n jmp spin\n").unwrap();
        let start = program.initial_state().unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let supervision = Supervision { job_deadline: 1_000, ..Supervision::default() };
        let mut pool = SpeculationPool::with_supervision(1, Arc::clone(&cache), supervision);
        assert!(pool.dispatch(SpeculationJob {
            start,
            rip: 8,
            stride: 1,
            max_instructions: 2_000_000,
        }));
        let health = Arc::clone(&pool.supervision().health);
        let stats = pool.shutdown();
        assert_eq!(stats.deadline_killed, 1, "{stats:?}");
        assert_eq!(stats.exhausted, 0, "{stats:?}");
        assert_eq!(health.deadline_kills(), 1);
    }

    #[test]
    fn deadline_above_job_budget_never_binds() {
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let cache = Arc::new(TrajectoryCache::new(64));
        let supervision = Supervision { job_deadline: 1_000_000, ..Supervision::default() };
        let mut pool = SpeculationPool::with_supervision(1, Arc::clone(&cache), supervision);
        assert!(pool.dispatch(SpeculationJob {
            start: machine.state().clone(),
            rip,
            stride: 1,
            max_instructions: 10_000,
        }));
        let stats = pool.shutdown();
        assert_eq!(stats.completed, 1, "{stats:?}");
        assert_eq!(stats.deadline_killed, 0);
    }

    #[cfg(feature = "fault-inject")]
    mod injected {
        use super::*;
        use crate::fault::{FaultPlan, FaultState};

        fn supervision_with(plan: FaultPlan) -> Supervision {
            Supervision {
                faults: Some(Arc::new(FaultState::new(plan))),
                backoff_ms: 0,
                max_restarts: 16,
                ..Supervision::default()
            }
        }

        #[test]
        fn injected_panics_are_contained_and_workers_respawn() {
            let (program, rip) = looping_program();
            let mut machine = Machine::load(&program).unwrap();
            machine.run_until_ip(rip, 1_000).unwrap();
            let cache = Arc::new(TrajectoryCache::new(1024));
            // The first 3 jobs all panic; later jobs run clean.
            let plan = FaultPlan {
                seed: 5,
                worker_panic_rate: 1.0,
                burst_jobs: 3,
                ..FaultPlan::default()
            };
            let mut pool =
                SpeculationPool::with_supervision(2, Arc::clone(&cache), supervision_with(plan));
            let health = Arc::clone(&pool.supervision().health);
            let mut dispatched = 0;
            for _ in 0..12 {
                let job = SpeculationJob {
                    start: machine.state().clone(),
                    rip,
                    stride: 1,
                    max_instructions: 10_000,
                };
                for _ in 0..1000 {
                    if pool.dispatch(job.clone()) {
                        dispatched += 1;
                        break;
                    }
                    std::thread::yield_now();
                }
                machine.run_until_ip(rip, 1_000).unwrap();
            }
            // Wait until every injected panic has been contained and its
            // slot respawned, so shutdown deterministically drains the
            // remaining queue with live workers.
            for _ in 0..2_000 {
                if pool.stats().panicked == 3 && health.worker_restarts() == 3 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let stats = pool.shutdown();
            assert_eq!(stats.panicked, 3, "{stats:?}");
            assert_eq!(health.worker_panics(), 3);
            // Every panicked worker was respawned (budget is ample), so no
            // dispatched job was stranded.
            assert_eq!(health.worker_restarts(), 3);
            assert_eq!(health.workers_lost(), 0);
            assert_eq!(
                stats.completed + stats.faulted + stats.exhausted + stats.panicked,
                dispatched,
                "{stats:?}"
            );
        }

        #[test]
        fn exhausted_restart_budget_shrinks_the_pool() {
            let program = assemble("spin:\n jmp spin\n").unwrap();
            let start = program.initial_state().unwrap();
            let cache = Arc::new(TrajectoryCache::new(64));
            // Every job panics forever; one worker with zero respawns.
            let plan = FaultPlan { seed: 2, worker_panic_rate: 1.0, ..FaultPlan::default() };
            let supervision = Supervision {
                faults: Some(Arc::new(FaultState::new(plan))),
                backoff_ms: 0,
                max_restarts: 0,
                ..Supervision::default()
            };
            let mut pool = SpeculationPool::with_supervision(1, Arc::clone(&cache), supervision);
            let health = Arc::clone(&pool.supervision().health);
            assert!(pool.dispatch(SpeculationJob {
                start,
                rip: 8,
                stride: 1,
                max_instructions: 1_000,
            }));
            // Wait for the panic to be contained and the slot abandoned.
            for _ in 0..2_000 {
                if health.workers_lost() == 1 && pool.workers() == 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(health.workers_lost(), 1);
            assert_eq!(health.worker_restarts(), 0);
            assert_eq!(pool.workers(), 0, "abandoned slot must shrink the live count");
            // Dispatch still cannot wedge: the queue buffers then drops.
            for _ in 0..64 {
                let mut state = program.initial_state().unwrap();
                state.set_reg_index(1, 7);
                pool.dispatch(SpeculationJob {
                    start: state,
                    rip: 8,
                    stride: 1,
                    max_instructions: 1_000,
                });
            }
            let stats = pool.shutdown();
            assert_eq!(stats.panicked, 1);
        }

        #[test]
        fn spawn_failures_degrade_to_a_smaller_pool() {
            let cache = Arc::new(TrajectoryCache::new(64));
            let plan = FaultPlan { seed: 11, spawn_failure_rate: 1.0, ..FaultPlan::default() };
            let pool =
                SpeculationPool::with_supervision(4, Arc::clone(&cache), supervision_with(plan));
            let health = Arc::clone(&pool.supervision().health);
            assert_eq!(pool.workers(), 0, "every spawn was injected to fail");
            assert_eq!(health.spawn_failures(), 4);
            // No abort, and shutdown of an empty pool is clean.
            let stats = pool.shutdown();
            assert_eq!(stats.dispatched, 0);
        }

        #[test]
        fn corrupted_entries_never_reach_a_lookup() {
            let (program, rip) = looping_program();
            let mut machine = Machine::load(&program).unwrap();
            machine.run_until_ip(rip, 1_000).unwrap();
            let cache = Arc::new(TrajectoryCache::new(1024));
            // Every completed entry gets a payload bit flipped pre-insert.
            let plan = FaultPlan { seed: 3, entry_corruption_rate: 1.0, ..FaultPlan::default() };
            let mut pool =
                SpeculationPool::with_supervision(1, Arc::clone(&cache), supervision_with(plan));
            let mut dispatched = 0;
            for _ in 0..8 {
                let job = SpeculationJob {
                    start: machine.state().clone(),
                    rip,
                    stride: 1,
                    max_instructions: 10_000,
                };
                for _ in 0..1000 {
                    if pool.dispatch(job.clone()) {
                        dispatched += 1;
                        break;
                    }
                    std::thread::yield_now();
                }
                machine.run_until_ip(rip, 1_000).unwrap();
            }
            assert!(dispatched > 0);
            let stats = pool.shutdown();
            assert!(stats.inserted > 0, "corrupted entries still insert ({stats:?})");
            // Replay the whole trajectory: no corrupted entry may be served.
            let mut check = Machine::load(&program).unwrap();
            check.run_until_ip(rip, 1_000).unwrap();
            for _ in 0..40 {
                assert!(cache.lookup(rip, check.state()).is_none());
                if check.run_until_ip(rip, 1_000).is_err() {
                    break;
                }
            }
            assert!(cache.stats().checksum_rejects > 0);
        }
    }
}
