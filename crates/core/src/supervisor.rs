//! Supervision layer of the speculation runtime: health accounting, the
//! degrade-to-inline circuit breaker, and the shared context that threads
//! both through the worker pool and the planner.
//!
//! The paper's safety argument — speculation can only ever be *discarded*,
//! never change results — covers mispredictions for free. This module
//! extends the same economy to execution failures:
//!
//! - every speculation job runs under `catch_unwind` with an optional
//!   per-job instruction deadline; panics and deadline kills retire the job
//!   and release its in-flight permit instead of wedging the pool,
//! - panicked workers are respawned with exponential backoff up to a
//!   restart budget, then their slot is abandoned and the pool shrinks,
//! - every contained failure ticks a counter on the shared
//!   [`HealthMonitor`], surfaced as [`HealthStats`] alongside the cache's
//!   [`CacheStats`](crate::cache::CacheStats),
//! - a [`CircuitBreaker`] watches the windowed failure rate and trips the
//!   runtime to plain inline execution when the speculation machinery is
//!   sick, with a half-open probe to recover — never slower-than-inline.
//!
//! The breaker itself is deliberately single-threaded state: it lives on
//! the main thread inside `accelerate`, fed once per recognized-IP
//! occurrence from the monitor's atomic counters (worker-side events) and
//! the cache's integrity-reject total. Thresholds and the breaker's own
//! failure model are documented on [`BreakerConfig`]; the repo-wide
//! failure-model table (every failure class → detection → degradation →
//! counter) lives in `ROBUSTNESS.md` at the repository root.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::{AscConfig, BreakerConfig, WatchdogConfig};

/// Snapshot of the supervised runtime's failure counters, reported next to
/// [`CacheStats`](crate::cache::CacheStats) in
/// [`RunReport`](crate::runtime::RunReport).
///
/// All counts cover one `accelerate` run. A healthy fault-free run reports
/// all zeros (checksum/collision rejects excepted: genuine 64-bit hash
/// collisions are possible, if astronomically rare).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Speculation jobs whose execution panicked; each was contained by
    /// `catch_unwind`, its in-flight permit released, and its worker
    /// retired (the scratch state is suspect mid-unwind).
    pub worker_panics: u64,
    /// Workers respawned by the supervisor after a panic.
    pub worker_restarts: u64,
    /// Worker slots abandoned after exhausting
    /// [`max_worker_restarts`](AscConfig::max_worker_restarts); the pool
    /// runs shrunk by this many threads.
    pub workers_lost: u64,
    /// Worker threads the pool failed to spawn at startup (or respawn); the
    /// pool runs with fewer workers instead of aborting, down to inline at
    /// zero.
    pub spawn_failures: u64,
    /// Worker joins at shutdown that reported a panic the supervisor had
    /// not already accounted (a panic outside the per-job `catch_unwind`).
    pub panicked_joins: u64,
    /// Speculation jobs killed for exceeding
    /// [`job_deadline_instructions`](AscConfig::job_deadline_instructions).
    pub deadline_kills: u64,
    /// Planner-thread deaths detected by the main loop (each one falls the
    /// run back to miss-driven dispatch).
    pub planner_panics: u64,
    /// Times the circuit breaker tripped speculation off to inline
    /// execution.
    pub breaker_trips: u64,
    /// Times a half-open probe succeeded and re-closed the breaker.
    pub breaker_recoveries: u64,
    /// Recognized-IP occurrences that ran with the breaker open (speculation
    /// suppressed).
    pub breaker_open_occurrences: u64,
    /// Cache entries rejected at apply time because their payload checksum
    /// no longer verified (mirrors
    /// [`CacheStats::checksum_rejects`](crate::cache::CacheStats::checksum_rejects)).
    pub checksum_rejects: u64,
    /// Faults the injector actually fired (always 0 without the
    /// `fault-inject` feature); lets the soak harness assert the campaign
    /// really ran.
    pub injected_faults: u64,
    /// No-progress intervals the liveness [`Watchdog`] detected: the
    /// heartbeat went a full deadline without a single occurrence tick —
    /// livelock, a hung lock or a wedged pool, failure classes the windowed
    /// breaker cannot see because nothing *fails*.
    pub watchdog_stalls: u64,
    /// Escalation stages the watchdog fired in response: stage 1 force-opens
    /// the breaker, stage 2 tears down the worker pool and finishes inline.
    pub watchdog_escalations: u64,
}

/// Thread-shared failure counters ticked by workers, the planner and the
/// main loop; snapshot into [`HealthStats`] when a run reports.
///
/// All counters are relaxed atomics: they are statistics, ordered by the
/// channel and join synchronization that already sequences the events
/// themselves.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    worker_panics: AtomicU64,
    worker_restarts: AtomicU64,
    workers_lost: AtomicU64,
    spawn_failures: AtomicU64,
    panicked_joins: AtomicU64,
    deadline_kills: AtomicU64,
    planner_panics: AtomicU64,
    injected_faults: AtomicU64,
    jobs_ok: AtomicU64,
}

macro_rules! monitor_counter {
    ($($(#[$doc:meta])* $record:ident / $read:ident => $field:ident;)*) => {
        $(
            $(#[$doc])*
            pub fn $record(&self, n: u64) {
                self.$field.fetch_add(n, Ordering::Relaxed);
            }

            /// The running total recorded so far.
            pub fn $read(&self) -> u64 {
                self.$field.load(Ordering::Relaxed)
            }
        )*
    };
}

impl HealthMonitor {
    monitor_counter! {
        /// Records contained worker panics.
        record_worker_panics / worker_panics => worker_panics;
        /// Records supervisor worker respawns.
        record_worker_restarts / worker_restarts => worker_restarts;
        /// Records worker slots abandoned after the restart budget.
        record_workers_lost / workers_lost => workers_lost;
        /// Records worker threads that failed to spawn.
        record_spawn_failures / spawn_failures => spawn_failures;
        /// Records panics first surfaced by a shutdown join.
        record_panicked_joins / panicked_joins => panicked_joins;
        /// Records speculation jobs killed at their instruction deadline.
        record_deadline_kills / deadline_kills => deadline_kills;
        /// Records detected planner-thread deaths.
        record_planner_panics / planner_panics => planner_panics;
        /// Records faults the injector fired.
        record_injected_faults / injected_faults => injected_faults;
        /// Records speculation jobs that retired normally — completed,
        /// mispredict-faulted or budget-exhausted. Not a [`HealthStats`]
        /// field (the pool's [`PoolStats`](crate::workers::PoolStats)
        /// already breaks retirements down); it exists as the breaker's
        /// success feed, observable from the main thread in every mode.
        record_jobs_ok / jobs_ok => jobs_ok;
    }

    /// Snapshot of every monitor counter. Breaker and cache-side fields are
    /// filled in by the caller (they live on the main thread and in the
    /// cache respectively).
    pub fn snapshot(&self) -> HealthStats {
        HealthStats {
            worker_panics: self.worker_panics(),
            worker_restarts: self.worker_restarts(),
            workers_lost: self.workers_lost(),
            spawn_failures: self.spawn_failures(),
            panicked_joins: self.panicked_joins(),
            deadline_kills: self.deadline_kills(),
            planner_panics: self.planner_panics(),
            injected_faults: self.injected_faults(),
            ..HealthStats::default()
        }
    }

    /// Total worker-side failure events (panics + deadline kills) — the
    /// monitor's contribution to the breaker's failure feed. The runtime
    /// polls this once per occurrence and feeds the *delta* to the breaker.
    pub fn failure_events(&self) -> u64 {
        self.worker_panics() + self.deadline_kills()
    }
}

/// The breaker's position in its trip/probe cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Speculation runs normally; failures are being watched.
    Closed,
    /// Speculation is suppressed; the runtime executes inline until the
    /// cooldown elapses.
    Open,
    /// Probe mode: speculation runs again, and the next few events decide
    /// between re-closing and re-tripping.
    HalfOpen,
}

/// Windowed failure-rate circuit breaker; thresholds and failure model on
/// [`BreakerConfig`].
///
/// Single-threaded by design: owned by the main loop, fed per-occurrence
/// deltas of the shared failure counters, and consulted before every
/// dispatch decision via [`allows_speculation`].
///
/// [`allows_speculation`]: CircuitBreaker::allows_speculation
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    /// Ring of the last `config.window` events; `true` = failure.
    window: std::collections::VecDeque<bool>,
    failures_in_window: u32,
    state: BreakerState,
    /// Occurrences left before an open breaker half-opens.
    cooldown_remaining: u64,
    /// Consecutive trips without an intervening recovery; scales the
    /// cooldown exponentially (capped at 64×).
    consecutive_trips: u32,
    /// Successes seen so far in the current half-open probe.
    probe_streak: u32,
    trips: u64,
    recoveries: u64,
    open_occurrences: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        let window = std::collections::VecDeque::with_capacity(config.window);
        CircuitBreaker {
            config,
            window,
            failures_in_window: 0,
            state: BreakerState::Closed,
            cooldown_remaining: 0,
            consecutive_trips: 0,
            probe_streak: 0,
            trips: 0,
            recoveries: 0,
            open_occurrences: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the runtime may speculate right now (dispatch to workers,
    /// speculate inline, or stream occurrences to the planner). Open means
    /// no: execute plainly and wait out the cooldown.
    pub fn allows_speculation(&self) -> bool {
        !matches!(self.state, BreakerState::Open)
    }

    /// Times the breaker tripped so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Times a half-open probe re-closed the breaker.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Advances per-occurrence time: counts open time and half-opens the
    /// breaker when the cooldown elapses. Call exactly once per
    /// recognized-IP occurrence.
    pub fn tick_occurrence(&mut self) {
        if self.state == BreakerState::Open {
            self.open_occurrences += 1;
            self.cooldown_remaining = self.cooldown_remaining.saturating_sub(1);
            if self.cooldown_remaining == 0 {
                self.state = BreakerState::HalfOpen;
                self.probe_streak = 0;
            }
        }
    }

    /// Feeds `successes` normally retired speculation events and `failures`
    /// failure events (panics, deadline kills, integrity rejects) into the
    /// window, applying state transitions.
    ///
    /// Failures are applied first: when both arrive in one occurrence the
    /// pessimistic order means a failure burst can trip the breaker before
    /// the same batch's successes dilute the window.
    pub fn record(&mut self, successes: u64, failures: u64) {
        for _ in 0..failures {
            self.record_event(true);
        }
        for _ in 0..successes {
            self.record_event(false);
        }
    }

    fn record_event(&mut self, failure: bool) {
        if !self.config.enabled {
            return;
        }
        match self.state {
            BreakerState::Open => {
                // Stragglers from jobs dispatched before the trip; the
                // window restarts from the probe, so drop them.
            }
            BreakerState::HalfOpen => {
                if failure {
                    self.trip();
                } else {
                    self.probe_streak += 1;
                    if self.probe_streak >= self.config.probe_successes {
                        self.state = BreakerState::Closed;
                        self.consecutive_trips = 0;
                        self.recoveries += 1;
                        self.window.clear();
                        self.failures_in_window = 0;
                    }
                }
            }
            BreakerState::Closed => {
                if self.window.len() == self.config.window && self.window.pop_front() == Some(true)
                {
                    self.failures_in_window -= 1;
                }
                self.window.push_back(failure);
                if failure {
                    self.failures_in_window += 1;
                }
                let rate = f64::from(self.failures_in_window) / self.window.len() as f64;
                if self.failures_in_window >= self.config.min_failures
                    && rate >= self.config.failure_threshold
                {
                    self.trip();
                }
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        let scale = self.consecutive_trips.min(6);
        self.cooldown_remaining = self.config.cooldown_occurrences << scale;
        self.consecutive_trips += 1;
        self.probe_streak = 0;
        self.window.clear();
        self.failures_in_window = 0;
    }

    /// Trips the breaker open unconditionally — the watchdog's stage-1
    /// escalation. A stalled run has produced no failure *events* to push
    /// through the window, so the watchdog opens the breaker directly;
    /// recovery then follows the normal cooldown → half-open → probe path.
    /// No-op while already open (stalls are detected repeatedly) and for a
    /// disabled breaker (which must never suppress speculation; stage-2
    /// pool teardown still applies).
    pub fn force_open(&mut self) {
        if self.config.enabled && self.state != BreakerState::Open {
            self.trip();
        }
    }

    /// Copies the breaker's counters into a [`HealthStats`] being
    /// assembled.
    pub fn fill_stats(&self, stats: &mut HealthStats) {
        stats.breaker_trips = self.trips;
        stats.breaker_recoveries = self.recoveries;
        stats.breaker_open_occurrences = self.open_occurrences;
    }
}

/// Escalation ladder the [`Watchdog`] climbs when the run keeps stalling.
/// Stages are sticky (never de-escalated within a run) and the main loop
/// applies each stage's remedy at its next opportunity.
pub mod watchdog_stage {
    /// Healthy: no remedy requested.
    pub const NONE: u8 = 0;
    /// First stall: force the circuit breaker open, suppressing every form
    /// of speculation dispatch — if the stall was a wedged speculation path,
    /// this un-wedges it at inline speed.
    pub const FORCE_BREAKER: u8 = 1;
    /// Still stalled: tear the worker pool (or planner) down entirely and
    /// finish the run inline — no speculation machinery left to hang on.
    pub const TEAR_DOWN_POOL: u8 = 2;
}

/// The liveness signal between the main loop and the [`Watchdog`] thread.
///
/// The main loop calls [`tick`](Heartbeat::tick) once per recognized-IP
/// occurrence; the watchdog thread watches the counter move. The requested
/// escalation stage travels back the other way, and the stall/escalation
/// counters are copied into [`HealthStats`] when the run reports.
#[derive(Debug, Default)]
pub struct Heartbeat {
    /// Occurrence ticks so far; any change is progress.
    progress: AtomicU64,
    /// Highest escalation stage requested (see [`watchdog_stage`]).
    stage: AtomicU8,
    stalls: AtomicU64,
    escalations: AtomicU64,
}

impl Heartbeat {
    /// Signals one unit of main-loop progress.
    pub fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The progress counter (occurrence ticks observed so far).
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// The escalation stage currently requested of the main loop.
    pub fn stage(&self) -> u8 {
        self.stage.load(Ordering::Relaxed)
    }

    /// No-progress intervals detected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Escalation stages fired so far.
    pub fn escalations(&self) -> u64 {
        self.escalations.load(Ordering::Relaxed)
    }

    /// Records one detected stall and climbs one escalation stage (sticky,
    /// capped at [`watchdog_stage::TEAR_DOWN_POOL`]). Returns the stage now
    /// in force. Called by the watchdog thread; also usable directly from
    /// unit tests.
    pub fn escalate(&self) -> u8 {
        self.stalls.fetch_add(1, Ordering::Relaxed);
        let previous = self.stage.load(Ordering::Relaxed);
        if previous < watchdog_stage::TEAR_DOWN_POOL {
            self.stage.store(previous + 1, Ordering::Relaxed);
            self.escalations.fetch_add(1, Ordering::Relaxed);
        }
        self.stage.load(Ordering::Relaxed)
    }

    /// Copies the watchdog counters into a [`HealthStats`] being assembled.
    pub fn fill_stats(&self, stats: &mut HealthStats) {
        stats.watchdog_stalls = self.stalls();
        stats.watchdog_escalations = self.escalations();
    }
}

/// The run-level liveness watchdog thread.
///
/// The windowed [`CircuitBreaker`] sees failure *events* — panics, deadline
/// kills, integrity rejects. A livelock, a hung lock or a wedged pool
/// produces no events at all: the run simply stops making progress. The
/// watchdog covers exactly that blind spot: it polls the [`Heartbeat`]
/// every `poll_ms` and, when no tick lands within `deadline_ms`, dumps
/// diagnostics to stderr (last rip, progress counter, health-counter
/// snapshot, pool liveness via the jobs-retired counter) and climbs the
/// [`watchdog_stage`] ladder for the main loop to act on. Detection resets
/// after each stall, so a run that stays stalled escalates again a deadline
/// later.
#[derive(Debug)]
pub struct Watchdog {
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl Watchdog {
    /// Spawns the watchdog thread, or returns `None` when disabled by
    /// configuration or the thread could not be spawned (a watchdog failing
    /// to start must degrade to "unwatched", never fail the run).
    pub fn start(
        config: &WatchdogConfig,
        heartbeat: Arc<Heartbeat>,
        health: Arc<HealthMonitor>,
        rip: u32,
    ) -> Option<Watchdog> {
        if !config.enabled {
            return None;
        }
        let deadline = Duration::from_millis(config.deadline_ms.max(1));
        let poll = Duration::from_millis(config.poll_ms.max(1)).min(deadline);
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("asc-watchdog".into())
            .spawn(move || {
                let mut last_progress = heartbeat.progress();
                let mut last_change = Instant::now();
                let mut jobs_seen = health.jobs_ok();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let progress = heartbeat.progress();
                    if progress != last_progress {
                        last_progress = progress;
                        last_change = Instant::now();
                        continue;
                    }
                    if last_change.elapsed() < deadline {
                        continue;
                    }
                    let jobs_now = health.jobs_ok();
                    let snapshot = health.snapshot();
                    let stage = heartbeat.escalate();
                    eprintln!(
                        "asc-watchdog: no progress for {:?} (rip {rip:#x}, {progress} \
                         occurrences, {} speculation jobs retired since last stall, \
                         escalating to stage {stage}); health: {snapshot:?}",
                        last_change.elapsed(),
                        jobs_now.saturating_sub(jobs_seen),
                    );
                    jobs_seen = jobs_now;
                    last_change = Instant::now();
                }
            })
            .ok()?;
        Some(Watchdog { shutdown, thread })
    }

    /// Stops the watchdog thread and waits for it to exit.
    pub fn finish(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

/// Per-job fault decisions handed to a worker by the injector. Without the
/// `fault-inject` feature every field is permanently default — the struct
/// exists so the worker code paths need no `cfg` of their own.
#[derive(Debug, Clone, Copy, Default)]
pub struct InjectedFaults {
    /// Panic inside the job, exercising the `catch_unwind` containment.
    pub panic: bool,
    /// Stall the job so its instruction deadline kills it.
    pub stall: bool,
    /// Flip a payload bit of the completed entry before insert, exercising
    /// the checksum reject; the value selects which bit.
    pub corrupt: Option<u64>,
}

impl InjectedFaults {
    /// How many faults this decision carries (for the injected-fault
    /// counter).
    pub fn count(&self) -> u64 {
        u64::from(self.panic) + u64::from(self.stall) + u64::from(self.corrupt.is_some())
    }
}

/// Everything the worker pool and planner need from the supervision layer,
/// bundled so their constructors take one extra argument: the shared health
/// monitor, the supervisor knobs from [`AscConfig`], and (under
/// `fault-inject`) the fault injector state.
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    /// Shared failure counters.
    pub health: Arc<HealthMonitor>,
    /// Per-job instruction deadline (`0` = none); see
    /// [`AscConfig::job_deadline_instructions`].
    pub job_deadline: u64,
    /// Worker respawn budget per slot; see
    /// [`AscConfig::max_worker_restarts`].
    pub max_restarts: u32,
    /// Base respawn backoff in milliseconds; see
    /// [`AscConfig::worker_restart_backoff_ms`].
    pub backoff_ms: u64,
    /// Tier-1 execution knobs forwarded to every worker's per-job
    /// [`BlockCache`](asc_tvm::BlockCache); see [`AscConfig::tier`].
    pub tier: asc_tvm::TierConfig,
    /// Shared fault-injection state, `None` when no plan is configured.
    #[cfg(feature = "fault-inject")]
    pub faults: Option<Arc<crate::fault::FaultState>>,
}

impl Supervision {
    /// Builds the supervision context for one `accelerate` run.
    pub fn from_config(config: &AscConfig) -> Self {
        Supervision {
            health: Arc::new(HealthMonitor::default()),
            job_deadline: config.job_deadline_instructions,
            max_restarts: config.max_worker_restarts,
            backoff_ms: config.worker_restart_backoff_ms,
            tier: config.tier,
            #[cfg(feature = "fault-inject")]
            faults: config.fault.clone().map(|plan| Arc::new(crate::fault::FaultState::new(plan))),
        }
    }

    /// The effective instruction budget for one speculation job whose
    /// natural budget (from superstep sizing) is `job_budget`; returns the
    /// budget and whether the deadline is the binding constraint (in which
    /// case exhausting it counts as a deadline kill, not a plain
    /// budget-exhausted speculation).
    pub(crate) fn job_budget(&self, job_budget: u64) -> (u64, bool) {
        if self.job_deadline > 0 && self.job_deadline < job_budget {
            (self.job_deadline, true)
        } else {
            (job_budget, false)
        }
    }

    /// Samples the injector for one speculation job. Always default (no
    /// faults) without the `fault-inject` feature.
    pub(crate) fn job_faults(&self) -> InjectedFaults {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            let injected = faults.sample_job();
            let n = injected.count();
            if n > 0 {
                self.health.record_injected_faults(n);
            }
            return injected;
        }
        InjectedFaults::default()
    }

    /// Whether the injector forces the next worker spawn to fail. Always
    /// `false` without the `fault-inject` feature.
    pub(crate) fn spawn_fault(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if faults.sample_spawn_failure() {
                self.health.record_injected_faults(1);
                return true;
            }
        }
        false
    }

    /// Whether the injector aborts the process at this occurrence ordinal
    /// (the kill-resume soak's crash point). Always `false` without the
    /// `fault-inject` feature.
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    pub(crate) fn abort_at(&self, occurrence: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if faults.abort_at(occurrence) {
                return true;
            }
        }
        false
    }

    /// Whether the injector stalls the main loop at this occurrence ordinal
    /// (the watchdog's livelock test). Always `false` without the
    /// `fault-inject` feature.
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    pub(crate) fn stall_at(&self, occurrence: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if faults.stall_at(occurrence) {
                self.health.record_injected_faults(1);
                return true;
            }
        }
        false
    }

    /// Whether the injector kills the planner at this occurrence ordinal.
    /// Always `false` without the `fault-inject` feature.
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))]
    pub(crate) fn planner_death(&self, occurrence: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            if faults.planner_death_at(occurrence) {
                self.health.record_injected_faults(1);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(window: usize, threshold: f64, min_failures: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            enabled: true,
            window,
            failure_threshold: threshold,
            min_failures,
            cooldown_occurrences: cooldown,
            probe_successes: 2,
        })
    }

    #[test]
    fn monitor_counts_and_snapshots() {
        let m = HealthMonitor::default();
        m.record_worker_panics(2);
        m.record_deadline_kills(3);
        m.record_spawn_failures(1);
        assert_eq!(m.failure_events(), 5);
        let snap = m.snapshot();
        assert_eq!(snap.worker_panics, 2);
        assert_eq!(snap.deadline_kills, 3);
        assert_eq!(snap.spawn_failures, 1);
        assert_eq!(snap.breaker_trips, 0);
    }

    #[test]
    fn breaker_stays_closed_below_min_failures() {
        let mut b = breaker(8, 0.5, 4, 10);
        // 3 failures in a window of 4 events: 75% rate but under the floor.
        b.record(1, 3);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_speculation());
    }

    #[test]
    fn breaker_trips_at_threshold_and_counts() {
        let mut b = breaker(8, 0.5, 4, 10);
        b.record(4, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(0, 4);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows_speculation());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn cooldown_elapses_into_half_open_and_probe_recovers() {
        let mut b = breaker(8, 0.5, 2, 3);
        b.record(0, 4);
        assert_eq!(b.state(), BreakerState::Open);
        // Events arriving while open are stragglers and are ignored.
        b.record(10, 10);
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..3 {
            b.tick_occurrence();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows_speculation());
        // probe_successes = 2 closes it again.
        b.record(2, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
        let mut stats = HealthStats::default();
        b.fill_stats(&mut stats);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_recoveries, 1);
        assert_eq!(stats.breaker_open_occurrences, 3);
    }

    #[test]
    fn half_open_failure_retrips_with_doubled_cooldown() {
        let mut b = breaker(8, 0.5, 2, 4);
        b.record(0, 4);
        for _ in 0..4 {
            b.tick_occurrence();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(0, 1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The re-trip doubles the cooldown: 7 ticks are not enough…
        for _ in 0..7 {
            b.tick_occurrence();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // …the 8th is.
        b.tick_occurrence();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn recovery_resets_the_cooldown_scale() {
        let mut b = breaker(8, 0.5, 2, 1);
        b.record(0, 4);
        b.tick_occurrence();
        b.record(2, 0); // recover (probe_successes = 2)
        assert_eq!(b.state(), BreakerState::Closed);
        // Next trip uses the base cooldown again.
        b.record(0, 4);
        b.tick_occurrence();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let mut b = breaker(4, 0.75, 3, 10);
        b.record(0, 2);
        // Two failures then a train of successes: the failures age out and
        // the breaker never trips.
        b.record(8, 0);
        b.record(0, 2);
        // Window now holds [s, s, f, f] — 50% < 75%.
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b =
            CircuitBreaker::new(BreakerConfig { enabled: false, ..BreakerConfig::default() });
        b.record(0, 1_000);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_speculation());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn supervision_deadline_binds_only_below_the_job_budget() {
        let sup = Supervision { job_deadline: 100, ..Supervision::default() };
        assert_eq!(sup.job_budget(500), (100, true));
        assert_eq!(sup.job_budget(50), (50, false));
        let unlimited = Supervision::default();
        assert_eq!(unlimited.job_budget(500), (500, false));
    }

    #[test]
    fn force_open_trips_immediately_and_recovers_normally() {
        let mut b = breaker(8, 0.5, 4, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.force_open();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Repeated stall detections while already open do not re-trip.
        b.force_open();
        assert_eq!(b.trips(), 1);
        // Normal cooldown → half-open → probe recovery path applies.
        b.tick_occurrence();
        b.tick_occurrence();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(2, 0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.recoveries(), 1);
    }

    #[test]
    fn force_open_respects_a_disabled_breaker() {
        let mut b =
            CircuitBreaker::new(BreakerConfig { enabled: false, ..BreakerConfig::default() });
        b.force_open();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows_speculation());
    }

    #[test]
    fn heartbeat_escalates_sticky_and_capped() {
        let hb = Heartbeat::default();
        assert_eq!(hb.stage(), watchdog_stage::NONE);
        assert_eq!(hb.escalate(), watchdog_stage::FORCE_BREAKER);
        assert_eq!(hb.escalate(), watchdog_stage::TEAR_DOWN_POOL);
        // Capped: further stalls count but do not climb past teardown.
        assert_eq!(hb.escalate(), watchdog_stage::TEAR_DOWN_POOL);
        assert_eq!(hb.stalls(), 3);
        assert_eq!(hb.escalations(), 2);
        let mut stats = HealthStats::default();
        hb.fill_stats(&mut stats);
        assert_eq!(stats.watchdog_stalls, 3);
        assert_eq!(stats.watchdog_escalations, 2);
    }

    #[test]
    fn watchdog_detects_a_stall_then_recovers_when_ticks_resume() {
        let hb = Arc::new(Heartbeat::default());
        let health = Arc::new(HealthMonitor::default());
        let config = WatchdogConfig { enabled: true, deadline_ms: 30, poll_ms: 5 };
        let dog = Watchdog::start(&config, Arc::clone(&hb), Arc::clone(&health), 0x40)
            .expect("watchdog spawns");
        // No ticks at all: the watchdog must detect the stall and escalate.
        let waited = Instant::now();
        while hb.stalls() == 0 && waited.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(hb.stalls() >= 1, "stall not detected");
        assert!(hb.stage() >= watchdog_stage::FORCE_BREAKER);
        // Resume ticking: no further stalls accumulate while progress flows.
        let stalls_at_recovery = hb.stalls();
        let recovery = Instant::now();
        while recovery.elapsed() < Duration::from_millis(120) {
            hb.tick();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hb.stalls(), stalls_at_recovery, "ticking run must not count as stalled");
        dog.finish();
    }

    #[test]
    fn disabled_watchdog_does_not_start() {
        let config = WatchdogConfig { enabled: false, ..WatchdogConfig::default() };
        let hb = Arc::new(Heartbeat::default());
        let health = Arc::new(HealthMonitor::default());
        assert!(Watchdog::start(&config, hb, health, 0).is_none());
    }

    #[test]
    fn default_supervision_injects_nothing() {
        let sup = Supervision::default();
        let faults = sup.job_faults();
        assert!(!faults.panic && !faults.stall && faults.corrupt.is_none());
        assert_eq!(faults.count(), 0);
        assert!(!sup.spawn_fault());
        assert!(!sup.planner_death(7));
        assert_eq!(sup.health.snapshot(), HealthStats::default());
    }
}
