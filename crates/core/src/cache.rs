//! The trajectory cache (§4.2): grouped, value-hash-indexed lookup.
//!
//! Each entry is a compressed pair of start and end states: the *start* keeps
//! only the bytes the speculative execution read before writing (its true
//! dependencies) and the *end* keeps only the bytes it wrote. The main thread
//! matches its current state against entry start sets — a match on just those
//! bytes is sufficient for correctness — and fast-forwards by applying the
//! end set, "a translation symmetry in state space".
//!
//! # Index structure
//!
//! A naive cache scans every entry for the recognized IP and byte-compares
//! each start set (`O(entries)` per lookup) — fine while entries are useful,
//! quadratic misery on chaotic workloads where the cache fills with
//! never-matching junk. Lookup here is a two-level index instead:
//!
//! 1. **Read-set groups.** Within a shard, the entries of one rip are
//!    grouped by their read-set byte *positions* (an
//!    [`asc_tvm::delta::PositionSchema`]). Most programs produce only a
//!    handful of distinct dependency shapes per rip, so the group count
//!    stays small even when the entry count does not.
//! 2. **Value-hash index.** Inside each group, entries are indexed by the
//!    64-bit hash of their read-set *values*
//!    ([`SparseBytes::value_hash`]). A lookup hashes the query state's
//!    bytes at the group's positions once
//!    ([`PositionSchema::hash_values_of`]) and probes a
//!    `HashMap<u64, SmallSlotList>` — `O(groups)` probes per lookup instead
//!    of `O(entries)` byte-compares. A probe hit still runs the full
//!    [`SparseBytes::matches`] as a collision guard before the entry is
//!    returned, so a 64-bit hash collision can cost a wasted compare but
//!    never a wrong fast-forward.
//!
//! Eviction is a per-shard FIFO of `(rip, group, slot)` references: the
//! oldest inserted entry in the shard goes first, in O(1), instead of the
//! old `max_by_key` walk over every rip bucket on the write-lock hot path.
//!
//! # Junk filter
//!
//! On chaotic workloads (see the logistic-map benchmark) most speculation
//! starts from mispredicted states, and every insert buys an entry that will
//! never match — on such runs each superstep can even touch *different*
//! bytes, so junk grows new groups rather than new entries in old ones. The
//! insert-time usefulness filter bounds both axes, keyed on the junk
//! threshold (`AscConfig::cache_junk_threshold`): a group whose entries have
//! served zero hits after that many probes (real lookups and peeks — the
//! allocator's coverage checks miss by design and count as no evidence)
//! stops accepting inserts, and once
//! a rip has accumulated [`JUNK_GROUP_LIMIT`] such proven-junk groups in a
//! shard, new groups are refused too (counted in
//! [`CacheStats::junk_rejected`]). Fully evicted groups reset their
//! counters, so FIFO turnover re-opens admission; a group that ever serves a
//! hit is never junk. The filter only ever declines to *store* speculation —
//! results remain bit-identical, it just bounds how much hopeless junk a
//! lookup must probe past.
//!
//! # Three tiers: local shards → cache peer → snapshot
//!
//! This module is the *local* tier of a three-tier store. The
//! [`crate::remote`] module layers the other two on top of it without
//! touching the lookup hot path's semantics:
//!
//! 1. **Local shards** (here): in-process, lock-sharded, always consulted
//!    first. The only tier on the correctness path.
//! 2. **Cache peer** ([`crate::remote::CachePeer`]): a TCP process sharing
//!    trajectories between runs. On a local miss the remote tier probes the
//!    peer by `(position-hash, value-hash)` pairs — served by
//!    [`TrajectoryCache::probe_by_hashes`] on the peer's side — re-verifies
//!    the returned entry byte-for-byte and checksum, and inserts it locally
//!    (read-through). Local inserts stream to the peer asynchronously
//!    through the insert observer (write-behind; see
//!    [`TrajectoryCache::insert`]). A dead or slow peer degrades to
//!    local-only, never blocking or corrupting the run.
//! 3. **Snapshot** ([`crate::remote::snapshot`]): the same wire codec
//!    pointed at disk. [`TrajectoryCache::for_each_entry`] exports the live
//!    entries on shutdown; startup replays the file through the same
//!    verifying decode path, so warmup amortizes across runs.
//!
//! Every cross-boundary entry — socket or disk — re-proves itself with the
//! [`CacheEntry::verify`] checksum before it is applied or stored; a failed
//! frame is counted and dropped, exactly the "free to fail" economy
//! speculation itself follows.
//!
//! The cache is sharded and internally synchronised so speculative worker
//! threads can insert entries while the main thread queries, mirroring the
//! paper's distributed per-core cache (the cluster cost model in
//! [`crate::cluster`] charges the reduction and point-to-point costs that a
//! distributed realisation adds). §4.2's query-size accounting is unchanged
//! by the index: a query is still the sparse `(position, value)` capture
//! whose encoded size [`CacheEntry::query_bits`] reports — the group schema
//! factors the position *comparison* out of the probe path (a lookup
//! dispatches on shape once per group instead of re-matching positions
//! entry by entry). Each entry still stores its full start set: the
//! collision guard and eviction need the `(position, value)` pairs, so the
//! schema is an index on top of the entries, not a compression of them.
//!
//! The pre-index linear scan is retained as [`TrajectoryCache::
//! scan_best_match`]: tests and benches use it as the reference the index
//! must agree with, and the `scan-check` cargo feature debug-asserts that
//! agreement on every lookup. The probe and the scan are two separate lock
//! acquisitions, so an insert landing between them can make the pair
//! disagree without either being wrong; the assertion therefore guards
//! itself with a seqlock-style quiescence test (writer count and mutation
//! count unchanged across the window) and silently skips lookups that raced
//! a writer. Single-threaded tests are always quiescent, so the equivalence
//! suite still checks every lookup, and the feature is safe to leave on
//! under live workers — the CI feature matrix runs the full suite with it.

use asc_tvm::delta::{PositionSchema, SparseBytes};
use asc_tvm::state::StateVector;
use std::collections::{HashMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks a shard, recovering from a poisoned lock: the cache's data is
/// plain byte maps, so a worker panic mid-insert cannot leave logical
/// invariants broken that matter for a best-effort cache.
fn read_shard(shard: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    shard.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_shard(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cached speculative trajectory.
///
/// Constructed through [`CacheEntry::new`], which seals the payload under an
/// integrity checksum: applying a corrupted end set would fast-forward the
/// architectural state into garbage — the one failure the cache protocol
/// cannot absorb — so the probe path re-verifies the checksum before any
/// entry is returned (see [`CacheStats::checksum_rejects`]).
#[derive(Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Recognized IP value this entry's start state was captured at.
    pub rip: u32,
    /// Sparse read-set capture: the bytes (and values) the execution depended on.
    pub start: SparseBytes,
    /// Sparse write-set capture: the bytes (and values) the execution produced.
    pub end: SparseBytes,
    /// Number of instructions the entry fast-forwards over.
    pub instructions: u64,
    /// Order-sensitive mix of rip, instructions and both sparse sets,
    /// computed at construction. Private: the payload fields stay readable,
    /// but entries can only be built through [`CacheEntry::new`], which
    /// seals them.
    checksum: u64,
}

impl Clone for CacheEntry {
    fn clone(&self) -> Self {
        CacheEntry {
            rip: self.rip,
            start: self.start.clone(),
            end: self.end.clone(),
            instructions: self.instructions,
            checksum: self.checksum,
        }
    }

    /// Reuses the destination's sparse-set allocations; this is what lets
    /// [`LookupScratch`] hand out hits without allocating per lookup.
    fn clone_from(&mut self, source: &Self) {
        self.rip = source.rip;
        self.start.clone_from(&source.start);
        self.end.clone_from(&source.end);
        self.instructions = source.instructions;
        self.checksum = source.checksum;
    }
}

/// Multiplier for the checksum's absorb step (a large odd constant, so the
/// multiply is a bijection on `u64`).
const CHECKSUM_MULTIPLIER: u64 = 0x517c_c1b7_2722_0a95;

/// One order-sensitive absorb step: rotate–xor–multiply. Every component is
/// bijective in `h` for a fixed word, so two payloads differing in any
/// single bit of any absorbed word can never collapse to the same state at
/// that step — exactly the bit-flip detection the integrity guard needs.
#[inline]
fn checksum_absorb(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(CHECKSUM_MULTIPLIER)
}

/// The integrity checksum of an entry's payload: an order-sensitive mix of
/// the rip, the instruction count and every `(position, value)` pair of
/// both sparse sets, one multiply per pair. Deliberately *not* byte-wise
/// FNV-1a: verification re-runs on every matching entry of the lookup hot
/// path and sealing runs once per completed speculation, so the checksum
/// absorbs each 5-byte pair as a single word. Each set is prefixed with its
/// length so a pair migrating across the start/end boundary cannot cancel
/// out.
fn entry_checksum(rip: u32, start: &SparseBytes, end: &SparseBytes, instructions: u64) -> u64 {
    let mut h = checksum_absorb(0x9e37_79b9_7f4a_7c15, u64::from(rip));
    h = checksum_absorb(h, instructions);
    for set in [start, end] {
        h = checksum_absorb(h, set.len() as u64);
        for (index, value) in set.iter() {
            h = checksum_absorb(h, (u64::from(index) << 8) | u64::from(value));
        }
    }
    h
}

impl CacheEntry {
    /// Builds an entry and seals it under its integrity checksum.
    pub fn new(rip: u32, start: SparseBytes, end: SparseBytes, instructions: u64) -> Self {
        let checksum = entry_checksum(rip, &start, &end, instructions);
        CacheEntry { rip, start, end, instructions, checksum }
    }

    /// Whether the entry's dependencies are satisfied by `state`.
    pub fn matches(&self, state: &StateVector) -> bool {
        self.start.matches(state)
    }

    /// Fast-forwards `state` by applying the entry's write set.
    pub fn apply(&self, state: &mut StateVector) {
        self.end.apply(state);
    }

    /// Whether the payload still matches the checksum it was sealed with.
    /// The probe path calls this on every matching entry before returning
    /// it, so a bit-flipped payload is rejected instead of applied.
    pub fn verify(&self) -> bool {
        self.checksum == entry_checksum(self.rip, &self.start, &self.end, self.instructions)
    }

    /// Size in bits of the query needed to match this entry (Table 1's
    /// "cache query size" row).
    pub fn query_bits(&self) -> usize {
        self.start.encoded_bits()
    }

    /// Rebuilds an entry from decoded parts *with the checksum it was sealed
    /// with*, without re-deriving the mix — re-deriving would turn a
    /// corrupted payload into a freshly-sealed valid entry, which is exactly
    /// the laundering the integrity guard exists to prevent. Gated to the
    /// wire/snapshot codec (`crate::remote::codec`), which must call
    /// [`verify`](CacheEntry::verify) on the result and drop anything that
    /// fails; nothing else may construct unsealed entries.
    pub(crate) fn from_parts_unchecked(
        rip: u32,
        start: SparseBytes,
        end: SparseBytes,
        instructions: u64,
        checksum: u64,
    ) -> Self {
        CacheEntry { rip, start, end, instructions, checksum }
    }

    /// The checksum the entry was sealed with, for the codec's encode path.
    pub(crate) fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Flips one payload bit chosen by `selector` *without* resealing the
    /// checksum, leaving the entry deliberately corrupt. The write set is
    /// preferred (corrupting it is what would poison the architectural
    /// state); an entry with an empty write set corrupts its read set
    /// instead. Fault-injection support only.
    #[cfg(feature = "fault-inject")]
    pub fn corrupt_payload(&mut self, selector: u64) {
        let target = if self.end.is_empty() { &mut self.start } else { &mut self.end };
        target.flip_value_bit((selector >> 3) as usize, (selector & 7) as u32);
    }
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub queries: u64,
    /// Number of lookups that returned an entry.
    pub hits: u64,
    /// Number of entries inserted.
    pub inserted: u64,
    /// Number of entries rejected as duplicates of an existing start set
    /// that already fast-forwards at least as far.
    pub duplicates: u64,
    /// Number of existing entries replaced by a longer trajectory with the
    /// same start set.
    pub replaced: u64,
    /// Number of entries evicted due to the capacity limit.
    pub evicted: u64,
    /// Number of inserts refused by the junk filter: the target group (or
    /// the whole rip's group set in a shard) had served zero hits over at
    /// least the configured probe threshold.
    pub junk_rejected: u64,
    /// Number of read-set groups created (distinct dependency shapes seen,
    /// summed over shards).
    pub groups: u64,
    /// Number of value-index probes: one per populated group consulted by a
    /// lookup, peek, or coverage check. The per-query work of the index —
    /// compare with what `queries × entries` would have been under the old
    /// scan. (Only lookups and peeks feed the junk filter's per-group probe
    /// evidence; coverage-check misses are expected and do not.)
    pub probes: u64,
    /// Probe hits discarded because the full read-set compare failed (a
    /// 64-bit value-hash collision). The collision guard's work counter.
    pub collision_rejects: u64,
    /// Matching entries rejected because their payload no longer verified
    /// against the integrity checksum sealed at construction (a corrupted
    /// entry). Such entries are never returned — a corrupted hit costs a
    /// missed fast-forward, never a wrong one — and age out through normal
    /// FIFO eviction (out-of-band removal would dangle FIFO references).
    pub checksum_rejects: u64,
    /// Total instructions fast-forwarded by returned entries.
    pub instructions_served: u64,
}

/// Number of `u64` counters in [`CacheStats`]; fixes the size of its
/// serialized form.
const CACHE_STAT_FIELDS: usize = 12;

/// Size in bytes of [`CacheStats::to_le_bytes`].
pub const CACHE_STATS_WIRE_LEN: usize = CACHE_STAT_FIELDS * 8;

impl CacheStats {
    /// Fraction of queries that missed (0 when nothing was queried).
    pub fn miss_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.queries as f64
        }
    }

    /// The counters as a fixed field-order array, the single source of truth
    /// for [`merge`](CacheStats::merge) and the serialized form.
    fn fields(&self) -> [u64; CACHE_STAT_FIELDS] {
        [
            self.queries,
            self.hits,
            self.inserted,
            self.duplicates,
            self.replaced,
            self.evicted,
            self.junk_rejected,
            self.groups,
            self.probes,
            self.collision_rejects,
            self.checksum_rejects,
            self.instructions_served,
        ]
    }

    /// Rebuilds stats from the [`fields`](CacheStats::fields) order.
    fn from_fields(fields: [u64; CACHE_STAT_FIELDS]) -> Self {
        let [queries, hits, inserted, duplicates, replaced, evicted, junk_rejected, groups, probes, collision_rejects, checksum_rejects, instructions_served] =
            fields;
        CacheStats {
            queries,
            hits,
            inserted,
            duplicates,
            replaced,
            evicted,
            junk_rejected,
            groups,
            probes,
            collision_rejects,
            checksum_rejects,
            instructions_served,
        }
    }

    /// Adds every counter of `other` into `self` — the aggregation the
    /// remote tier uses to combine local shards with a peer's STATS reply,
    /// and the snapshot loader uses to carry a saved cache's history across
    /// a restart. All counters are monotone totals, so merging is a plain
    /// sum (saturating: two u64 totals cannot meaningfully overflow, but a
    /// wrapped counter must not turn into nonsense).
    pub fn merge(&mut self, other: &CacheStats) {
        let mut merged = self.fields();
        for (into, from) in merged.iter_mut().zip(other.fields()) {
            *into = into.saturating_add(from);
        }
        *self = CacheStats::from_fields(merged);
    }

    /// The serialized form: every counter as little-endian `u64` in field
    /// order. Carried in the STATS wire reply and the snapshot header.
    pub fn to_le_bytes(&self) -> [u8; CACHE_STATS_WIRE_LEN] {
        let mut bytes = [0u8; CACHE_STATS_WIRE_LEN];
        for (slot, field) in bytes.chunks_exact_mut(8).zip(self.fields()) {
            slot.copy_from_slice(&field.to_le_bytes());
        }
        bytes
    }

    /// Decodes the serialized form; `None` when `bytes` is not exactly
    /// [`CACHE_STATS_WIRE_LEN`] long.
    pub fn from_le_bytes(bytes: &[u8]) -> Option<CacheStats> {
        if bytes.len() != CACHE_STATS_WIRE_LEN {
            return None;
        }
        let mut fields = [0u64; CACHE_STAT_FIELDS];
        for (field, chunk) in fields.iter_mut().zip(bytes.chunks_exact(8)) {
            *field = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        Some(CacheStats::from_fields(fields))
    }
}

/// Pass-through hasher for the value index: its keys are already 64-bit FNV
/// hashes ([`SparseBytes::value_hash`]), so re-hashing them through the
/// default SipHash would roughly double the cost of every group probe for
/// no distribution gain.
#[derive(Default)]
struct PrehashedKey(u64);

impl std::hash::Hasher for PrehashedKey {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("value-hash keys are written as u64");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

type ValueIndex = HashMap<u64, SmallSlotList, std::hash::BuildHasherDefault<PrehashedKey>>;

/// Per-lookup memo: schema hash → value hash of the query state at that
/// schema's positions (`None`: a position was out of bounds).
type ValueHashMemo = HashMap<u64, Option<u64>, std::hash::BuildHasherDefault<PrehashedKey>>;

/// The slots holding one value hash's entries inside a group. Distinct
/// entries share a value hash only on a genuine 64-bit collision (same
/// positions *and* same values would have been deduplicated at insert), so
/// the list is a single inline slot in practice and spills to a `Vec` never
/// to rarely.
#[derive(Debug)]
struct SmallSlotList {
    first: u32,
    rest: Vec<u32>,
}

impl SmallSlotList {
    fn new(slot: u32) -> Self {
        SmallSlotList { first: slot, rest: Vec::new() }
    }

    fn push(&mut self, slot: u32) {
        self.rest.push(slot);
    }

    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        std::iter::once(self.first).chain(self.rest.iter().copied())
    }

    /// Removes `slot`; returns `true` when the list became empty (the caller
    /// drops the map entry). Order is irrelevant — all slots of one list are
    /// hash-equal.
    fn remove(&mut self, slot: u32) -> bool {
        if self.first == slot {
            match self.rest.pop() {
                Some(last) => {
                    self.first = last;
                    false
                }
                None => true,
            }
        } else {
            let position = self.rest.iter().position(|&s| s == slot).expect("slot is listed");
            self.rest.swap_remove(position);
            false
        }
    }
}

/// All entries of one rip (within a shard) that share a read-set shape,
/// indexed by the hash of their read-set values.
struct ReadSetGroup {
    /// The shared byte positions of every entry's start set.
    schema: PositionSchema,
    /// value hash → slots holding entries with that hash.
    index: ValueIndex,
    /// Slot storage; `None` slots were evicted and are free for reuse.
    slots: Vec<Option<CacheEntry>>,
    /// Free slot indices (previously evicted).
    free: Vec<u32>,
    /// Number of live (`Some`) slots.
    live: u32,
    /// Lookup probes against this group since creation (or since it was
    /// last fully evicted). Atomic because lookups tick it under the shard
    /// *read* lock.
    probes: AtomicU64,
    /// Probe matches served by this group's entries (same locking story).
    hits: AtomicU64,
}

impl ReadSetGroup {
    fn new(schema: PositionSchema) -> Self {
        ReadSetGroup {
            schema,
            index: ValueIndex::default(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Stores `entry` in a free (or fresh) slot and indexes it; returns the
    /// slot id.
    fn store(&mut self, value_hash: u64, entry: CacheEntry) -> u32 {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(entry);
                slot
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        match self.index.entry(value_hash) {
            std::collections::hash_map::Entry::Occupied(mut list) => list.get_mut().push(slot),
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(SmallSlotList::new(slot));
            }
        }
        self.live += 1;
        slot
    }

    /// Evicts the entry in `slot`, unindexing it and freeing the slot. A
    /// fully emptied group resets its probe/hit counters: the junk evidence
    /// belonged to the evicted entries, and a frozen counter would block the
    /// shape forever.
    fn evict(&mut self, slot: u32) -> CacheEntry {
        let entry = self.slots[slot as usize].take().expect("FIFO references a live slot");
        let value_hash = entry.start.value_hash();
        let emptied =
            self.index.get_mut(&value_hash).expect("evicted entry was indexed").remove(slot);
        if emptied {
            self.index.remove(&value_hash);
        }
        self.free.push(slot);
        self.live -= 1;
        if self.live == 0 {
            self.probes.store(0, Ordering::Relaxed);
            self.hits.store(0, Ordering::Relaxed);
        }
        entry
    }

    /// Live entries, in slot order.
    fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Repurposes a fully emptied group for a new dependency shape,
    /// keeping its (heap-allocated) buffers. Safe exactly when `live == 0`:
    /// every one of its slots was evicted, and each eviction popped the
    /// FIFO reference pointing at it, so nothing references the old slots.
    /// Without recycling, eviction churn on chaotic workloads would grow
    /// the group vectors without bound — dead groups still cost every
    /// lookup one iteration each.
    fn reset_for(&mut self, schema: PositionSchema) {
        debug_assert_eq!(self.live, 0, "recycling a group with live entries");
        self.schema = schema;
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.probes.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
    }
}

/// A FIFO reference to one stored entry: which rip's group vector, which
/// group, which slot. Group indices are stable (groups are never removed
/// from a shard, only emptied — and recycled for a new shape only once
/// empty), and a slot is freed only by the eviction that pops its own FIFO
/// reference, so references never dangle.
#[derive(Debug, Clone, Copy)]
struct FifoRef {
    rip: u32,
    group: u32,
    slot: u32,
}

#[derive(Default)]
struct Shard {
    by_ip: HashMap<u32, Vec<ReadSetGroup>>,
    /// Insertion order of every live entry, oldest first: O(1) eviction.
    fifo: VecDeque<FifoRef>,
    entries: usize,
}

/// Reusable lookup buffer: the hot loop's hits are cloned *into* it (Vec
/// allocations reused via `clone_from`), and the per-schema value hashes
/// computed during one lookup are memoized in it — sharding spreads one
/// dependency shape's entries across every shard, so without the memo a
/// lookup would re-hash the query state's bytes at the same positions once
/// per shard. Steady-state lookups allocate nothing. Each caller that
/// queries the cache repeatedly keeps one.
#[derive(Debug, Default)]
pub struct LookupScratch {
    entry: Option<CacheEntry>,
    /// Value hashes computed during one lookup, keyed by the schema's
    /// (already FNV) hash: a 64-bit collision between two distinct schemas
    /// can at worst cost a missed probe — the full match guard still decides
    /// every returned entry.
    memo: ValueHashMemo,
}

impl LookupScratch {
    /// Creates an empty scratch; its buffers are sized by the first lookup.
    pub fn new() -> Self {
        LookupScratch::default()
    }
}

/// Hook observing every accepted insert; see
/// [`TrajectoryCache::set_insert_observer`].
pub(crate) type InsertObserver = std::sync::Arc<dyn Fn(&CacheEntry) + Send + Sync>;

/// A concurrent, sharded trajectory cache.
///
/// Entries are sharded by a hash of their start-set key bytes (indices and
/// values), not by recognized IP: a typical run speculates on a *single* IP,
/// so IP-based sharding would funnel every concurrent worker insert through
/// one lock. Hash sharding spreads inserts across all shards; lookups probe
/// the shards' groups under cheap read locks (once per superstep, against
/// worker inserts happening once per speculative superstep — reads
/// dominate).
pub struct TrajectoryCache {
    shards: Vec<RwLock<Shard>>,
    capacity_per_shard: usize,
    /// Probes a hitless group must accumulate before the junk filter closes
    /// it to inserts; 0 disables the filter.
    junk_threshold: u64,
    queries: AtomicU64,
    hits: AtomicU64,
    inserted: AtomicU64,
    duplicates: AtomicU64,
    replaced: AtomicU64,
    evicted: AtomicU64,
    junk_rejected: AtomicU64,
    groups: AtomicU64,
    probes: AtomicU64,
    collision_rejects: AtomicU64,
    checksum_rejects: AtomicU64,
    instructions_served: AtomicU64,
    /// Optional hook observing every accepted insert (fresh or replacing),
    /// called *after* the shard lock is released. The remote tier's
    /// write-behind stream attaches here so worker, planner and main-thread
    /// inserts all flow to the peer without any caller changing; unset, the
    /// hot path pays one atomic load per insert.
    insert_observer: std::sync::OnceLock<InsertObserver>,
    /// Writers currently inside [`insert`](TrajectoryCache::insert). The
    /// indexed probe and the reference scan take the shard locks separately,
    /// so a concurrent insert between the two can legitimately make them
    /// disagree; the cross-check only asserts when no writer overlapped the
    /// lookup window (see `scan_check_mutations`).
    #[cfg(feature = "scan-check")]
    scan_check_writers: AtomicU64,
    /// Completed [`insert`](TrajectoryCache::insert) calls, bumped *after*
    /// the shard lock is released. Together with `scan_check_writers` this
    /// forms a seqlock-style quiescence test: a lookup window with zero
    /// writers at both ends and an unchanged mutation count observed a
    /// stable cache, so index and scan must agree.
    #[cfg(feature = "scan-check")]
    scan_check_mutations: AtomicU64,
}

/// RAII scope marking one writer in flight for the `scan-check` quiescence
/// test: increments the writer count on construction; on drop (after the
/// shard lock is released — declare it *before* the lock guard) bumps the
/// mutation count and retires the writer.
#[cfg(feature = "scan-check")]
struct ScanCheckWriteScope<'a>(&'a TrajectoryCache);

#[cfg(feature = "scan-check")]
impl<'a> ScanCheckWriteScope<'a> {
    fn enter(cache: &'a TrajectoryCache) -> Self {
        cache.scan_check_writers.fetch_add(1, Ordering::SeqCst);
        ScanCheckWriteScope(cache)
    }
}

#[cfg(feature = "scan-check")]
impl Drop for ScanCheckWriteScope<'_> {
    fn drop(&mut self) {
        self.0.scan_check_mutations.fetch_add(1, Ordering::SeqCst);
        self.0.scan_check_writers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for TrajectoryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryCache")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

const SHARD_COUNT: usize = 16;

/// Default [`AscConfig::cache_junk_threshold`]: probes a hitless group
/// tolerates before it stops accepting inserts.
///
/// [`AscConfig::cache_junk_threshold`]: crate::config::AscConfig::cache_junk_threshold
pub const DEFAULT_JUNK_THRESHOLD: u64 = 64;

/// Proven-junk groups one rip may hold per shard before *new* groups are
/// refused too. On chaotic workloads every superstep can depend on different
/// byte positions, so junk arrives as fresh shapes — without this second
/// bound the per-group filter would bound nothing.
const JUNK_GROUP_LIMIT: usize = 32;

impl TrajectoryCache {
    /// Creates a cache holding at most `capacity` entries in total, with the
    /// default shard count and junk threshold.
    pub fn new(capacity: usize) -> Self {
        Self::with_junk_threshold(capacity, DEFAULT_JUNK_THRESHOLD)
    }

    /// Creates a cache with an explicit junk-filter threshold (0 disables
    /// the filter).
    pub fn with_junk_threshold(capacity: usize, junk_threshold: u64) -> Self {
        Self::with_layout(capacity, SHARD_COUNT, junk_threshold)
    }

    /// Creates a cache with an explicit shard count (clamped to ≥ 1); the
    /// `cache_lookup` benchmark uses this to measure lock-spread against
    /// probe-cost trade-offs.
    pub fn with_layout(capacity: usize, shard_count: usize, junk_threshold: u64) -> Self {
        let shard_count = shard_count.max(1);
        let capacity_per_shard = capacity.div_ceil(shard_count).max(1);
        TrajectoryCache {
            shards: (0..shard_count).map(|_| RwLock::new(Shard::default())).collect(),
            capacity_per_shard,
            junk_threshold,
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            replaced: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            junk_rejected: AtomicU64::new(0),
            groups: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            collision_rejects: AtomicU64::new(0),
            checksum_rejects: AtomicU64::new(0),
            instructions_served: AtomicU64::new(0),
            insert_observer: std::sync::OnceLock::new(),
            #[cfg(feature = "scan-check")]
            scan_check_writers: AtomicU64::new(0),
            #[cfg(feature = "scan-check")]
            scan_check_mutations: AtomicU64::new(0),
        }
    }

    /// The shard an entry lives in: keyed on the start-set contents so that
    /// the entries of a single-rip run (the common case) spread across every
    /// shard instead of serializing concurrent worker inserts on one lock.
    fn shard_for(&self, start: &SparseBytes) -> &RwLock<Shard> {
        &self.shards[(start.fingerprint() as usize) % self.shards.len()]
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_shard(s).entries).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `group` is proven junk: populated, hitless, and probed at
    /// least `junk_threshold` times.
    fn is_junk(&self, group: &ReadSetGroup) -> bool {
        self.junk_threshold > 0
            && group.live > 0
            && group.hits.load(Ordering::Relaxed) == 0
            && group.probes.load(Ordering::Relaxed) >= self.junk_threshold
    }

    /// Ticks `group`'s probe counter — but only while the count still has
    /// evidentiary value (the filter is on and the threshold not yet
    /// reached), so settled groups cost lookups a relaxed load instead of a
    /// read-modify-write on a shared cache line.
    fn tick_probe(&self, group: &ReadSetGroup) {
        if self.junk_threshold > 0 && group.probes.load(Ordering::Relaxed) < self.junk_threshold {
            group.probes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Inserts an entry. Returns `true` when the cache's contents changed:
    /// either a fresh entry was stored or an existing entry with the same
    /// start set was replaced by this longer trajectory (counted in the
    /// `replaced` statistic). Returns `false` when an identical start set
    /// already fast-forwards at least as far (a `duplicate`) or when the
    /// junk filter refused the insert (`junk_rejected`; see the module
    /// docs).
    ///
    /// Accepted inserts are reported to the attached insert observer (the
    /// remote tier's write-behind stream) if one is set; entries arriving
    /// *from* the remote tier land through
    /// [`insert_unobserved`](TrajectoryCache::insert_unobserved) instead, so
    /// read-through hits and snapshot loads never echo back to the peer.
    pub fn insert(&self, entry: CacheEntry) -> bool {
        let Some(observer) = self.insert_observer.get() else {
            return self.insert_unobserved(entry);
        };
        // The observer needs an owned copy (the entry is moved into the
        // shards) and runs only for accepted inserts, after every lock is
        // released.
        let copy = entry.clone();
        let changed = self.insert_unobserved(entry);
        if changed {
            observer(&copy);
        }
        changed
    }

    /// Attaches the insert observer; returns `false` (leaving the existing
    /// hook in place) if one was already attached. One observer per cache
    /// lifetime: the hook exists for the remote tier, which owns the cache's
    /// whole run.
    pub(crate) fn set_insert_observer(&self, observer: InsertObserver) -> bool {
        self.insert_observer.set(observer).is_ok()
    }

    /// [`insert`](TrajectoryCache::insert) without notifying the insert
    /// observer: the landing path for entries that *came from* the remote
    /// tier (read-through hits, peer bulk transfers, snapshot loads), which
    /// streaming back out would only echo.
    pub(crate) fn insert_unobserved(&self, entry: CacheEntry) -> bool {
        // Declared before the lock guard so its drop (which publishes the
        // mutation count) runs after the lock is released and the write is
        // visible to scanners.
        #[cfg(feature = "scan-check")]
        let _write_scope = ScanCheckWriteScope::enter(self);
        let shard_lock = self.shard_for(&entry.start);
        let mut guard = write_shard(shard_lock);
        let shard = &mut *guard;
        let groups = shard.by_ip.entry(entry.rip).or_default();

        // Locate the entry's read-set group, counting proven-junk groups on
        // the way in case a new group has to pass the admission bound, and
        // remembering an emptied group to recycle instead of growing the
        // vector (empty groups match no schema check: whatever shape they
        // once held, they hold nothing now).
        let position_hash = entry.start.position_hash();
        let mut junk_groups = 0usize;
        let mut found = None;
        let mut recycle = None;
        for (index, group) in groups.iter().enumerate() {
            if group.live == 0 {
                recycle.get_or_insert(index);
                continue;
            }
            if group.schema.hash() == position_hash && group.schema.describes(&entry.start) {
                found = Some(index);
                break;
            }
            if self.is_junk(group) {
                junk_groups += 1;
            }
        }

        let value_hash = entry.start.value_hash();
        let group_index = match found {
            Some(index) => {
                let group = &mut groups[index];
                // Duplicate/replace: at most one live entry can have this
                // exact start set, and it is in the value-hash bucket.
                if let Some(list) = group.index.get(&value_hash) {
                    for slot in list.iter() {
                        let existing =
                            group.slots[slot as usize].as_mut().expect("indexed slot is live");
                        if existing.start == entry.start {
                            if existing.instructions >= entry.instructions {
                                self.duplicates.fetch_add(1, Ordering::Relaxed);
                                return false;
                            }
                            *existing = entry;
                            self.replaced.fetch_add(1, Ordering::Relaxed);
                            return true;
                        }
                    }
                }
                if self.is_junk(group) {
                    self.junk_rejected.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                index
            }
            None => {
                if self.junk_threshold > 0 && junk_groups >= JUNK_GROUP_LIMIT {
                    self.junk_rejected.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                let index = match recycle {
                    Some(index) => {
                        groups[index].reset_for(PositionSchema::of(&entry.start));
                        index
                    }
                    None => {
                        groups.push(ReadSetGroup::new(PositionSchema::of(&entry.start)));
                        groups.len() - 1
                    }
                };
                // Recycled or fresh, a new dependency shape was admitted.
                self.groups.fetch_add(1, Ordering::Relaxed);
                index
            }
        };

        let rip = entry.rip;
        let slot = groups[group_index].store(value_hash, entry);
        shard.fifo.push_back(FifoRef { rip, group: group_index as u32, slot });
        shard.entries += 1;
        if shard.entries > self.capacity_per_shard {
            self.evict_oldest(shard);
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Evicts the shard's oldest entry in O(1) via the FIFO.
    fn evict_oldest(&self, shard: &mut Shard) {
        let Some(oldest) = shard.fifo.pop_front() else { return };
        let groups = shard.by_ip.get_mut(&oldest.rip).expect("FIFO rip exists");
        groups[oldest.group as usize].evict(oldest.slot);
        shard.entries -= 1;
        self.evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Walks every live group for `rip` across all shards, probing each
    /// group's value index with the query state's bytes hashed at the
    /// group's positions (one hash per schema per walk — entries for one rip
    /// are hash-spread across all shards, so the memo saves re-hashing the
    /// same shape shard after shard), and calls `on_match` for every entry
    /// that passes the full byte-compare collision guard; `Break` stops the
    /// walk. Matching entries always tick their group's hit counter
    /// (usefulness evidence). `tick_junk` controls whether the walk also
    /// counts as junk-filter *probe* evidence: real lookups and peeks do,
    /// the allocator's coverage checks do not — their misses are expected
    /// (they exist to find *uncovered* predictions), and counting them would
    /// close hitless groups ~`rollout_depth` times faster than the
    /// configured threshold intends, starving slow-warmup workloads of
    /// cache admission.
    fn probe_groups(
        &self,
        rip: u32,
        state: &StateVector,
        memo: &mut ValueHashMemo,
        tick_junk: bool,
        mut on_match: impl FnMut(&CacheEntry) -> ControlFlow<()>,
    ) {
        let mut probes = 0u64;
        let mut collisions = 0u64;
        let mut corrupted = 0u64;
        memo.clear();
        'shards: for shard in &self.shards {
            let guard = read_shard(shard);
            let Some(groups) = guard.by_ip.get(&rip) else { continue };
            for group in groups {
                if group.live == 0 {
                    continue;
                }
                probes += 1;
                if tick_junk {
                    self.tick_probe(group);
                }
                let memoized = *memo
                    .entry(group.schema.hash())
                    .or_insert_with(|| group.schema.hash_values_of(state));
                let Some(value_hash) = memoized else { continue };
                let Some(list) = group.index.get(&value_hash) else { continue };
                for slot in list.iter() {
                    let entry = group.slots[slot as usize].as_ref().expect("indexed slot is live");
                    // Collision guard: the hash said yes, the bytes decide.
                    if !entry.matches(state) {
                        collisions += 1;
                        continue;
                    }
                    // Integrity guard: applying a corrupted end set would
                    // fast-forward the state into garbage, so a matching
                    // entry that fails its checksum is skipped (and not
                    // counted as usefulness evidence). It is *not* evicted
                    // here: a slot may be freed only by the eviction that
                    // pops its own FIFO reference, so the corpse simply
                    // stops being served until FIFO turnover removes it.
                    if !entry.verify() {
                        corrupted += 1;
                        continue;
                    }
                    group.hits.fetch_add(1, Ordering::Relaxed);
                    if on_match(entry).is_break() {
                        break 'shards;
                    }
                }
            }
        }
        self.probes.fetch_add(probes, Ordering::Relaxed);
        if collisions > 0 {
            self.collision_rejects.fetch_add(collisions, Ordering::Relaxed);
        }
        if corrupted > 0 {
            self.checksum_rejects.fetch_add(corrupted, Ordering::Relaxed);
        }
    }

    /// The longest entry for `rip` whose dependencies match `state`, cloned
    /// into `scratch` (buffer reuse — no allocation once the buffers are
    /// warm).
    fn best_match_into<'s>(
        &self,
        rip: u32,
        state: &StateVector,
        scratch: &'s mut LookupScratch,
    ) -> Option<&'s CacheEntry> {
        let LookupScratch { entry: buffer, memo } = scratch;
        #[cfg(feature = "scan-check")]
        let writers_before = self.scan_check_writers.load(Ordering::SeqCst);
        #[cfg(feature = "scan-check")]
        let mutations_before = self.scan_check_mutations.load(Ordering::SeqCst);
        let mut best: Option<u64> = None;
        self.probe_groups(rip, state, memo, true, |entry| {
            if best.is_none_or(|b| entry.instructions > b) {
                best = Some(entry.instructions);
                match buffer {
                    Some(held) => held.clone_from(entry),
                    None => *buffer = Some(entry.clone()),
                }
            }
            ControlFlow::Continue(())
        });
        // The indexed probe and the reference scan take the shard locks
        // separately, so a concurrent insert between them can make the pair
        // disagree without either being wrong. Only assert when the window
        // was quiescent: no writer in flight at either end and no insert
        // completed in between — exactly the seqlock read protocol, and
        // always true in single-threaded tests, so coverage there is total.
        #[cfg(feature = "scan-check")]
        {
            let scanned = self.scan_best_match(rip, state).map(|e| e.instructions);
            let mutations_after = self.scan_check_mutations.load(Ordering::SeqCst);
            let writers_after = self.scan_check_writers.load(Ordering::SeqCst);
            if writers_before == 0 && writers_after == 0 && mutations_before == mutations_after {
                debug_assert_eq!(best, scanned, "indexed lookup diverged from the reference scan");
            }
        }
        if best.is_some() {
            scratch.entry.as_ref()
        } else {
            None
        }
    }

    /// Reference linear scan: the longest entry for `rip` whose dependencies
    /// match `state`, found by byte-comparing *every* entry — the pre-index
    /// behaviour the value-hash lookup must be equivalent to. Kept for the
    /// equivalence tests, the `cache_lookup` benchmark's baseline and the
    /// `scan-check` debug assertion; not used on any runtime path.
    pub fn scan_best_match(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let mut best: Option<CacheEntry> = None;
        for shard in &self.shards {
            let guard = read_shard(shard);
            let Some(groups) = guard.by_ip.get(&rip) else { continue };
            for entry in groups.iter().flat_map(ReadSetGroup::entries) {
                if entry.matches(state)
                    && entry.verify()
                    && best.as_ref().is_none_or(|b| entry.instructions > b.instructions)
                {
                    best = Some(entry.clone());
                }
            }
        }
        best
    }

    /// Looks up the longest entry for `rip` whose dependencies match
    /// `state`, reusing the caller's scratch — the zero-allocation entry
    /// point the runtime's occurrence loop uses.
    pub fn lookup_with<'s>(
        &self,
        rip: u32,
        state: &StateVector,
        scratch: &'s mut LookupScratch,
    ) -> Option<&'s CacheEntry> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let best = self.best_match_into(rip, state, scratch);
        if let Some(entry) = &best {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.instructions_served.fetch_add(entry.instructions, Ordering::Relaxed);
        }
        best
    }

    /// Looks up the longest entry for `rip` whose dependencies match
    /// `state`. Allocating convenience wrapper around
    /// [`lookup_with`](TrajectoryCache::lookup_with).
    pub fn lookup(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let mut scratch = LookupScratch::new();
        self.lookup_with(rip, state, &mut scratch)?;
        scratch.entry
    }

    /// Like [`lookup_with`](TrajectoryCache::lookup_with) but without
    /// recording query statistics (used by what-if evaluation paths so they
    /// do not pollute the reported hit rates). Group probe/hit counters
    /// still tick: they are the junk filter's evidence, and a peek is real
    /// evidence.
    pub fn peek_with<'s>(
        &self,
        rip: u32,
        state: &StateVector,
        scratch: &'s mut LookupScratch,
    ) -> Option<&'s CacheEntry> {
        self.best_match_into(rip, state, scratch)
    }

    /// Allocating convenience wrapper around
    /// [`peek_with`](TrajectoryCache::peek_with).
    pub fn peek(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let mut scratch = LookupScratch::new();
        self.peek_with(rip, state, &mut scratch)?;
        scratch.entry
    }

    /// Whether *any* entry for `rip` matches `state` — the coverage test the
    /// allocator and planner use to skip speculation whose start state the
    /// cache already fast-forwards, reusing the caller's scratch for the
    /// per-schema hash memo (allocation-free once warm). Stops at the first
    /// match (coverage does not care which entry is longest) and records no
    /// query statistics or junk-filter probe evidence: coverage checks run
    /// `rollout_depth`-deep per occurrence and their misses are *expected*,
    /// so counting them would close hitless groups far faster than
    /// `junk_threshold` lookups intend.
    pub fn covers_with(&self, rip: u32, state: &StateVector, scratch: &mut LookupScratch) -> bool {
        let mut covered = false;
        self.probe_groups(rip, state, &mut scratch.memo, false, |_| {
            covered = true;
            ControlFlow::Break(())
        });
        covered
    }

    /// Allocating convenience wrapper around
    /// [`covers_with`](TrajectoryCache::covers_with).
    pub fn covers(&self, rip: u32, state: &StateVector) -> bool {
        self.covers_with(rip, state, &mut LookupScratch::new())
    }

    /// Average query size in bits over all stored entries (Table 1).
    pub fn mean_query_bits(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for shard in &self.shards {
            let guard = read_shard(shard);
            for groups in guard.by_ip.values() {
                for entry in groups.iter().flat_map(ReadSetGroup::entries) {
                    total += entry.query_bits();
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            queries: self.queries.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            replaced: self.replaced.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            junk_rejected: self.junk_rejected.load(Ordering::Relaxed),
            groups: self.groups.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            collision_rejects: self.collision_rejects.load(Ordering::Relaxed),
            checksum_rejects: self.checksum_rejects.load(Ordering::Relaxed),
            instructions_served: self.instructions_served.load(Ordering::Relaxed),
        }
    }

    /// The running total of integrity failures — checksum rejects plus
    /// value-hash collision rejects. Two relaxed loads: the runtime polls
    /// this once per occurrence to feed the circuit breaker's failure
    /// window, where a full [`stats`](TrajectoryCache::stats) snapshot
    /// would be a dozen loads of dead weight.
    pub fn integrity_failures(&self) -> u64 {
        self.checksum_rejects.load(Ordering::Relaxed)
            + self.collision_rejects.load(Ordering::Relaxed)
    }

    /// The longest verified entry for `rip` matching any of the given
    /// `(position_hash, value_hash)` pairs — the probe a cache *peer*
    /// answers. A remote GET cannot carry the querying machine's state, so
    /// the client sends the schema/value hash pairs it computed locally and
    /// the server matches them against its groups' schema hashes and value
    /// indices. Both hashes are 64-bit, so a collision can at worst return
    /// an entry whose `matches(state)` guard the *client* then fails — the
    /// same two-step (hash says yes, bytes decide) as a local lookup, split
    /// across the wire. Entries are re-verified before being returned so a
    /// peer never serves an entry corrupted in its own memory.
    ///
    /// Records no query statistics and no junk evidence: the serving cache's
    /// counters describe *its* workload, not its clients'.
    pub fn probe_by_hashes(&self, rip: u32, pairs: &[(u64, u64)]) -> Option<CacheEntry> {
        let mut best: Option<CacheEntry> = None;
        for shard in &self.shards {
            let guard = read_shard(shard);
            let Some(groups) = guard.by_ip.get(&rip) else { continue };
            for group in groups {
                if group.live == 0 {
                    continue;
                }
                let schema_hash = group.schema.hash();
                for &(position_hash, value_hash) in pairs {
                    if position_hash != schema_hash {
                        continue;
                    }
                    let Some(list) = group.index.get(&value_hash) else { continue };
                    for slot in list.iter() {
                        let entry =
                            group.slots[slot as usize].as_ref().expect("indexed slot is live");
                        if entry.verify()
                            && best.as_ref().is_none_or(|b| entry.instructions > b.instructions)
                        {
                            best = Some(entry.clone());
                        }
                    }
                }
            }
        }
        best
    }

    /// Visits every live entry once, shard by shard under the read locks —
    /// the snapshot/bulk-transfer export walk. Entries inserted concurrently
    /// into an already-visited shard are missed and entries evicted from a
    /// not-yet-visited shard are skipped; a snapshot is a best-effort
    /// point-in-time export, not a consistent freeze, and every exported
    /// entry is individually checksummed so that is safe.
    pub fn for_each_entry(&self, mut f: impl FnMut(&CacheEntry)) {
        for shard in &self.shards {
            let guard = read_shard(shard);
            for groups in guard.by_ip.values() {
                for entry in groups.iter().flat_map(ReadSetGroup::entries) {
                    f(entry);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rip: u32, deps: &[(u32, u8)], outs: &[(u32, u8)], instructions: u64) -> CacheEntry {
        CacheEntry::new(
            rip,
            SparseBytes::from_pairs(deps.to_vec()),
            SparseBytes::from_pairs(outs.to_vec()),
            instructions,
        )
    }

    fn state_with(bytes: &[(usize, u8)]) -> StateVector {
        let mut s = StateVector::new(256).unwrap();
        for &(i, v) in bytes {
            s.set_byte(i, v);
        }
        s
    }

    #[test]
    fn lookup_matches_on_read_set_only() {
        let cache = TrajectoryCache::new(16);
        cache.insert(entry(100, &[(10, 1)], &[(20, 9)], 500));
        // Matching state: byte 10 == 1, everything else irrelevant.
        let state = state_with(&[(10, 1), (50, 99)]);
        let hit = cache.lookup(100, &state).expect("should hit");
        assert_eq!(hit.instructions, 500);
        // Mismatching dependency byte misses.
        let miss_state = state_with(&[(10, 2)]);
        assert!(cache.lookup(100, &miss_state).is_none());
        // Different IP misses even with matching bytes.
        assert!(cache.lookup(101, &state).is_none());
        let stats = cache.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
        // One dependency shape was seen; the matching/mismatching lookups
        // each probed its group, the wrong-IP one probed nothing.
        assert_eq!(stats.groups, 1);
        assert_eq!(stats.probes, 2);
        assert_eq!(stats.collision_rejects, 0);
    }

    #[test]
    fn lookup_prefers_longest_matching_entry() {
        let cache = TrajectoryCache::new(256);
        cache.insert(entry(64, &[(5, 7)], &[(6, 1)], 100));
        cache.insert(entry(64, &[(5, 7), (8, 3)], &[(6, 2)], 900));
        // Both entries match this state: the farther end state wins (§3.2 (11)).
        let state = state_with(&[(5, 7), (8, 3)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 900);
        // Only the shorter matches when byte 8 differs.
        let state = state_with(&[(5, 7), (8, 4)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 100);
        // The two entries have different dependency shapes, hence two groups.
        assert_eq!(cache.stats().groups, 2);
    }

    #[test]
    fn apply_fast_forwards_write_set_only() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 42), (3, 43)], 10));
        let mut state = state_with(&[(1, 1), (2, 0), (3, 0), (4, 77)]);
        let hit = cache.lookup(0, &state).unwrap();
        hit.apply(&mut state);
        assert_eq!(state.byte(2), 42);
        assert_eq!(state.byte(3), 43);
        assert_eq!(state.byte(4), 77); // untouched
    }

    #[test]
    fn duplicate_start_sets_keep_the_longer_entry() {
        let cache = TrajectoryCache::new(16);
        assert!(cache.insert(entry(8, &[(1, 1)], &[(2, 2)], 100)));
        // A shorter duplicate is rejected.
        assert!(!cache.insert(entry(8, &[(1, 1)], &[(2, 3)], 50)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().duplicates, 1);
        assert_eq!(cache.stats().replaced, 0);
        let state = state_with(&[(1, 1)]);
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 100);
        // A longer duplicate replaces the stored one — counted as a
        // replacement, not a duplicate, and reported as a cache change.
        assert!(cache.insert(entry(8, &[(1, 1)], &[(2, 4)], 700)));
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 700);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().duplicates, 1);
        assert_eq!(cache.stats().replaced, 1);
    }

    #[test]
    fn single_rip_entries_spread_across_shards() {
        // The common case is one recognized IP for the whole run; sharding
        // must still spread its entries so concurrent worker inserts do not
        // serialize on a single lock.
        let cache = TrajectoryCache::new(1024);
        for i in 0..64u32 {
            cache.insert(entry(32, &[(i, 1)], &[(200, 1)], 10));
        }
        let populated = cache.shards.iter().filter(|shard| read_shard(shard).entries > 0).count();
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        // Entries stay reachable by rip regardless of which shard they chose.
        for i in 0..64u32 {
            let state = state_with(&[(i as usize, 1)]);
            assert!(cache.peek(32, &state).is_some(), "entry {i} unreachable");
        }
    }

    #[test]
    fn capacity_is_enforced_by_fifo_eviction() {
        let cache = TrajectoryCache::new(SHARD_COUNT); // one entry per shard
        for i in 0..200u32 {
            cache.insert(entry(8, &[(i, 1)], &[(2, 2)], 10));
        }
        assert!(cache.len() <= 2 * SHARD_COUNT);
        let stats = cache.stats();
        assert!(stats.evicted > 0);
        // Eviction accounting is exact: every insert beyond a shard's
        // capacity evicted exactly one entry.
        assert_eq!(cache.len() as u64, stats.inserted - stats.evicted);
    }

    #[test]
    fn eviction_is_oldest_first_within_a_shard() {
        // One shard makes FIFO order observable: the first insert is the
        // first evicted, newer entries survive.
        let cache = TrajectoryCache::with_layout(2, 1, 0);
        cache.insert(entry(8, &[(1, 1)], &[(9, 9)], 10));
        cache.insert(entry(8, &[(2, 2)], &[(9, 9)], 20));
        cache.insert(entry(8, &[(3, 3)], &[(9, 9)], 30));
        assert_eq!(cache.stats().evicted, 1);
        assert!(cache.peek(8, &state_with(&[(1, 1)])).is_none(), "oldest entry must be evicted");
        assert!(cache.peek(8, &state_with(&[(2, 2)])).is_some());
        assert!(cache.peek(8, &state_with(&[(3, 3)])).is_some());
        // Churn through many more inserts: count stays exact, len bounded.
        for i in 0..100u32 {
            cache.insert(entry(8, &[(i + 10, 7)], &[(9, 9)], 10));
        }
        let stats = cache.stats();
        assert_eq!(cache.len() as u64, stats.inserted - stats.evicted);
        assert!(cache.len() <= 3);
    }

    #[test]
    fn emptied_groups_are_recycled_for_new_shapes() {
        // One shard, two entries of capacity, every entry a fresh shape:
        // eviction keeps emptying the oldest group, and inserts must reuse
        // those husks instead of growing the group vector without bound.
        let cache = TrajectoryCache::with_layout(2, 1, 0);
        for i in 0..50u32 {
            cache.insert(entry(8, &[(i, 1), (200, 2)], &[(9, 9)], 10));
        }
        let groups_in_vec = read_shard(&cache.shards[0]).by_ip[&8].len();
        assert!(groups_in_vec <= 3, "dead groups accumulated: {groups_in_vec} in the vector");
        // The stats counter still counts every admitted shape.
        assert_eq!(cache.stats().groups, 50);
        // The survivors stay reachable.
        assert!(cache.peek(8, &state_with(&[(49, 1), (200, 2)])).is_some());
    }

    #[test]
    fn junk_filter_closes_hitless_groups_and_admits_useful_ones() {
        // Threshold 4: after 4 hitless probes a group refuses inserts.
        let cache = TrajectoryCache::with_layout(1024, 1, 4);
        cache.insert(entry(8, &[(1, 1)], &[(9, 9)], 10));
        let miss = state_with(&[(1, 2)]);
        for _ in 0..4 {
            assert!(cache.lookup(8, &miss).is_none());
        }
        // The group is now proven junk: same-shape inserts are refused...
        assert!(!cache.insert(entry(8, &[(1, 3)], &[(9, 9)], 10)));
        assert_eq!(cache.stats().junk_rejected, 1);
        // ...but a hit re-opens it.
        assert!(cache.lookup(8, &state_with(&[(1, 1)])).is_some());
        assert!(cache.insert(entry(8, &[(1, 3)], &[(9, 9)], 10)));

        // A useful group (hits early) never trips the filter.
        let useful = TrajectoryCache::with_layout(1024, 1, 4);
        useful.insert(entry(8, &[(1, 1)], &[(9, 9)], 10));
        for _ in 0..32 {
            assert!(useful.lookup(8, &state_with(&[(1, 1)])).is_some());
        }
        assert!(useful.insert(entry(8, &[(1, 2)], &[(9, 9)], 10)));
        assert_eq!(useful.stats().junk_rejected, 0);

        // Threshold 0 disables the filter entirely.
        let off = TrajectoryCache::with_layout(1024, 1, 0);
        off.insert(entry(8, &[(1, 1)], &[(9, 9)], 10));
        for _ in 0..64 {
            off.lookup(8, &miss);
        }
        assert!(off.insert(entry(8, &[(1, 3)], &[(9, 9)], 10)));
        assert_eq!(off.stats().junk_rejected, 0);
    }

    #[test]
    fn junk_filter_bounds_fresh_shapes_too() {
        // Chaotic-workload shape: every entry has a *different* read-set
        // position set, so junk arrives as new groups. Probe often enough
        // and group admission must close.
        let cache = TrajectoryCache::with_layout(1 << 12, 1, 2);
        let miss = state_with(&[]);
        let mut accepted = 0u32;
        for i in 0..2048u32 {
            if cache.insert(entry(8, &[(i % 200 + 1, 255)], &[(0, 0)], 10)) {
                accepted += 1;
            }
            // Each lookup probes every live group once (all miss: byte
            // values are 0, entries want 255).
            cache.lookup(8, &miss);
        }
        let stats = cache.stats();
        assert!(stats.junk_rejected > 0, "{stats:?}");
        assert!(
            accepted <= (JUNK_GROUP_LIMIT + 64) as u32,
            "junk group growth not bounded: {accepted} accepted ({stats:?})"
        );
    }

    #[test]
    fn peek_does_not_count_as_query() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 2)], 10));
        let state = state_with(&[(1, 1)]);
        assert!(cache.peek(0, &state).is_some());
        assert_eq!(cache.stats().queries, 0);
    }

    #[test]
    fn covers_agrees_with_peek_and_allocates_no_entry() {
        let cache = TrajectoryCache::new(16);
        cache.insert(entry(0, &[(1, 1)], &[(2, 2)], 10));
        let hit = state_with(&[(1, 1)]);
        let miss = state_with(&[(1, 2)]);
        assert!(cache.covers(0, &hit));
        assert!(!cache.covers(0, &miss));
        assert!(!cache.covers(1, &hit));
        assert_eq!(cache.stats().queries, 0);
    }

    #[test]
    fn lookup_scratch_is_reusable_across_hits_and_misses() {
        let cache = TrajectoryCache::new(64);
        cache.insert(entry(0, &[(1, 1)], &[(2, 2)], 10));
        cache.insert(entry(0, &[(1, 9), (3, 3)], &[(2, 7)], 99));
        let mut scratch = LookupScratch::new();
        let hit = cache.lookup_with(0, &state_with(&[(1, 1)]), &mut scratch);
        assert_eq!(hit.unwrap().instructions, 10);
        // A subsequent miss leaves the scratch holding stale data but
        // returns None.
        assert!(cache.lookup_with(0, &state_with(&[(1, 5)]), &mut scratch).is_none());
        // The scratch is reused for a different winning entry.
        let hit = cache.lookup_with(0, &state_with(&[(1, 9), (3, 3)]), &mut scratch);
        assert_eq!(hit.unwrap().instructions, 99);
        assert_eq!(cache.stats().queries, 3);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn indexed_lookup_agrees_with_reference_scan() {
        let cache = TrajectoryCache::new(1 << 10);
        // A mix of shapes: shared-shape groups, singleton shapes, an
        // empty-read-set entry (matches everything), longer/shorter pairs.
        cache.insert(entry(8, &[], &[(50, 5)], 7));
        for i in 0..40u32 {
            cache.insert(entry(
                8,
                &[(4, (i % 5) as u8), (9, (i % 3) as u8)],
                &[(60, 1)],
                u64::from(i),
            ));
            cache.insert(entry(8, &[(100 + i, 1)], &[(61, 1)], u64::from(2 * i)));
        }
        for probe in 0..60usize {
            let state = state_with(&[
                (4, (probe % 5) as u8),
                (9, (probe % 3) as u8),
                (100 + probe % 40, (probe % 2) as u8),
            ]);
            let indexed = cache.peek(8, &state).map(|e| e.instructions);
            let scanned = cache.scan_best_match(8, &state).map(|e| e.instructions);
            assert_eq!(indexed, scanned, "probe {probe} diverged");
        }
    }

    #[test]
    fn concurrent_insert_and_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(TrajectoryCache::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    cache.insert(entry(t * 8, &[(i, t as u8)], &[(200, 1)], 10));
                    let state = state_with(&[(i as usize, t as u8)]);
                    cache.lookup(t * 8, &state);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(cache.stats().hits > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn mean_query_bits_reflects_read_set_sizes() {
        let cache = TrajectoryCache::new(8);
        cache.insert(entry(0, &[(1, 1), (2, 2)], &[(3, 3)], 10));
        cache.insert(entry(8, &[(1, 1), (2, 2), (3, 3), (4, 4)], &[(5, 5)], 10));
        // Entries have 2 and 4 dependency bytes at 40 bits each.
        assert!((cache.mean_query_bits() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn freshly_built_entries_verify() {
        let e = entry(7, &[(1, 1), (2, 2)], &[(3, 3)], 42);
        assert!(e.verify());
        assert!(e.clone().verify());
        let mut reused = entry(0, &[], &[], 0);
        reused.clone_from(&e);
        assert!(reused.verify());
    }

    #[test]
    fn corrupted_entries_are_rejected_and_counted() {
        // Tamper with a stored entry's payload via a raw literal whose
        // checksum was sealed over different bytes (in-module test access;
        // external corruption goes through `corrupt_payload`).
        let cache = TrajectoryCache::with_layout(16, 1, 0);
        cache.insert(entry(5, &[(1, 1)], &[(9, 9)], 100));
        {
            let mut shard = write_shard(&cache.shards[0]);
            let group = &mut shard.by_ip.get_mut(&5).unwrap()[0];
            let stored = group.slots[0].as_mut().unwrap();
            stored.end = SparseBytes::from_pairs(vec![(9, 200)]);
            assert!(!stored.verify());
        }
        let state = state_with(&[(1, 1)]);
        assert!(cache.lookup(5, &state).is_none(), "corrupted entry must not be served");
        assert!(cache.scan_best_match(5, &state).is_none());
        assert_eq!(cache.stats().checksum_rejects, 1);
        assert_eq!(cache.integrity_failures(), 1);
        // An intact entry alongside the corpse is still served.
        cache.insert(entry(5, &[(1, 1), (2, 2)], &[(9, 9)], 50));
        let state = state_with(&[(1, 1), (2, 2)]);
        assert_eq!(cache.lookup(5, &state).unwrap().instructions, 50);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corrupt_payload_breaks_verification() {
        for selector in [0u64, 1, 7, 8, 63, u64::MAX] {
            let mut e = entry(3, &[(1, 1)], &[(2, 2), (4, 4)], 10);
            e.corrupt_payload(selector);
            assert!(!e.verify(), "selector {selector} produced a verifying corruption");
        }
        // An entry with an empty write set corrupts its read set instead.
        let mut e = entry(3, &[(1, 1)], &[], 10);
        e.corrupt_payload(5);
        assert!(!e.verify());
    }

    #[test]
    fn single_shard_layout_behaves() {
        let cache = TrajectoryCache::with_layout(64, 1, 0);
        for i in 0..32u32 {
            cache.insert(entry(4, &[(i, 1)], &[(200, 2)], 10));
        }
        assert_eq!(cache.len(), 32);
        for i in 0..32u32 {
            assert!(cache.lookup(4, &state_with(&[(i as usize, 1)])).is_some());
        }
        assert_eq!(cache.stats().hits, 32);
    }

    #[test]
    fn stats_merge_saturates_and_roundtrips_through_bytes() {
        let cache = TrajectoryCache::new(16);
        cache.insert(entry(7, &[(1, 1)], &[(2, 2)], 40));
        cache.lookup(7, &state_with(&[(1, 1)]));
        cache.lookup(7, &state_with(&[(1, 9)]));
        let local = cache.stats();

        let mut merged = local;
        merged.merge(&local);
        assert_eq!(merged.queries, 2 * local.queries);
        assert_eq!(merged.hits, 2 * local.hits);
        assert_eq!(merged.inserted, 2 * local.inserted);
        assert_eq!(merged.instructions_served, 2 * local.instructions_served);

        // Saturation, not wraparound: a peer restarting mid-run must never
        // make a merged counter travel backwards.
        let mut near_max = local;
        near_max.queries = u64::MAX - 1;
        near_max.merge(&local);
        assert_eq!(near_max.queries, u64::MAX);

        let bytes = local.to_le_bytes();
        assert_eq!(bytes.len(), CACHE_STATS_WIRE_LEN);
        let decoded = CacheStats::from_le_bytes(&bytes).expect("well-formed stats decode");
        assert_eq!(decoded.queries, local.queries);
        assert_eq!(decoded.hits, local.hits);
        assert_eq!(decoded.inserted, local.inserted);
        assert_eq!(decoded.probes, local.probes);
        assert_eq!(decoded.instructions_served, local.instructions_served);
        // Wrong length rejects rather than guessing a prefix.
        assert!(CacheStats::from_le_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(CacheStats::from_le_bytes(&[]).is_none());
    }

    #[test]
    fn probe_by_hashes_finds_the_longest_verified_entry() {
        let cache = TrajectoryCache::new(256);
        cache.insert(entry(9, &[(5, 7)], &[(6, 1)], 100));
        cache.insert(entry(9, &[(5, 7), (8, 3)], &[(6, 2)], 900));

        let state = state_with(&[(5, 7), (8, 3)]);
        // The pairs a remote client would send: every known schema's
        // position hash with the value hash of the query state's bytes at
        // those positions.
        let short = PositionSchema::of(&SparseBytes::from_pairs(vec![(5, 7)]));
        let long = PositionSchema::of(&SparseBytes::from_pairs(vec![(5, 7), (8, 3)]));
        let pairs: Vec<(u64, u64)> = [&short, &long]
            .iter()
            .filter_map(|s| s.hash_values_of(&state).map(|v| (s.hash(), v)))
            .collect();
        assert_eq!(pairs.len(), 2);

        let best = cache.probe_by_hashes(9, &pairs).expect("both shapes match");
        assert_eq!(best.instructions, 900);
        // A single pair restricts the probe to that shape.
        let only_short: Vec<_> =
            pairs.iter().copied().filter(|&(p, _)| p == short.hash()).collect();
        assert_eq!(cache.probe_by_hashes(9, &only_short).unwrap().instructions, 100);
        // Unknown rip, empty pairs, or wrong hashes all miss.
        assert!(cache.probe_by_hashes(10, &pairs).is_none());
        assert!(cache.probe_by_hashes(9, &[]).is_none());
        assert!(cache.probe_by_hashes(9, &[(1, 2)]).is_none());
        // Remote probes are not local queries: counters untouched.
        assert_eq!(cache.stats().queries, 0);
    }

    #[test]
    fn for_each_entry_visits_every_live_entry_once() {
        let cache = TrajectoryCache::new(256);
        for i in 0..20u32 {
            cache.insert(entry(3, &[(i, 1)], &[(200, i as u8)], 10 + u64::from(i)));
        }
        let mut seen = Vec::new();
        cache.for_each_entry(|e| seen.push(e.instructions));
        seen.sort_unstable();
        let expected: Vec<u64> = (0..20).map(|i| 10 + i).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn insert_observer_sees_accepted_inserts_only() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        let cache = TrajectoryCache::new(16);
        let observed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&observed);
        assert!(cache.set_insert_observer(Arc::new(move |e: &CacheEntry| {
            assert!(e.verify());
            counter.fetch_add(1, Ordering::SeqCst);
        })));
        // Only one observer per cache lifetime.
        assert!(!cache.set_insert_observer(Arc::new(|_| {})));

        assert!(cache.insert(entry(2, &[(1, 1)], &[(3, 3)], 50)));
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        // A duplicate (same start, not longer) is not an accepted insert.
        assert!(!cache.insert(entry(2, &[(1, 1)], &[(3, 3)], 40)));
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        // A replacement is: the cache's contents changed.
        assert!(cache.insert(entry(2, &[(1, 1)], &[(3, 4)], 90)));
        assert_eq!(observed.load(Ordering::SeqCst), 2);
        // Entries landing through the unobserved path (read-through,
        // snapshot load) never echo to the observer.
        assert!(cache.insert_unobserved(entry(2, &[(5, 5)], &[(6, 6)], 10)));
        assert_eq!(observed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn from_parts_unchecked_preserves_checksum_exactly() {
        let original = entry(11, &[(1, 2), (3, 4)], &[(5, 6)], 777);
        let rebuilt = CacheEntry::from_parts_unchecked(
            original.rip,
            original.start.clone(),
            original.end.clone(),
            original.instructions,
            original.checksum(),
        );
        assert_eq!(rebuilt, original);
        assert!(rebuilt.verify());
        // A tampered checksum survives construction (the codec's job is to
        // carry it) but fails verification.
        let tampered = CacheEntry::from_parts_unchecked(
            original.rip,
            original.start.clone(),
            original.end.clone(),
            original.instructions,
            original.checksum() ^ 1,
        );
        assert!(!tampered.verify());
    }
}
