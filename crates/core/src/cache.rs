//! The trajectory cache (§4.2).
//!
//! Each entry is a compressed pair of start and end states: the *start* keeps
//! only the bytes the speculative execution read before writing (its true
//! dependencies) and the *end* keeps only the bytes it wrote. The main thread
//! matches its current state against entry start sets — a match on just those
//! bytes is sufficient for correctness — and fast-forwards by applying the
//! end set, "a translation symmetry in state space".
//!
//! The cache is sharded and internally synchronised so speculative worker
//! threads can insert entries while the main thread queries, mirroring the
//! paper's distributed per-core cache (the cluster cost model in
//! [`crate::cluster`] charges the reduction and point-to-point costs that a
//! distributed realisation adds).

use asc_tvm::delta::SparseBytes;
use asc_tvm::state::StateVector;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One cached speculative trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Recognized IP value this entry's start state was captured at.
    pub rip: u32,
    /// Sparse read-set capture: the bytes (and values) the execution depended on.
    pub start: SparseBytes,
    /// Sparse write-set capture: the bytes (and values) the execution produced.
    pub end: SparseBytes,
    /// Number of instructions the entry fast-forwards over.
    pub instructions: u64,
}

impl CacheEntry {
    /// Whether the entry's dependencies are satisfied by `state`.
    pub fn matches(&self, state: &StateVector) -> bool {
        self.start.matches(state)
    }

    /// Fast-forwards `state` by applying the entry's write set.
    pub fn apply(&self, state: &mut StateVector) {
        self.end.apply(state);
    }

    /// Size in bits of the query needed to match this entry (Table 1's
    /// "cache query size" row).
    pub fn query_bits(&self) -> usize {
        self.start.encoded_bits()
    }
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub queries: u64,
    /// Number of lookups that returned an entry.
    pub hits: u64,
    /// Number of entries inserted.
    pub inserted: u64,
    /// Number of entries rejected as duplicates of an existing start set.
    pub duplicates: u64,
    /// Number of entries evicted due to the capacity limit.
    pub evicted: u64,
    /// Total instructions fast-forwarded by returned entries.
    pub instructions_served: u64,
}

impl CacheStats {
    /// Fraction of queries that missed (0 when nothing was queried).
    pub fn miss_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.queries as f64
        }
    }
}

#[derive(Default)]
struct Shard {
    by_ip: HashMap<u32, Vec<CacheEntry>>,
    entries: usize,
}

/// A concurrent, sharded trajectory cache.
pub struct TrajectoryCache {
    shards: Vec<RwLock<Shard>>,
    capacity_per_shard: usize,
    queries: AtomicU64,
    hits: AtomicU64,
    inserted: AtomicU64,
    duplicates: AtomicU64,
    evicted: AtomicU64,
    instructions_served: AtomicU64,
}

impl std::fmt::Debug for TrajectoryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryCache")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

const SHARD_COUNT: usize = 16;

impl TrajectoryCache {
    /// Creates a cache holding at most `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARD_COUNT).max(1);
        TrajectoryCache {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(Shard::default())).collect(),
            capacity_per_shard,
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            instructions_served: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, rip: u32) -> &RwLock<Shard> {
        &self.shards[(rip as usize / 8) % SHARD_COUNT]
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. Returns `false` when an entry with an identical
    /// start set (and at least as many instructions) already exists.
    pub fn insert(&self, entry: CacheEntry) -> bool {
        let shard = self.shard_for(entry.rip);
        let mut guard = shard.write();
        let bucket = guard.by_ip.entry(entry.rip).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.start == entry.start) {
            if existing.instructions >= entry.instructions {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            *existing = entry;
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        bucket.push(entry);
        guard.entries += 1;
        if guard.entries > self.capacity_per_shard {
            // Evict the oldest entry of the largest bucket (FIFO within IP).
            if let Some((_, bucket)) = guard
                .by_ip
                .iter_mut()
                .max_by_key(|(_, entries)| entries.len())
            {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    guard.entries -= 1;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Looks up the longest entry for `rip` whose dependencies match `state`.
    pub fn lookup(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(rip);
        let guard = shard.read();
        let best = guard
            .by_ip
            .get(&rip)?
            .iter()
            .filter(|entry| entry.matches(state))
            .max_by_key(|entry| entry.instructions)
            .cloned();
        if let Some(entry) = &best {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.instructions_served.fetch_add(entry.instructions, Ordering::Relaxed);
        }
        best
    }

    /// Looks up without recording query statistics (used by the recognizer's
    /// what-if evaluation so it does not pollute the reported hit rates).
    pub fn peek(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let shard = self.shard_for(rip);
        let guard = shard.read();
        guard
            .by_ip
            .get(&rip)?
            .iter()
            .filter(|entry| entry.matches(state))
            .max_by_key(|entry| entry.instructions)
            .cloned()
    }

    /// Average query size in bits over all stored entries (Table 1).
    pub fn mean_query_bits(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for shard in &self.shards {
            let guard = shard.read();
            for bucket in guard.by_ip.values() {
                for entry in bucket {
                    total += entry.query_bits();
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        CacheStats {
            queries,
            hits,
            inserted: self.inserted.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            instructions_served: self.instructions_served.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rip: u32, deps: &[(u32, u8)], outs: &[(u32, u8)], instructions: u64) -> CacheEntry {
        CacheEntry {
            rip,
            start: SparseBytes::from_pairs(deps.to_vec()),
            end: SparseBytes::from_pairs(outs.to_vec()),
            instructions,
        }
    }

    fn state_with(bytes: &[(usize, u8)]) -> StateVector {
        let mut s = StateVector::new(256).unwrap();
        for &(i, v) in bytes {
            s.set_byte(i, v);
        }
        s
    }

    #[test]
    fn lookup_matches_on_read_set_only() {
        let cache = TrajectoryCache::new(16);
        cache.insert(entry(100, &[(10, 1)], &[(20, 9)], 500));
        // Matching state: byte 10 == 1, everything else irrelevant.
        let state = state_with(&[(10, 1), (50, 99)]);
        let hit = cache.lookup(100, &state).expect("should hit");
        assert_eq!(hit.instructions, 500);
        // Mismatching dependency byte misses.
        let miss_state = state_with(&[(10, 2)]);
        assert!(cache.lookup(100, &miss_state).is_none());
        // Different IP misses even with matching bytes.
        assert!(cache.lookup(101, &state).is_none());
        let stats = cache.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_prefers_longest_matching_entry() {
        let cache = TrajectoryCache::new(256);
        cache.insert(entry(64, &[(5, 7)], &[(6, 1)], 100));
        cache.insert(entry(64, &[(5, 7), (8, 3)], &[(6, 2)], 900));
        // Both entries match this state: the farther end state wins (§3.2 (11)).
        let state = state_with(&[(5, 7), (8, 3)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 900);
        // Only the shorter matches when byte 8 differs.
        let state = state_with(&[(5, 7), (8, 4)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 100);
    }

    #[test]
    fn apply_fast_forwards_write_set_only() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 42), (3, 43)], 10));
        let mut state = state_with(&[(1, 1), (2, 0), (3, 0), (4, 77)]);
        let hit = cache.lookup(0, &state).unwrap();
        hit.apply(&mut state);
        assert_eq!(state.byte(2), 42);
        assert_eq!(state.byte(3), 43);
        assert_eq!(state.byte(4), 77); // untouched
    }

    #[test]
    fn duplicate_start_sets_keep_the_longer_entry() {
        let cache = TrajectoryCache::new(16);
        assert!(cache.insert(entry(8, &[(1, 1)], &[(2, 2)], 100)));
        assert!(!cache.insert(entry(8, &[(1, 1)], &[(2, 3)], 50)));
        assert_eq!(cache.len(), 1);
        let state = state_with(&[(1, 1)]);
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 100);
        // A longer duplicate replaces the stored one.
        assert!(!cache.insert(entry(8, &[(1, 1)], &[(2, 4)], 700)));
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 700);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        let cache = TrajectoryCache::new(SHARD_COUNT); // one entry per shard
        for i in 0..200u32 {
            cache.insert(entry(8, &[(i, 1)], &[(2, 2)], 10));
        }
        assert!(cache.len() <= 2 * SHARD_COUNT);
        assert!(cache.stats().evicted > 0);
    }

    #[test]
    fn peek_does_not_count_as_query() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 2)], 10));
        let state = state_with(&[(1, 1)]);
        assert!(cache.peek(0, &state).is_some());
        assert_eq!(cache.stats().queries, 0);
    }

    #[test]
    fn concurrent_insert_and_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(TrajectoryCache::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    cache.insert(entry(t * 8, &[(i, t as u8)], &[(200, 1)], 10));
                    let state = state_with(&[(i as usize, t as u8)]);
                    cache.lookup(t * 8, &state);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(cache.stats().hits > 0);
        assert!(cache.len() > 0);
    }

    #[test]
    fn mean_query_bits_reflects_read_set_sizes() {
        let cache = TrajectoryCache::new(8);
        cache.insert(entry(0, &[(1, 1), (2, 2)], &[(3, 3)], 10));
        cache.insert(entry(8, &[(1, 1), (2, 2), (3, 3), (4, 4)], &[(5, 5)], 10));
        // Entries have 2 and 4 dependency bytes at 40 bits each.
        assert!((cache.mean_query_bits() - 120.0).abs() < 1e-9);
    }
}
