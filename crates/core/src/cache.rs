//! The trajectory cache (§4.2).
//!
//! Each entry is a compressed pair of start and end states: the *start* keeps
//! only the bytes the speculative execution read before writing (its true
//! dependencies) and the *end* keeps only the bytes it wrote. The main thread
//! matches its current state against entry start sets — a match on just those
//! bytes is sufficient for correctness — and fast-forwards by applying the
//! end set, "a translation symmetry in state space".
//!
//! The cache is sharded and internally synchronised so speculative worker
//! threads can insert entries while the main thread queries, mirroring the
//! paper's distributed per-core cache (the cluster cost model in
//! [`crate::cluster`] charges the reduction and point-to-point costs that a
//! distributed realisation adds).

use asc_tvm::delta::SparseBytes;
use asc_tvm::state::StateVector;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks a shard, recovering from a poisoned lock: the cache's data is
/// plain byte maps, so a worker panic mid-insert cannot leave logical
/// invariants broken that matter for a best-effort cache.
fn read_shard(shard: &RwLock<Shard>) -> RwLockReadGuard<'_, Shard> {
    shard.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_shard(shard: &RwLock<Shard>) -> RwLockWriteGuard<'_, Shard> {
    shard.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cached speculative trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Recognized IP value this entry's start state was captured at.
    pub rip: u32,
    /// Sparse read-set capture: the bytes (and values) the execution depended on.
    pub start: SparseBytes,
    /// Sparse write-set capture: the bytes (and values) the execution produced.
    pub end: SparseBytes,
    /// Number of instructions the entry fast-forwards over.
    pub instructions: u64,
}

impl CacheEntry {
    /// Whether the entry's dependencies are satisfied by `state`.
    pub fn matches(&self, state: &StateVector) -> bool {
        self.start.matches(state)
    }

    /// Fast-forwards `state` by applying the entry's write set.
    pub fn apply(&self, state: &mut StateVector) {
        self.end.apply(state);
    }

    /// Size in bits of the query needed to match this entry (Table 1's
    /// "cache query size" row).
    pub fn query_bits(&self) -> usize {
        self.start.encoded_bits()
    }
}

/// Counters describing cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups performed.
    pub queries: u64,
    /// Number of lookups that returned an entry.
    pub hits: u64,
    /// Number of entries inserted.
    pub inserted: u64,
    /// Number of entries rejected as duplicates of an existing start set
    /// that already fast-forwards at least as far.
    pub duplicates: u64,
    /// Number of existing entries replaced by a longer trajectory with the
    /// same start set.
    pub replaced: u64,
    /// Number of entries evicted due to the capacity limit.
    pub evicted: u64,
    /// Total instructions fast-forwarded by returned entries.
    pub instructions_served: u64,
}

impl CacheStats {
    /// Fraction of queries that missed (0 when nothing was queried).
    pub fn miss_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.queries as f64
        }
    }
}

#[derive(Default)]
struct Shard {
    by_ip: HashMap<u32, Vec<CacheEntry>>,
    entries: usize,
}

/// A concurrent, sharded trajectory cache.
///
/// Entries are sharded by a hash of their start-set key bytes (indices and
/// values), not by recognized IP: a typical run speculates on a *single* IP,
/// so IP-based sharding would funnel every concurrent worker insert through
/// one lock. Hash sharding spreads inserts across all shards; lookups scan
/// the shards under cheap read locks (once per superstep, against worker
/// inserts happening once per speculative superstep — reads dominate).
pub struct TrajectoryCache {
    shards: Vec<RwLock<Shard>>,
    capacity_per_shard: usize,
    queries: AtomicU64,
    hits: AtomicU64,
    inserted: AtomicU64,
    duplicates: AtomicU64,
    replaced: AtomicU64,
    evicted: AtomicU64,
    instructions_served: AtomicU64,
}

impl std::fmt::Debug for TrajectoryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrajectoryCache")
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

const SHARD_COUNT: usize = 16;

impl TrajectoryCache {
    /// Creates a cache holding at most `capacity` entries in total.
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARD_COUNT).max(1);
        TrajectoryCache {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(Shard::default())).collect(),
            capacity_per_shard,
            queries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            replaced: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            instructions_served: AtomicU64::new(0),
        }
    }

    /// The shard an entry lives in: keyed on the start-set contents so that
    /// the entries of a single-rip run (the common case) spread across every
    /// shard instead of serializing concurrent worker inserts on one lock.
    fn shard_for(&self, start: &SparseBytes) -> &RwLock<Shard> {
        &self.shards[(start.fingerprint() as usize) % SHARD_COUNT]
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_shard(s).entries).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. Returns `true` when the cache's contents changed:
    /// either a fresh entry was stored or an existing entry with the same
    /// start set was replaced by this longer trajectory (counted in the
    /// `replaced` statistic). Returns `false` — counting a `duplicate` —
    /// only when an identical start set already fast-forwards at least as
    /// far.
    pub fn insert(&self, entry: CacheEntry) -> bool {
        let shard = self.shard_for(&entry.start);
        let mut guard = write_shard(shard);
        let bucket = guard.by_ip.entry(entry.rip).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.start == entry.start) {
            if existing.instructions >= entry.instructions {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            *existing = entry;
            self.replaced.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        bucket.push(entry);
        guard.entries += 1;
        if guard.entries > self.capacity_per_shard {
            // Evict the oldest entry of the largest bucket (FIFO within IP).
            if let Some((_, bucket)) =
                guard.by_ip.iter_mut().max_by_key(|(_, entries)| entries.len())
            {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    guard.entries -= 1;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.inserted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The longest entry for `rip` whose dependencies match `state`,
    /// scanning every shard (entries for one rip are hash-spread across all
    /// of them).
    fn best_match(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let mut best: Option<CacheEntry> = None;
        for shard in &self.shards {
            let guard = read_shard(shard);
            let Some(bucket) = guard.by_ip.get(&rip) else { continue };
            for entry in bucket {
                if entry.matches(state)
                    && best.as_ref().is_none_or(|b| entry.instructions > b.instructions)
                {
                    best = Some(entry.clone());
                }
            }
        }
        best
    }

    /// Looks up the longest entry for `rip` whose dependencies match `state`.
    pub fn lookup(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let best = self.best_match(rip, state);
        if let Some(entry) = &best {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.instructions_served.fetch_add(entry.instructions, Ordering::Relaxed);
        }
        best
    }

    /// Looks up without recording query statistics (used by the recognizer's
    /// what-if evaluation so it does not pollute the reported hit rates).
    pub fn peek(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        self.best_match(rip, state)
    }

    /// Average query size in bits over all stored entries (Table 1).
    pub fn mean_query_bits(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for shard in &self.shards {
            let guard = read_shard(shard);
            for bucket in guard.by_ip.values() {
                for entry in bucket {
                    total += entry.query_bits();
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        CacheStats {
            queries,
            hits,
            inserted: self.inserted.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            replaced: self.replaced.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            instructions_served: self.instructions_served.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(rip: u32, deps: &[(u32, u8)], outs: &[(u32, u8)], instructions: u64) -> CacheEntry {
        CacheEntry {
            rip,
            start: SparseBytes::from_pairs(deps.to_vec()),
            end: SparseBytes::from_pairs(outs.to_vec()),
            instructions,
        }
    }

    fn state_with(bytes: &[(usize, u8)]) -> StateVector {
        let mut s = StateVector::new(256).unwrap();
        for &(i, v) in bytes {
            s.set_byte(i, v);
        }
        s
    }

    #[test]
    fn lookup_matches_on_read_set_only() {
        let cache = TrajectoryCache::new(16);
        cache.insert(entry(100, &[(10, 1)], &[(20, 9)], 500));
        // Matching state: byte 10 == 1, everything else irrelevant.
        let state = state_with(&[(10, 1), (50, 99)]);
        let hit = cache.lookup(100, &state).expect("should hit");
        assert_eq!(hit.instructions, 500);
        // Mismatching dependency byte misses.
        let miss_state = state_with(&[(10, 2)]);
        assert!(cache.lookup(100, &miss_state).is_none());
        // Different IP misses even with matching bytes.
        assert!(cache.lookup(101, &state).is_none());
        let stats = cache.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.hits, 1);
        assert!((stats.miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_prefers_longest_matching_entry() {
        let cache = TrajectoryCache::new(256);
        cache.insert(entry(64, &[(5, 7)], &[(6, 1)], 100));
        cache.insert(entry(64, &[(5, 7), (8, 3)], &[(6, 2)], 900));
        // Both entries match this state: the farther end state wins (§3.2 (11)).
        let state = state_with(&[(5, 7), (8, 3)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 900);
        // Only the shorter matches when byte 8 differs.
        let state = state_with(&[(5, 7), (8, 4)]);
        assert_eq!(cache.lookup(64, &state).unwrap().instructions, 100);
    }

    #[test]
    fn apply_fast_forwards_write_set_only() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 42), (3, 43)], 10));
        let mut state = state_with(&[(1, 1), (2, 0), (3, 0), (4, 77)]);
        let hit = cache.lookup(0, &state).unwrap();
        hit.apply(&mut state);
        assert_eq!(state.byte(2), 42);
        assert_eq!(state.byte(3), 43);
        assert_eq!(state.byte(4), 77); // untouched
    }

    #[test]
    fn duplicate_start_sets_keep_the_longer_entry() {
        let cache = TrajectoryCache::new(16);
        assert!(cache.insert(entry(8, &[(1, 1)], &[(2, 2)], 100)));
        // A shorter duplicate is rejected.
        assert!(!cache.insert(entry(8, &[(1, 1)], &[(2, 3)], 50)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().duplicates, 1);
        assert_eq!(cache.stats().replaced, 0);
        let state = state_with(&[(1, 1)]);
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 100);
        // A longer duplicate replaces the stored one — counted as a
        // replacement, not a duplicate, and reported as a cache change.
        assert!(cache.insert(entry(8, &[(1, 1)], &[(2, 4)], 700)));
        assert_eq!(cache.lookup(8, &state).unwrap().instructions, 700);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().duplicates, 1);
        assert_eq!(cache.stats().replaced, 1);
    }

    #[test]
    fn single_rip_entries_spread_across_shards() {
        // The common case is one recognized IP for the whole run; sharding
        // must still spread its entries so concurrent worker inserts do not
        // serialize on a single lock.
        let cache = TrajectoryCache::new(1024);
        for i in 0..64u32 {
            cache.insert(entry(32, &[(i, 1)], &[(200, 1)], 10));
        }
        let populated = cache.shards.iter().filter(|shard| read_shard(shard).entries > 0).count();
        assert!(populated > SHARD_COUNT / 2, "only {populated} shards used");
        // Entries stay reachable by rip regardless of which shard they chose.
        for i in 0..64u32 {
            let state = state_with(&[(i as usize, 1)]);
            assert!(cache.peek(32, &state).is_some(), "entry {i} unreachable");
        }
    }

    #[test]
    fn capacity_is_enforced_by_eviction() {
        let cache = TrajectoryCache::new(SHARD_COUNT); // one entry per shard
        for i in 0..200u32 {
            cache.insert(entry(8, &[(i, 1)], &[(2, 2)], 10));
        }
        assert!(cache.len() <= 2 * SHARD_COUNT);
        assert!(cache.stats().evicted > 0);
    }

    #[test]
    fn peek_does_not_count_as_query() {
        let cache = TrajectoryCache::new(4);
        cache.insert(entry(0, &[(1, 1)], &[(2, 2)], 10));
        let state = state_with(&[(1, 1)]);
        assert!(cache.peek(0, &state).is_some());
        assert_eq!(cache.stats().queries, 0);
    }

    #[test]
    fn concurrent_insert_and_lookup() {
        use std::sync::Arc;
        let cache = Arc::new(TrajectoryCache::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    cache.insert(entry(t * 8, &[(i, t as u8)], &[(200, 1)], 10));
                    let state = state_with(&[(i as usize, t as u8)]);
                    cache.lookup(t * 8, &state);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(cache.stats().hits > 0);
        assert!(!cache.is_empty());
    }

    #[test]
    fn mean_query_bits_reflects_read_set_sizes() {
        let cache = TrajectoryCache::new(8);
        cache.insert(entry(0, &[(1, 1), (2, 2)], &[(3, 3)], 10));
        cache.insert(entry(8, &[(1, 1), (2, 2), (3, 3), (4, 4)], &[(5, 5)], 10));
        // Entries have 2 and 4 dependency bytes at 40 bits each.
        assert!((cache.mean_query_bits() - 120.0).abs() < 1e-9);
    }
}
