//! Crash-durable run state: occurrence-boundary checkpoints an interrupted
//! `accelerate` run resumes from bit-identically.
//!
//! A checkpoint file is a short stream of [`remote::codec`](crate::remote::codec)
//! frames — a [`CheckpointHeader`](crate::remote::codec::FrameKind::CheckpointHeader)
//! (config fingerprint, sequence, occurrence, section count), one
//! [`CheckpointSection`](crate::remote::codec::FrameKind::CheckpointSection)
//! per state component, and a
//! [`CheckpointEnd`](crate::remote::codec::FrameKind::CheckpointEnd) carrying
//! a whole-file checksum — so checkpoints inherit the wire codec's framing
//! and rejection rules. Each section payload carries its own FNV-1a checksum
//! over the body, and the end frame's checksum chains the header and every
//! section body, so *any* bit flip or truncation anywhere in the file is
//! detected. [`load_newest`] scans a directory newest-sequence-first and
//! returns the first fully intact checkpoint — a damaged newest file falls
//! back to the previous one, and a directory with nothing intact cleanly
//! reports none. The loader never returns a wrong state.
//!
//! Only what bit-identity strictly needs is mandatory: the machine
//! [`StateVector`](asc_tvm::StateVector) and the run counters. Fast-forwards
//! are applied only on a full read-set match, so a resumed run with a cold
//! predictor bank and cold economics still converges to the identical final
//! state — the learned state (predictor bank, economics EMA) rides along as
//! *optional* sections purely to warm the resume, exactly like the
//! trajectory cache snapshot that accompanies each checkpoint as a sibling
//! `.cache` file (see [`cache_path_for`]). Planner-mode runs deliberately
//! omit the bank/economics sections: that state lives on the planner thread
//! and re-warms after resume, the same degrade path a dead planner takes.
//!
//! There is no separate RNG-cursor section: the runtime has no free-running
//! RNG. The only seeded randomness (fault injection's `event_rng`) is a pure
//! function of `(seed, stream, occurrence ordinal)`, so checkpointing the
//! occurrence ordinal *is* checkpointing the RNG cursor.
//!
//! Writes go through a temp file and an atomic rename (the
//! [`remote::snapshot`](crate::remote::snapshot) idiom), and [`save`] prunes
//! to the newest `keep` files, so a crash mid-save leaves prior checkpoints
//! untouched. The failure model this module participates in is tabulated in
//! `ROBUSTNESS.md` at the repository root.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use asc_learn::persist::{self, Reader};
use asc_tvm::delta::fnv1a;

use crate::config::AscConfig;
use crate::recognizer::RecognizedIp;
use crate::remote::codec::{self, FrameKind};

/// Section id for the run counters (rip, occurrence/instruction counters).
const SECTION_RUN: u8 = 1;
/// Section id for the raw machine state vector.
const SECTION_STATE: u8 = 2;
/// Section id for the optional predictor-bank blob.
const SECTION_BANK: u8 = 3;
/// Section id for the optional economics blob.
const SECTION_ECON: u8 = 4;

/// Everything a resumed run needs to continue bit-identically, plus the
/// optional learned state that warms it up.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// Monotonic sequence number; also the file name's ordinal.
    pub sequence: u64,
    /// Fingerprint of the execution-shaping config fields (see
    /// [`config_fingerprint`]); a resume under a different config starts
    /// fresh instead of replaying state the new config cannot interpret.
    pub fingerprint: u64,
    /// RIP occurrences the run had counted when this checkpoint was taken.
    pub occurrence: u64,
    /// The recognized IP the run converged on.
    pub rip: RecognizedIp,
    /// Unique instruction pointers seen during recognition.
    pub unique_ips: usize,
    /// Instructions the recognizer spent converging.
    pub converge_instructions: u64,
    /// Cumulative instructions *executed* up to this checkpoint (the
    /// recognizer's spend plus the main machine's instret at save time) —
    /// the resumed machine restarts its own counter at zero, so budget
    /// arithmetic needs the running total.
    pub resume_instret: u64,
    /// Cumulative instructions fast-forwarded up to this checkpoint.
    pub fast_forwarded: u64,
    /// The machine state vector's raw bytes at the checkpointed occurrence.
    pub state: Vec<u8>,
    /// Serialized [`PredictorBank`](crate::predictor_bank::PredictorBank)
    /// state, when the run mode keeps the bank on the main thread.
    pub bank: Option<Vec<u8>>,
    /// Serialized [`SpeculationEconomics`](crate::economics::SpeculationEconomics)
    /// state, saved alongside the bank.
    pub economics: Option<Vec<u8>>,
}

/// Checkpoint activity counters, reported through
/// [`RunReport::checkpoints`](crate::runtime::RunReport::checkpoints).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints successfully written (tmp flushed and renamed).
    pub saves: u64,
    /// Checkpoint writes that failed; the run continues — durability
    /// degrades, correctness does not.
    pub save_failures: u64,
    /// Occurrence ordinal of the newest successful save.
    pub last_occurrence: u64,
    /// Total checkpoint bytes written (excluding cache snapshots).
    pub bytes_written: u64,
    /// Whether this run restored a checkpoint instead of starting fresh.
    pub resumed: bool,
    /// Sequence number of the restored checkpoint (0 when not resumed).
    pub resume_sequence: u64,
    /// Trajectory-cache entries warm-loaded from the sibling snapshot.
    pub cache_entries_loaded: u64,
    /// Checkpoint files rejected during the resume scan (torn, truncated,
    /// bit-flipped, or fingerprint-mismatched).
    pub rejected_files: u64,
}

/// What a [`load_newest`] scan found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointScan {
    /// The newest fully intact, fingerprint-matching checkpoint, if any.
    pub checkpoint: Option<RunCheckpoint>,
    /// Files examined and rejected before (or instead of) finding it.
    pub rejected_files: u64,
}

/// Hashes the config fields that shape execution and learned-state layout.
///
/// A checkpoint taken under one recognizer/predictor configuration must not
/// seed a run under another: the recognized IP, excitation shapes and
/// predictor complement would silently disagree. Deliberately *excluded*:
/// `instruction_budget` (resuming with a larger budget is the point),
/// `workers`/`planner` and all supervision, remote, checkpoint and watchdog
/// settings — those change scheduling and durability, never the trajectory.
pub fn config_fingerprint(config: &AscConfig) -> u64 {
    let mut buf = Vec::with_capacity(128);
    persist::put_u64(&mut buf, config.explore_instructions);
    persist::put_usize(&mut buf, config.evaluation_occurrences);
    persist::put_usize(&mut buf, config.evaluation_training);
    persist::put_usize(&mut buf, config.candidate_count);
    persist::put_u64(&mut buf, config.min_superstep);
    persist::put_u64(&mut buf, config.max_superstep);
    persist::put_usize(&mut buf, config.rollout_depth);
    persist::put_f64(&mut buf, config.ensemble_beta);
    persist::put_str(&mut buf, &format!("{:?}", config.predictors));
    persist::put_u32(&mut buf, config.excitation_threshold);
    persist::put_usize(&mut buf, config.excitation_warmup);
    persist::put_usize(&mut buf, config.max_excited_bits);
    persist::put_usize(&mut buf, config.mistake_log_capacity);
    fnv1a(buf)
}

/// Combines [`config_fingerprint`] with the program's initial state: a
/// checkpoint must only ever seed a resume of the *same program on the same
/// input* under the same execution-shaping config — anything else is a
/// different trajectory.
pub fn run_fingerprint(config: &AscConfig, initial: &asc_tvm::state::StateVector) -> u64 {
    let mut buf = Vec::with_capacity(8 + initial.as_bytes().len());
    persist::put_u64(&mut buf, config_fingerprint(config));
    buf.extend_from_slice(initial.as_bytes());
    fnv1a(buf)
}

/// The checkpoint file path for a sequence number.
pub fn checkpoint_path_for(dir: &Path, sequence: u64) -> PathBuf {
    dir.join(format!("ckpt-{sequence:08}.asc"))
}

/// The sibling trajectory-cache snapshot path for a sequence number.
pub fn cache_path_for(dir: &Path, sequence: u64) -> PathBuf {
    dir.join(format!("ckpt-{sequence:08}.cache"))
}

fn encode_section(id: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.push(id);
    persist::put_u64(&mut payload, fnv1a(body.iter().copied()));
    payload.extend_from_slice(body);
    payload
}

fn encode_run_section(ckpt: &RunCheckpoint) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    persist::put_u32(&mut body, ckpt.rip.ip);
    persist::put_usize(&mut body, ckpt.rip.stride);
    persist::put_f64(&mut body, ckpt.rip.mean_superstep);
    persist::put_f64(&mut body, ckpt.rip.accuracy);
    persist::put_f64(&mut body, ckpt.rip.score);
    persist::put_usize(&mut body, ckpt.unique_ips);
    persist::put_u64(&mut body, ckpt.converge_instructions);
    persist::put_u64(&mut body, ckpt.resume_instret);
    persist::put_u64(&mut body, ckpt.fast_forwarded);
    body
}

fn decode_run_section(body: &[u8]) -> Option<(RecognizedIp, usize, u64, u64, u64)> {
    let mut reader = Reader::new(body);
    let rip = RecognizedIp {
        ip: reader.u32()?,
        stride: reader.usize()?,
        mean_superstep: reader.f64()?,
        accuracy: reader.f64()?,
        score: reader.f64()?,
    };
    let unique_ips = reader.usize()?;
    let converge = reader.u64()?;
    let resume_instret = reader.u64()?;
    let fast_forwarded = reader.u64()?;
    if !reader.is_empty() {
        return None;
    }
    Some((rip, unique_ips, converge, resume_instret, fast_forwarded))
}

/// Writes `ckpt` to its sequence-numbered file in `dir`, creating the
/// directory if needed, then prunes all but the newest `keep` checkpoints
/// (each pruned file's `.cache` sibling goes with it). Returns the bytes
/// written.
///
/// # Errors
/// Propagates directory creation, write and rename failures. The target is
/// written as `<path>.tmp` and renamed into place only after a successful
/// flush, so a failed save never damages prior checkpoints. Prune errors
/// are swallowed — stale files cost disk, not correctness.
pub fn save(dir: &Path, ckpt: &RunCheckpoint, keep: usize) -> io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let sections: Vec<(u8, &[u8])> = {
        let mut sections: Vec<(u8, &[u8])> = Vec::with_capacity(4);
        sections.push((SECTION_RUN, &[]));
        sections.push((SECTION_STATE, ckpt.state.as_slice()));
        if let Some(bank) = &ckpt.bank {
            sections.push((SECTION_BANK, bank.as_slice()));
        }
        if let Some(econ) = &ckpt.economics {
            sections.push((SECTION_ECON, econ.as_slice()));
        }
        sections
    };
    let run_body = encode_run_section(ckpt);

    let mut header = Vec::with_capacity(28);
    persist::put_u64(&mut header, ckpt.fingerprint);
    persist::put_u64(&mut header, ckpt.sequence);
    persist::put_u64(&mut header, ckpt.occurrence);
    persist::put_u32(&mut header, sections.len() as u32);

    // The end frame's checksum chains the header and every section body, so
    // damage to the header (which no section checksum covers) or a swapped
    // section is caught at the file level.
    let mut digest: Vec<u8> = Vec::with_capacity(8 * (1 + sections.len()));
    digest.extend_from_slice(&fnv1a(header.iter().copied()).to_le_bytes());

    let path = checkpoint_path_for(dir, ckpt.sequence);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut writer = BufWriter::new(File::create(&tmp)?);
    let mut written = 0u64;
    let mut emit = |writer: &mut BufWriter<File>, frame: Vec<u8>| -> io::Result<()> {
        written += frame.len() as u64;
        writer.write_all(&frame)
    };
    emit(&mut writer, codec::encode_frame(FrameKind::CheckpointHeader, &header))?;
    for &(id, body) in &sections {
        let body = if id == SECTION_RUN { run_body.as_slice() } else { body };
        digest.extend_from_slice(&fnv1a(body.iter().copied()).to_le_bytes());
        emit(
            &mut writer,
            codec::encode_frame(FrameKind::CheckpointSection, &encode_section(id, body)),
        )?;
    }
    let mut end = Vec::with_capacity(8);
    persist::put_u64(&mut end, fnv1a(digest.iter().copied()));
    emit(&mut writer, codec::encode_frame(FrameKind::CheckpointEnd, &end))?;
    writer.flush()?;
    drop(writer);
    std::fs::rename(&tmp, &path)?;
    prune(dir, keep);
    Ok(written)
}

/// Deletes all but the newest `keep` checkpoint files (and their `.cache`
/// siblings). Best-effort: IO errors leave stale files behind, nothing more.
fn prune(dir: &Path, keep: usize) {
    let mut sequences = scan_sequences(dir);
    sequences.sort_unstable_by(|a, b| b.cmp(a));
    for seq in sequences.into_iter().skip(keep.max(1)) {
        let _ = std::fs::remove_file(checkpoint_path_for(dir, seq));
        let _ = std::fs::remove_file(cache_path_for(dir, seq));
    }
}

/// Sequence numbers of every `ckpt-*.asc` file in `dir`, unsorted.
fn scan_sequences(dir: &Path) -> Vec<u64> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut sequences = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".asc")) else {
            continue;
        };
        if let Ok(seq) = stem.parse::<u64>() {
            sequences.push(seq);
        }
    }
    sequences
}

/// Scans `dir` newest-sequence-first and returns the first fully intact
/// checkpoint whose fingerprint matches, counting everything rejected on
/// the way. A missing directory or a directory with nothing intact returns
/// no checkpoint — a fresh run, never a wrong one.
pub fn load_newest(dir: &Path, fingerprint: u64) -> CheckpointScan {
    let mut sequences = scan_sequences(dir);
    sequences.sort_unstable_by(|a, b| b.cmp(a));
    let mut scan = CheckpointScan::default();
    for seq in sequences {
        match parse_file(&checkpoint_path_for(dir, seq), seq) {
            Some(ckpt) if ckpt.fingerprint == fingerprint => {
                scan.checkpoint = Some(ckpt);
                return scan;
            }
            // Intact but for a different config: unusable here, counted so
            // the report shows why a warm start did not happen.
            Some(_) | None => scan.rejected_files += 1,
        }
    }
    scan
}

/// Parses and fully verifies one checkpoint file. Any framing error, failed
/// checksum, duplicate or missing section, trailing garbage, or
/// sequence/filename disagreement rejects the whole file.
fn parse_file(path: &Path, expected_sequence: u64) -> Option<RunCheckpoint> {
    let mut reader = BufReader::new(File::open(path).ok()?);
    let header = codec::read_frame(&mut reader).ok()??;
    if header.kind != FrameKind::CheckpointHeader {
        return None;
    }
    let (fingerprint, sequence, occurrence, section_count) = {
        let mut r = Reader::new(&header.payload);
        let fields = (r.u64()?, r.u64()?, r.u64()?, r.u32()?);
        if !r.is_empty() {
            return None;
        }
        fields
    };
    if sequence != expected_sequence || section_count > 16 {
        return None;
    }

    let mut digest: Vec<u8> = Vec::with_capacity(8 * (1 + section_count as usize));
    digest.extend_from_slice(&fnv1a(header.payload.iter().copied()).to_le_bytes());

    let mut run: Option<Vec<u8>> = None;
    let mut state: Option<Vec<u8>> = None;
    let mut bank: Option<Vec<u8>> = None;
    let mut econ: Option<Vec<u8>> = None;
    for _ in 0..section_count {
        let frame = codec::read_frame(&mut reader).ok()??;
        if frame.kind != FrameKind::CheckpointSection {
            return None;
        }
        let mut r = Reader::new(&frame.payload);
        let id = r.take(1)?[0];
        let checksum = r.u64()?;
        let body = r.take(r.remaining())?;
        if fnv1a(body.iter().copied()) != checksum {
            return None;
        }
        digest.extend_from_slice(&checksum.to_le_bytes());
        let slot = match id {
            SECTION_RUN => &mut run,
            SECTION_STATE => &mut state,
            SECTION_BANK => &mut bank,
            SECTION_ECON => &mut econ,
            _ => return None,
        };
        if slot.replace(body.to_vec()).is_some() {
            return None;
        }
    }

    let end = codec::read_frame(&mut reader).ok()??;
    if end.kind != FrameKind::CheckpointEnd {
        return None;
    }
    let expected_end = {
        let mut r = Reader::new(&end.payload);
        let checksum = r.u64()?;
        if !r.is_empty() {
            return None;
        }
        checksum
    };
    if fnv1a(digest.iter().copied()) != expected_end {
        return None;
    }
    // The end frame must be the last thing in the file: trailing bytes mean
    // the stream is not the one that was checksummed.
    match codec::read_frame(&mut reader) {
        Ok(None) => {}
        _ => return None,
    }

    let (rip, unique_ips, converge_instructions, resume_instret, fast_forwarded) =
        decode_run_section(&run?)?;
    Some(RunCheckpoint {
        sequence,
        fingerprint,
        occurrence,
        rip,
        unique_ips,
        converge_instructions,
        resume_instret,
        fast_forwarded,
        state: state?,
        bank,
        economics: econ,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("asc-ckpt-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample(sequence: u64, fingerprint: u64) -> RunCheckpoint {
        RunCheckpoint {
            sequence,
            fingerprint,
            occurrence: 40 + sequence,
            rip: RecognizedIp {
                ip: 0x42,
                stride: 2,
                mean_superstep: 123.5,
                accuracy: 0.875,
                score: 108.0625,
            },
            unique_ips: 17,
            converge_instructions: 9_001,
            resume_instret: 123_456 + sequence,
            fast_forwarded: 77_000,
            state: (0..64u8).map(|b| b.wrapping_mul(3).wrapping_add(sequence as u8)).collect(),
            bank: Some(vec![1, 2, 3, 4, 5]),
            economics: Some(vec![9, 8, 7]),
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let dir = TempDir::new("roundtrip");
        let fp = config_fingerprint(&AscConfig::default());
        let ckpt = sample(3, fp);
        let bytes = save(&dir.0, &ckpt, 4).expect("save");
        assert!(bytes > 0);
        let scan = load_newest(&dir.0, fp);
        assert_eq!(scan.rejected_files, 0);
        assert_eq!(scan.checkpoint, Some(ckpt));

        // Optional sections stay optional through the roundtrip.
        let mut bare = sample(4, fp);
        bare.bank = None;
        bare.economics = None;
        save(&dir.0, &bare, 4).expect("save bare");
        assert_eq!(load_newest(&dir.0, fp).checkpoint, Some(bare));
    }

    #[test]
    fn pruning_keeps_only_the_newest_k_with_cache_siblings() {
        let dir = TempDir::new("prune");
        let fp = 7;
        for seq in 1..=5 {
            // A cache sibling for each, so pruning provably takes both.
            std::fs::write(cache_path_for(&dir.0, seq), b"cache").unwrap();
            save(&dir.0, &sample(seq, fp), 2).expect("save");
        }
        let mut kept = scan_sequences(&dir.0);
        kept.sort_unstable();
        assert_eq!(kept, vec![4, 5]);
        for seq in 1..=3 {
            assert!(!cache_path_for(&dir.0, seq).exists(), "cache sibling {seq} not pruned");
        }
        assert!(cache_path_for(&dir.0, 4).exists());
        assert_eq!(load_newest(&dir.0, fp).checkpoint, Some(sample(5, fp)));
    }

    #[test]
    fn any_single_byte_flip_or_truncation_falls_back_to_the_older_intact_file() {
        let dir = TempDir::new("damage");
        let fp = 11;
        save(&dir.0, &sample(1, fp), 4).expect("save older");
        save(&dir.0, &sample(2, fp), 4).expect("save newer");
        let newest = checkpoint_path_for(&dir.0, 2);
        let pristine = std::fs::read(&newest).expect("read newest");
        let older = sample(1, fp);

        for pos in 0..pristine.len() {
            let mut damaged = pristine.clone();
            damaged[pos] ^= 0x10;
            std::fs::write(&newest, &damaged).unwrap();
            let scan = load_newest(&dir.0, fp);
            // Never a wrong state: either the damage is caught and the older
            // checkpoint loads, or (impossible for a checksummed stream) the
            // flip is invisible. Both outcomes must be an exact parse.
            assert_eq!(
                scan.checkpoint.as_ref(),
                Some(&older),
                "flip at byte {pos} did not fall back cleanly"
            );
            assert_eq!(scan.rejected_files, 1, "flip at byte {pos} not counted");
        }
        for len in 0..pristine.len() {
            std::fs::write(&newest, &pristine[..len]).unwrap();
            let scan = load_newest(&dir.0, fp);
            assert_eq!(
                scan.checkpoint.as_ref(),
                Some(&older),
                "truncation to {len} bytes did not fall back cleanly"
            );
        }

        // With the older file gone too, damage means a clean cold start.
        std::fs::write(&newest, &pristine[..pristine.len() / 2]).unwrap();
        std::fs::remove_file(checkpoint_path_for(&dir.0, 1)).unwrap();
        let scan = load_newest(&dir.0, fp);
        assert_eq!(scan.checkpoint, None);
        assert_eq!(scan.rejected_files, 1);
    }

    #[test]
    fn fingerprint_mismatch_is_a_cold_start_and_fingerprints_track_semantics() {
        let dir = TempDir::new("fingerprint");
        save(&dir.0, &sample(1, 5), 4).expect("save");
        let scan = load_newest(&dir.0, 6);
        assert_eq!(scan.checkpoint, None);
        assert_eq!(scan.rejected_files, 1);

        let base = AscConfig::default();
        let mut semantic = base.clone();
        semantic.max_superstep += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&semantic));
        let mut durability = base.clone();
        durability.checkpoint.interval = 9_999;
        durability.workers = 7;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&durability));
    }

    #[test]
    fn missing_directory_reports_none_without_error() {
        let scan = load_newest(Path::new("/nonexistent/asc-ckpt-dir"), 1);
        assert_eq!(scan, CheckpointScan::default());
    }
}
