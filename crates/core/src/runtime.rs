//! The LASC runtime: the full architecture of Figure 1 wired together.
//!
//! Two entry points are provided:
//!
//! * [`LascRuntime::measure`] runs the program *unaccelerated* while the
//!   recognizer, predictors and dependency tracking observe it, producing a
//!   [`RunReport`] with a per-superstep trace (length, dependency footprint,
//!   prediction correctness). This trace is what the experiment harnesses
//!   feed to the [`cluster`](crate::cluster) cost model to obtain the paper's
//!   scaling curves, and what Tables 1 and 2 are computed from.
//!
//! * [`LascRuntime::accelerate`] runs the program *with* the trajectory
//!   cache in the loop: at every recognized-IP occurrence the main thread
//!   queries the cache and fast-forwards on a hit; on a miss it trains the
//!   predictors, asks the allocator for speculative work, executes the
//!   speculation (inline or on worker threads) and inserts the results into
//!   the cache. Program results are bit-for-bit identical to sequential
//!   execution — speculation can only ever skip work, never change it.
//!
//! # The occurrence → plan → dispatch → supervise → insert pipeline
//!
//! With [`AscConfig::workers`] > 0 and the planner enabled (the default),
//! `accelerate` runs the paper's *continuously speculating* multi-core
//! architecture for real rather than simulating it:
//!
//! 1. **Occurrence.** At recognized-IP occurrences the main thread clones
//!    its state into a bounded, drop-oldest channel and immediately goes
//!    back to executing (or fast-forwarding) — every miss is reported, but
//!    during an uninterrupted hit streak only a sparse sample is, because
//!    mid-streak the clone costs the fast-forwarding main thread more than
//!    the planner gains. It never trains predictors, plans or dispatches:
//!    speculation cadence is not its job.
//! 2. **Plan.** The [`PlannerHandle`]'s thread consumes the occurrence
//!    stream. It trains the predictor bank (the cheap incremental path most
//!    of the time), matches each occurrence against its current plan —
//!    confirming or invalidating the predicted trajectory — and keeps a
//!    rollout horizon of [`PlannerConfig::horizon`] predicted future
//!    supersteps planned at all times.
//! 3. **Dispatch.** The planner tops the persistent [`SpeculationPool`]'s
//!    queue up with undispatched, uncovered plan entries, nearest-first,
//!    after every occurrence *and* whenever worker progress (a landed cache
//!    insert, or slots freed by faulted, exhausted or deduplicated jobs)
//!    leaves the queue below its watermark — so workers stay busy even while
//!    the main thread fast-forwards through a hit streak without ever
//!    missing.
//! 4. **Speculate + Insert.** Each worker executes one superstep from its
//!    predicted start state with full per-byte dependency tracking (the
//!    paper's `g` vector) into a per-worker reusable scratch, and completed
//!    supersteps become compressed cache entries (read-set keyed start,
//!    write-set keyed end) in the sharded, thread-safe [`TrajectoryCache`];
//!    the main thread picks them up at its next occurrence and
//!    fast-forwards.
//! 5. **Supervise.** Every stage of the speculation machinery is allowed
//!    to *fail* without touching program results (see
//!    [`supervisor`](crate::supervisor)): jobs run under `catch_unwind`
//!    with an optional per-job instruction deadline, panicked workers are
//!    respawned with backoff by a monitor thread up to a restart budget,
//!    corrupted cache entries are rejected by checksum at apply time, and
//!    a dead planner is detected by the main loop, which finishes the run
//!    under miss-driven dispatch on a fresh pool. A [`CircuitBreaker`] on
//!    the main thread watches the windowed failure rate (worker panics,
//!    deadline kills, cache integrity rejects vs. normally retired jobs)
//!    and trips the run to plain inline execution while the machinery is
//!    sick, half-opening after a cooldown to probe for recovery — a sick
//!    runtime degrades toward sequential speed, never below it. The full
//!    failure model and thresholds are documented on
//!    [`BreakerConfig`](crate::config::BreakerConfig); every contained
//!    failure is counted in [`RunReport::health`].
//!
//! With the planner disabled, a worker-pool run falls back to PR 1's
//! miss-driven dispatch: the main thread itself trains the bank at every
//! cache miss and hands the expected-utility-ranked [`SpeculationTask`]s to
//! the pool, skipping re-planning while the pool is saturated. The same
//! supervision layer (deadlines, respawn, breaker, health counters) wraps
//! this mode and the `workers == 0` inline mode too.
//!
//! Determinism of *results* is scheduling-independent in every mode: an
//! entry is applied only when its entire read set matches the live state, so
//! the worst a racing, stale or dropped speculation can do is fail to save
//! work. Which supersteps are skipped (and therefore the reported cache
//! statistics) may vary between runs; `final_state` never does.
//! `workers == 0` executes the same tasks inline on the main thread, giving
//! a fully reproducible run.
//!
//! # Interpreter cost model
//!
//! The main thread's hot loop uses the TVM's monomorphized transition
//! entry points (see [`asc_tvm::exec::DepSink`]): untracked execution runs
//! with the zero-cost `NoDeps` sink and a decoded-instruction cache, so
//! retiring an instruction pays neither a dependency-tracking branch per
//! state access nor a fetch+decode of the raw 8 instruction bytes.
//! Speculative workers run the same generic code monomorphized over a real
//! `DepVector` — tracking cost is paid exactly where the architecture needs
//! the information, on the spare cores.
//!
//! On top of that tier-0 baseline, `accelerate` *tiers up* every executor
//! (see [`asc_tvm::tier`]): the recognized IP is seeded into a per-machine
//! [`BlockCache`](asc_tvm::tier::BlockCache), so the hot inter-occurrence
//! region is compiled into a block of pre-decoded, fused micro-ops and
//! replayed with a threaded dispatch loop instead of being re-dispatched
//! one instruction at a time. The main thread runs blocks with `NoDeps`,
//! workers run the *same* blocks monomorphized over `DepVector` — tier-1
//! changes the cost of an instruction, never its semantics, and
//! [`TierStats`] in the [`RunReport`] records how much execution each run
//! actually promoted. `measure` and `memoize` deliberately stay tier-0:
//! they are the measurement baseline.
//!
//! [`SpeculationTask`]: crate::allocator::SpeculationTask
//! [`SpeculationPool`]: crate::workers::SpeculationPool
//! [`TrajectoryCache`]: crate::cache::TrajectoryCache
//! [`AscConfig::workers`]: crate::config::AscConfig::workers
//! [`PlannerHandle`]: crate::planner::PlannerHandle
//! [`PlannerConfig::horizon`]: crate::config::PlannerConfig::horizon
//! [`CircuitBreaker`]: crate::supervisor::CircuitBreaker

use crate::allocator::plan_speculation;
use crate::cache::{CacheStats, LookupScratch, TrajectoryCache};
use crate::checkpoint::{self, CheckpointStats, RunCheckpoint};
use crate::config::{AscConfig, BreakerConfig, CheckpointConfig};
use crate::economics::{EconomicsStats, SpeculationEconomics};
use crate::error::AscResult;
use crate::planner::{OccurrenceEvent, PlannerHandle, PlannerOutcome, PlannerStats};
use crate::predictor_bank::PredictorBank;
use crate::recognizer::{recognize, RecognizedIp, RecognizerOutcome};
use crate::remote::{snapshot, RemoteStats, RemoteTier};
use crate::speculator::{execute_superstep_with, SpeculationScratch};
use crate::supervisor::{
    watchdog_stage, CircuitBreaker, HealthStats, Heartbeat, Supervision, Watchdog,
};
use crate::workers::{PoolStats, SpeculationJob, SpeculationPool};
use asc_learn::ensemble::EnsembleErrors;
use asc_learn::persist::Reader;
use asc_tvm::delta::SparseBytes;
use asc_tvm::machine::Machine;
use asc_tvm::program::Program;
use asc_tvm::state::StateVector;
use asc_tvm::TierStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One superstep of the measured (unaccelerated) execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperstepRecord {
    /// Index of the superstep, starting at 0 after recognizer convergence.
    pub index: usize,
    /// Instructions the superstep spans.
    pub instructions: u64,
    /// Bytes in the superstep's dependency (read) set.
    pub read_bytes: usize,
    /// Bytes in the superstep's output (write) set.
    pub write_bytes: usize,
    /// Size in bits of the sparse cache query this superstep would issue.
    pub query_bits: usize,
    /// Whether the one-step prediction made at the previous occurrence
    /// matched this superstep's start state on its read set (`None` while the
    /// predictors are still warming up).
    pub prediction_correct: Option<bool>,
}

/// Everything a run of the LASC runtime produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The recognized IP the run speculated on.
    pub rip: RecognizedIp,
    /// Unique IP values observed during recognition (Table 1).
    pub unique_ips: usize,
    /// Size of the program's state vector in bits (Table 1).
    pub state_bits: usize,
    /// Number of excitation bits the predictors modelled.
    pub excited_bits: usize,
    /// Instructions spent before speculation could begin (Table 1's
    /// "converge time").
    pub converge_instructions: u64,
    /// Total instructions the program semantically retired (executed plus
    /// fast-forwarded).
    pub total_instructions: u64,
    /// Instructions the main thread actually executed.
    pub executed_instructions: u64,
    /// Instructions skipped by fast-forwarding through cache hits.
    pub fast_forwarded_instructions: u64,
    /// Per-superstep trace (populated by [`LascRuntime::measure`]).
    pub supersteps: Vec<SuperstepRecord>,
    /// Ensemble error statistics (Table 2), when the predictors trained.
    pub ensemble_errors: Option<EnsembleErrors>,
    /// Figure-3 weight matrix: predictor names and per-bit normalised weights.
    pub weight_matrix: Option<(Vec<&'static str>, Vec<Vec<f64>>)>,
    /// Trajectory-cache statistics (populated by [`LascRuntime::accelerate`]).
    pub cache_stats: CacheStats,
    /// Speculation-pool statistics when [`AscConfig::workers`] > 0
    /// (populated by [`LascRuntime::accelerate`]).
    ///
    /// [`AscConfig::workers`]: crate::config::AscConfig::workers
    pub speculation: Option<PoolStats>,
    /// Planner statistics when the continuous-speculation planner ran
    /// (workers > 0 and [`PlannerConfig::enabled`]; populated by
    /// [`LascRuntime::accelerate`]).
    ///
    /// [`PlannerConfig::enabled`]: crate::config::PlannerConfig::enabled
    pub planner: Option<PlannerStats>,
    /// Supervision health counters — contained panics, deadline kills,
    /// restarts, circuit-breaker activity, checksum rejects and injected
    /// faults (populated by [`LascRuntime::accelerate`]; all-zero for
    /// `measure` and `memoize`, which run no speculation machinery).
    pub health: HealthStats,
    /// Dispatch-economics counters — candidates considered, dispatched and
    /// suppressed by the value model, realized hit rate and the adaptive
    /// horizon (populated by [`LascRuntime::accelerate`]; `None` for
    /// `measure` and `memoize`, which dispatch no speculation, and for a
    /// planned run whose planner died before reporting).
    pub economics: Option<EconomicsStats>,
    /// Remote-tier counters — peer hits/timeouts, rejected frames, snapshot
    /// traffic and whether the run degraded to local-only (populated by
    /// [`LascRuntime::accelerate`] when
    /// [`RemoteConfig::enabled`](crate::config::RemoteConfig::enabled);
    /// `None` otherwise and for `measure` / `memoize`).
    pub remote: Option<RemoteStats>,
    /// Checkpoint activity — saves, resume provenance and damage accounting
    /// (populated by [`LascRuntime::accelerate`] when
    /// [`CheckpointConfig::enabled`](crate::config::CheckpointConfig::enabled);
    /// `None` otherwise and for `measure` / `memoize`).
    pub checkpoints: Option<CheckpointStats>,
    /// Tier-up execution counters aggregated across every executor that
    /// retired instructions for this run: the main thread's machine, the
    /// inline-speculation scratch and all pool workers (populated by
    /// [`LascRuntime::accelerate`]; all-zero for `measure` and `memoize`,
    /// which run tier-0 only so their observations stay the baseline).
    pub tier: TierStats,
    /// The final state of the program.
    pub final_state: StateVector,
    /// Whether the program ran to completion (halted).
    pub halted: bool,
}

impl RunReport {
    /// Mean instructions per superstep (Table 1's "average jump").
    pub fn mean_superstep(&self) -> f64 {
        if self.supersteps.is_empty() {
            self.rip.mean_superstep
        } else {
            self.supersteps.iter().map(|s| s.instructions).sum::<u64>() as f64
                / self.supersteps.len() as f64
        }
    }

    /// Mean cache-query size in bits (Table 1's "cache query size").
    pub fn mean_query_bits(&self) -> f64 {
        if self.supersteps.is_empty() {
            return 0.0;
        }
        self.supersteps.iter().map(|s| s.query_bits).sum::<usize>() as f64
            / self.supersteps.len() as f64
    }

    /// Fraction of scored supersteps whose one-step prediction was correct on
    /// the read set.
    pub fn one_step_accuracy(&self) -> f64 {
        let scored: Vec<bool> =
            self.supersteps.iter().filter_map(|s| s.prediction_correct).collect();
        if scored.is_empty() {
            0.0
        } else {
            scored.iter().filter(|c| **c).count() as f64 / scored.len() as f64
        }
    }

    /// The factor by which fast-forwarding reduced the main thread's work:
    /// total retired instructions divided by instructions actually executed.
    pub fn work_scaling(&self) -> f64 {
        if self.executed_instructions == 0 {
            1.0
        } else {
            self.total_instructions as f64 / self.executed_instructions as f64
        }
    }
}

/// The main loop's breaker driver: the [`CircuitBreaker`] itself plus the
/// previous totals of the monotone success/failure counters it is fed from,
/// so each occurrence records only the delta since the last one.
///
/// Failures are worker panics and deadline kills (from the shared
/// [`HealthMonitor`](crate::supervisor::HealthMonitor)) plus cache
/// integrity rejects (checksum and collision); successes are normally
/// retired speculation jobs. All are relaxed atomics read twice per
/// occurrence — the breaker itself stays single-threaded on the main loop.
struct BreakerDriver {
    breaker: CircuitBreaker,
    successes_seen: u64,
    failures_seen: u64,
}

impl BreakerDriver {
    fn new(config: BreakerConfig) -> Self {
        BreakerDriver { breaker: CircuitBreaker::new(config), successes_seen: 0, failures_seen: 0 }
    }

    /// Per-occurrence heartbeat: advances the breaker clock (cooldown →
    /// half-open) and feeds it the success/failure deltas since the
    /// previous occurrence.
    fn on_occurrence(&mut self, supervision: &Supervision, cache: &TrajectoryCache) {
        self.breaker.tick_occurrence();
        let successes = supervision.health.jobs_ok();
        let failures = supervision.health.failure_events() + cache.integrity_failures();
        self.breaker.record(
            successes.saturating_sub(self.successes_seen),
            failures.saturating_sub(self.failures_seen),
        );
        self.successes_seen = successes;
        self.failures_seen = failures;
    }

    fn allows_speculation(&self) -> bool {
        self.breaker.allows_speculation()
    }
}

/// The run's checkpoint writer: owns sequence numbering, interval gating,
/// the per-run constants every checkpoint repeats, and the activity
/// counters reported through [`RunReport::checkpoints`].
struct CheckpointDriver {
    dir: std::path::PathBuf,
    interval: u64,
    keep: usize,
    snapshot_cache: bool,
    fingerprint: u64,
    next_sequence: u64,
    rip: RecognizedIp,
    unique_ips: usize,
    converge_instructions: u64,
    stats: CheckpointStats,
}

impl CheckpointDriver {
    /// Saves a checkpoint when `occurrence` lands on the interval (or
    /// unconditionally on `force` — the graceful-shutdown flush), bringing
    /// the trajectory cache along as a sibling snapshot. Failures are
    /// counted, never propagated: losing durability must not cost the run.
    #[allow(clippy::too_many_arguments)]
    fn tick(
        &mut self,
        occurrence: u64,
        force: bool,
        resume_instret: u64,
        fast_forwarded: u64,
        state: &StateVector,
        bank: Option<&PredictorBank>,
        economics: Option<&SpeculationEconomics>,
        cache: &TrajectoryCache,
    ) {
        if !force && occurrence % self.interval != 0 {
            return;
        }
        if force && self.stats.saves > 0 && self.stats.last_occurrence == occurrence {
            return; // The interval save this very occurrence already flushed.
        }
        let sequence = self.next_sequence;
        // The cache snapshot goes first: the checkpoint file's rename is the
        // commit point, and a checkpoint whose sibling is missing merely
        // resumes with a cold cache.
        let _ = std::fs::create_dir_all(&self.dir);
        if self.snapshot_cache {
            let _ = snapshot::save(cache, &checkpoint::cache_path_for(&self.dir, sequence));
        }
        let ckpt = RunCheckpoint {
            sequence,
            fingerprint: self.fingerprint,
            occurrence,
            rip: self.rip,
            unique_ips: self.unique_ips,
            converge_instructions: self.converge_instructions,
            resume_instret,
            fast_forwarded,
            state: state.as_bytes().to_vec(),
            bank: bank.map(|bank| {
                let mut blob = Vec::new();
                bank.save_state(&mut blob);
                blob
            }),
            economics: economics.map(|economics| {
                let mut blob = Vec::new();
                economics.save_state(&mut blob);
                blob
            }),
        };
        match checkpoint::save(&self.dir, &ckpt, self.keep) {
            Ok(bytes) => {
                self.stats.saves += 1;
                self.stats.last_occurrence = occurrence;
                self.stats.bytes_written += bytes;
                self.next_sequence += 1;
            }
            Err(_) => self.stats.save_failures += 1,
        }
    }
}

/// Crash-durability context threaded through both occurrence loops: the
/// watchdog heartbeat, the optional checkpoint writer, the cooperative
/// shutdown flag and the run-wide occurrence counter (which survives the
/// planned → miss-driven handoff and, via checkpoints, process restarts).
struct Durability {
    heartbeat: Arc<Heartbeat>,
    checkpoints: Option<CheckpointDriver>,
    shutdown: Option<Arc<AtomicBool>>,
    occurrence: u64,
    /// Fast-forward total restored from a checkpoint (0 on a fresh run).
    resume_fast_forwarded: u64,
    /// Whether the watchdog's stage-1 escalation has been applied — the
    /// breaker is force-opened once, then left to its own recovery clock.
    breaker_forced: bool,
    /// Set when the shutdown flag is observed: flush and return early.
    stop: bool,
}

impl Durability {
    fn shutdown_requested(&self) -> bool {
        self.shutdown.as_ref().is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

/// Assembles a run's health counters from their three homes: the shared
/// monitor's snapshot, the main loop's breaker, and the cache's checksum
/// rejects.
fn assemble_health(
    supervision: &Supervision,
    driver: &BreakerDriver,
    cache: &TrajectoryCache,
) -> HealthStats {
    let mut health = supervision.health.snapshot();
    driver.breaker.fill_stats(&mut health);
    health.checksum_rejects = cache.stats().checksum_rejects;
    health
}

/// Borrowed context for one miss-driven run segment: either a whole
/// planner-less run, or the tail of a planned run whose planner died.
struct MissDriven<'a> {
    machine: &'a mut Machine,
    rip: RecognizedIp,
    cache: &'a Arc<TrajectoryCache>,
    bank: &'a mut PredictorBank,
    pool: Option<SpeculationPool>,
    driver: &'a mut BreakerDriver,
    supervision: &'a Supervision,
    economics: &'a mut SpeculationEconomics,
    remote: Option<&'a RemoteTier>,
    resume_instret: u64,
    fast_forwarded: &'a mut u64,
    halted: &'a mut bool,
    dur: &'a mut Durability,
}

/// The LASC runtime.
#[derive(Debug, Clone)]
pub struct LascRuntime {
    config: AscConfig,
    shutdown: Option<Arc<AtomicBool>>,
}

impl LascRuntime {
    /// Creates a runtime with the given configuration.
    ///
    /// # Errors
    /// Returns [`AscError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: AscConfig) -> AscResult<Self> {
        config.validate()?;
        Ok(LascRuntime { config, shutdown: None })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &AscConfig {
        &self.config
    }

    /// Installs a cooperative shutdown flag for [`accelerate`]: once the
    /// flag reads `true`, the run writes a final checkpoint at the next
    /// occurrence boundary (when checkpointing is enabled) and returns
    /// early with `halted == false`. Wire a SIGTERM/SIGINT handler to the
    /// flag to get flush-before-exit behaviour; the flush is best-effort
    /// and bounded by one occurrence of latency.
    ///
    /// [`accelerate`]: LascRuntime::accelerate
    pub fn set_shutdown_flag(&mut self, flag: Arc<AtomicBool>) {
        self.shutdown = Some(flag);
    }

    /// Parks the main thread after an injected stall until the watchdog
    /// notices and escalates (bounded so a watchdog-less configuration
    /// cannot hang the run forever).
    fn stall_until_escalation(heartbeat: &Heartbeat) {
        let give_up = Instant::now() + Duration::from_secs(30);
        while heartbeat.stage() == watchdog_stage::NONE && Instant::now() < give_up {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Runs the main thread until the recognized IP has occurred `stride`
    /// more times (or the program halts / the budget runs out). Returns the
    /// instructions executed by this call.
    fn run_one_superstep(
        machine: &mut Machine,
        rip: u32,
        stride: usize,
        budget: u64,
    ) -> AscResult<(u64, bool)> {
        let mut executed = 0u64;
        for _ in 0..stride.max(1) {
            let (steps, _) = machine.run_until_ip(rip, budget.saturating_sub(executed).max(1))?;
            executed += steps;
            if machine.is_halted() || executed >= budget {
                break;
            }
        }
        Ok((executed, machine.is_halted()))
    }

    /// Measured (unaccelerated) execution with full observation; see the
    /// module documentation.
    ///
    /// # Errors
    /// Propagates recognizer and simulator errors; in particular
    /// [`AscError::NoRecognizedIp`] / [`AscError::ProgramTooShort`] when the
    /// program has nothing to speculate on.
    pub fn measure(&self, program: &Program) -> AscResult<RunReport> {
        let initial = program.initial_state()?;
        let outcome = recognize(&initial, &self.config)?;
        let rip = outcome.rip;

        let mut machine = Machine::from_state(outcome.resume_state.clone());
        let mut bank = PredictorBank::new(rip.ip, &self.config);
        let mut supersteps = Vec::new();
        let mut pending_prediction: Option<StateVector> = None;
        let mut halted = outcome.halted;
        let mut index = 0usize;

        while !halted {
            if outcome.resume_instret + machine.instret() >= self.config.instruction_budget {
                break;
            }
            machine.enable_dep_tracking();
            let (executed, now_halted) = Self::run_one_superstep(
                &mut machine,
                rip.ip,
                rip.stride,
                self.config.max_superstep,
            )?;
            halted = now_halted;
            let deps = machine.take_deps().expect("dep tracking was enabled");
            if executed == 0 {
                break;
            }
            let read_set = deps.read_set();
            let write_set = deps.write_set();
            let query = SparseBytes::capture(machine.state(), read_set.iter().copied());
            let state = machine.state().clone();

            let prediction_correct = pending_prediction.take().map(|predicted| {
                read_set.iter().all(|&byte| predicted.byte(byte) == state.byte(byte))
            });
            supersteps.push(SuperstepRecord {
                index,
                instructions: executed,
                read_bytes: read_set.len(),
                write_bytes: write_set.len(),
                query_bits: query.encoded_bits(),
                prediction_correct,
            });
            index += 1;

            if !halted {
                bank.observe(&state);
                if bank.is_ready() {
                    pending_prediction = bank.predict_next(&state).map(|p| p.state);
                }
            }
        }

        let executed_instructions = outcome.resume_instret + machine.instret();
        Ok(RunReport {
            rip,
            unique_ips: outcome.unique_ips,
            state_bits: initial.len_bits(),
            excited_bits: bank.excited_bits(),
            converge_instructions: outcome.instructions_spent,
            total_instructions: executed_instructions,
            executed_instructions,
            fast_forwarded_instructions: 0,
            supersteps,
            ensemble_errors: bank.errors(),
            weight_matrix: bank.weight_matrix(),
            cache_stats: CacheStats::default(),
            speculation: None,
            planner: None,
            health: HealthStats::default(),
            economics: None,
            remote: None,
            checkpoints: None,
            tier: TierStats::default(),
            final_state: machine.into_state(),
            halted,
        })
    }

    /// Accelerated execution: the trajectory cache, predictors, allocator,
    /// speculative execution and the supervision layer are all in the loop.
    /// With [`AscConfig::workers`](crate::config::AscConfig::workers) > 0
    /// and the planner enabled (the default), speculation cadence is owned
    /// by a dedicated planner thread that keeps the worker pool continuously
    /// topped up with predicted supersteps; with the planner disabled the
    /// pool is fed miss-driven from the main thread, and with `workers == 0`
    /// speculation executes inline, which makes the whole run — statistics
    /// included — reproducible (see the module documentation for the
    /// pipeline). Final program state is bit-for-bit identical to sequential
    /// execution in every mode, *including* runs where workers panic, jobs
    /// overrun their deadline, cache entries are corrupted in flight, the
    /// planner dies, or the circuit breaker degrades the run to plain
    /// inline execution — failures only ever cost speed.
    ///
    /// # Errors
    /// Propagates recognizer and simulator errors.
    pub fn accelerate(&self, program: &Program) -> AscResult<RunReport> {
        let initial = program.initial_state()?;
        let fingerprint = checkpoint::run_fingerprint(&self.config, &initial);
        let (outcome, restored, resume_stats) = self.resume_or_recognize(&initial, fingerprint)?;
        let rip = outcome.rip;
        let cache = Arc::new(TrajectoryCache::with_junk_threshold(
            self.config.cache_capacity,
            self.config.cache_junk_threshold,
        ));
        let mut dur = Durability {
            heartbeat: Arc::new(Heartbeat::default()),
            checkpoints: self.config.checkpoint.enabled.then(|| {
                let cfg: &CheckpointConfig = &self.config.checkpoint;
                CheckpointDriver {
                    dir: cfg.directory.clone().expect("validated: checkpointing needs a directory"),
                    interval: cfg.interval,
                    keep: cfg.keep,
                    snapshot_cache: cfg.snapshot_cache,
                    fingerprint,
                    next_sequence: restored.as_ref().map_or(1, |ckpt| ckpt.sequence + 1),
                    rip,
                    unique_ips: outcome.unique_ips,
                    converge_instructions: outcome.instructions_spent,
                    stats: resume_stats,
                }
            }),
            shutdown: self.shutdown.clone(),
            occurrence: restored.as_ref().map_or(0, |ckpt| ckpt.occurrence),
            resume_fast_forwarded: restored.as_ref().map_or(0, |ckpt| ckpt.fast_forwarded),
            breaker_forced: false,
            stop: false,
        };
        // Warm the cache from the checkpoint's sibling snapshot before any
        // speculation machinery starts; a missing or damaged sibling is a
        // cold cache, nothing worse.
        if let (Some(driver), Some(ckpt)) = (dur.checkpoints.as_mut(), restored.as_ref()) {
            if driver.snapshot_cache {
                if let Ok(load) =
                    snapshot::load(&cache, &checkpoint::cache_path_for(&driver.dir, ckpt.sequence))
                {
                    driver.stats.cache_entries_loaded = load.loaded;
                }
            }
        }
        let supervision = Supervision::from_config(&self.config);
        let watchdog = Watchdog::start(
            &self.config.watchdog,
            Arc::clone(&dur.heartbeat),
            Arc::clone(&supervision.health),
            rip.ip,
        );
        let result =
            self.accelerate_inner(&initial, &outcome, restored, cache, supervision, &mut dur);
        // The watchdog outlives the loops so a hang *anywhere* in the run is
        // caught; it joins before the report so its counters are stable.
        if let Some(watchdog) = watchdog {
            watchdog.finish();
        }
        result
    }

    /// Restores the newest intact checkpoint into a synthesized
    /// [`RecognizerOutcome`] (the recognizer already ran — its verdict was
    /// checkpointed), or runs the recognizer when there is nothing to
    /// resume. The returned stats carry the scan's damage accounting.
    fn resume_or_recognize(
        &self,
        initial: &StateVector,
        fingerprint: u64,
    ) -> AscResult<(RecognizerOutcome, Option<RunCheckpoint>, CheckpointStats)> {
        let mut stats = CheckpointStats::default();
        let cfg = &self.config.checkpoint;
        if cfg.enabled && cfg.resume {
            if let Some(dir) = &cfg.directory {
                let scan = checkpoint::load_newest(dir, fingerprint);
                stats.rejected_files = scan.rejected_files;
                if let Some(ckpt) = scan.checkpoint {
                    match StateVector::from_bytes(ckpt.state.clone()) {
                        Ok(resume_state) => {
                            stats.resumed = true;
                            stats.resume_sequence = ckpt.sequence;
                            let outcome = RecognizerOutcome {
                                rip: ckpt.rip,
                                evaluated: vec![ckpt.rip],
                                unique_ips: ckpt.unique_ips,
                                instructions_spent: ckpt.converge_instructions,
                                resume_state,
                                resume_instret: ckpt.resume_instret,
                                halted: false,
                            };
                            return Ok((outcome, Some(ckpt), stats));
                        }
                        // A state the TVM rejects cannot have been written
                        // by a healthy save; treat it as damage.
                        Err(_) => stats.rejected_files += 1,
                    }
                }
            }
        }
        Ok((recognize(initial, &self.config)?, None, stats))
    }

    /// The body of [`accelerate`](LascRuntime::accelerate) once the resume
    /// decision, cache and durability context exist: picks the planned or
    /// miss-driven pipeline and assembles the report.
    fn accelerate_inner(
        &self,
        initial: &StateVector,
        outcome: &RecognizerOutcome,
        restored: Option<RunCheckpoint>,
        cache: Arc<TrajectoryCache>,
        supervision: Supervision,
        dur: &mut Durability,
    ) -> AscResult<RunReport> {
        let rip = outcome.rip;
        // The remote tier starts before any speculation machinery so the
        // snapshot load and the peer's bulk transfer warm the cache the very
        // first occurrence can hit; its insert observer then streams
        // everything the workers land to the peer.
        let remote = RemoteTier::start(&self.config.remote, &cache, &supervision);
        let mut driver = BreakerDriver::new(self.config.breaker.clone());
        if self.config.workers > 0 && self.config.planner.enabled {
            let pool = SpeculationPool::with_supervision(
                self.config.workers,
                Arc::clone(&cache),
                supervision.clone(),
            );
            match PlannerHandle::spawn(&self.config, rip, Arc::clone(&cache), pool) {
                Ok(planner) => {
                    return self.accelerate_planned(
                        initial,
                        outcome,
                        &cache,
                        planner,
                        &supervision,
                        driver,
                        remote,
                        dur,
                    );
                }
                Err(_) => {
                    // A planner that cannot start degrades the run to
                    // miss-driven dispatch instead of aborting it. The pool
                    // travelled into the failed spawn; a fresh one is built
                    // below.
                    supervision.health.record_spawn_failures(1);
                }
            }
        }
        let pool = (self.config.workers > 0).then(|| {
            SpeculationPool::with_supervision(
                self.config.workers,
                Arc::clone(&cache),
                supervision.clone(),
            )
        });
        let mut machine = Machine::from_state(outcome.resume_state.clone());
        // Tier-up the main thread: the inter-occurrence region starting at
        // the recognized IP is hot by construction, so seed it rather than
        // waiting for the arrival counter to discover what the recognizer
        // already measured.
        machine.enable_tier(self.config.tier);
        machine.seed_hot(rip.ip);
        let mut bank = PredictorBank::new(rip.ip, &self.config);
        let mut economics = SpeculationEconomics::new(&self.config.economics);
        // The learned state rides along from the checkpoint purely as a
        // warm-up: a blob that fails to restore (or was never saved —
        // planner-mode checkpoints omit it) re-warms from scratch exactly
        // like the dead-planner degrade. Bit-identity never depends on it.
        if let Some(ckpt) = &restored {
            if let Some(blob) = &ckpt.bank {
                if bank.load_state(&mut Reader::new(blob)).is_none() {
                    bank = PredictorBank::new(rip.ip, &self.config);
                }
            }
            if let Some(blob) = &ckpt.economics {
                if economics.load_state(&mut Reader::new(blob)).is_none() {
                    economics = SpeculationEconomics::new(&self.config.economics);
                }
            }
        }
        let mut fast_forwarded = dur.resume_fast_forwarded;
        let mut halted = outcome.halted;
        let (speculation, inline_tier) = self.run_miss_driven(MissDriven {
            machine: &mut machine,
            rip,
            cache: &cache,
            bank: &mut bank,
            pool,
            driver: &mut driver,
            supervision: &supervision,
            economics: &mut economics,
            remote: remote.as_ref(),
            resume_instret: outcome.resume_instret,
            fast_forwarded: &mut fast_forwarded,
            halted: &mut halted,
            dur,
        })?;
        // The pool joined inside `run_miss_driven`, so every insert has
        // passed through the observer; the tier can now drain and snapshot.
        let remote_stats = remote.map(RemoteTier::finish);
        let executed_instructions = outcome.resume_instret + machine.instret();
        let mut tier = machine.tier_stats();
        tier.merge(&inline_tier);
        if let Some(stats) = &speculation {
            tier.merge(&stats.tier);
        }
        let mut health = assemble_health(&supervision, &driver, &cache);
        dur.heartbeat.fill_stats(&mut health);
        Ok(RunReport {
            rip,
            unique_ips: outcome.unique_ips,
            state_bits: initial.len_bits(),
            excited_bits: bank.excited_bits(),
            converge_instructions: outcome.instructions_spent,
            total_instructions: executed_instructions + fast_forwarded,
            executed_instructions,
            fast_forwarded_instructions: fast_forwarded,
            supersteps: Vec::new(),
            ensemble_errors: bank.errors(),
            weight_matrix: bank.weight_matrix(),
            cache_stats: cache.stats(),
            speculation,
            planner: None,
            health,
            economics: Some(economics.stats()),
            remote: remote_stats,
            checkpoints: dur.checkpoints.as_ref().map(|driver| driver.stats),
            tier,
            final_state: machine.into_state(),
            halted,
        })
    }

    /// The miss-driven occurrence loop shared by the planner-less modes:
    /// consult the cache, train on misses, plan and dispatch (to the pool,
    /// or inline when there is none), execute the current superstep — all
    /// under the breaker's per-occurrence watch. Runs until the program
    /// halts or the instruction budget is exhausted, then joins the pool so
    /// the reported statistics are stable, returning its final counters
    /// alongside the inline-speculation scratch's drained tier counters.
    fn run_miss_driven(&self, run: MissDriven<'_>) -> AscResult<(Option<PoolStats>, TierStats)> {
        let MissDriven {
            machine,
            rip,
            cache,
            bank,
            mut pool,
            driver,
            supervision,
            economics,
            remote,
            resume_instret,
            fast_forwarded,
            halted,
            dur,
        } = run;
        // Pool statistics survive a watchdog-ordered mid-run teardown.
        let mut torn_down: Option<PoolStats> = None;
        // Inline speculation reuses one scratch across the whole run — so
        // blocks the tier compiles for the first speculated superstep keep
        // paying off for every later one — and cache hits are cloned into a
        // reusable lookup scratch: the occurrence loop allocates nothing per
        // iteration.
        let mut scratch = SpeculationScratch::with_tier(self.config.tier);
        let mut lookup = LookupScratch::new();
        let mut superstep_estimate = rip.mean_superstep;

        while !*halted {
            if resume_instret + machine.instret() >= self.config.instruction_budget {
                break;
            }
            // The main thread is at a recognized-IP occurrence (or at the very
            // start of the post-recognition phase): count it, feed the
            // watchdog's heartbeat, and take the checkpoint/escalation
            // decisions before any speculation bookkeeping.
            dur.occurrence += 1;
            dur.heartbeat.tick();
            if supervision.abort_at(dur.occurrence) {
                // Injected crash: die as SIGABRT mid-run, exactly like a
                // kill signal, leaving whatever checkpoints already landed.
                std::process::abort();
            }
            if supervision.stall_at(dur.occurrence) {
                Self::stall_until_escalation(&dur.heartbeat);
            }
            let stage = dur.heartbeat.stage();
            if stage >= watchdog_stage::FORCE_BREAKER && !dur.breaker_forced {
                dur.breaker_forced = true;
                driver.breaker.force_open();
            }
            if stage >= watchdog_stage::TEAR_DOWN_POOL {
                if let Some(pool) = pool.take() {
                    torn_down = Some(pool.shutdown());
                }
            }
            if dur.shutdown_requested() {
                dur.stop = true;
            }
            if let Some(ckpt) = dur.checkpoints.as_mut() {
                ckpt.tick(
                    dur.occurrence,
                    dur.stop,
                    resume_instret + machine.instret(),
                    *fast_forwarded,
                    machine.state(),
                    Some(bank),
                    Some(economics),
                    cache,
                );
            }
            if dur.stop {
                break;
            }
            // Advance the breaker and consult the cache first.
            driver.on_occurrence(supervision, cache);
            if let Some(entry) = cache.lookup_with(rip.ip, machine.state(), &mut lookup) {
                machine.apply_sparse(&entry.end);
                *fast_forwarded += entry.instructions;
                economics.record_lookup(true);
                bank.observe(&machine.state().clone());
                continue;
            }
            // Local miss: one bounded peer probe before paying for the
            // superstep. A remote entry fast-forwards exactly like a local
            // hit — it passed the same `matches` + checksum guards — and was
            // read-through into the local cache inside `fetch`.
            if let Some(entry) = remote.and_then(|tier| tier.fetch(rip.ip, machine.state())) {
                machine.apply_sparse(&entry.end);
                *fast_forwarded += entry.instructions;
                economics.record_lookup(true);
                bank.observe(&machine.state().clone());
                continue;
            }

            // Miss: train on this occurrence and dispatch speculative work.
            economics.record_lookup(false);
            let state = machine.state().clone();
            bank.observe(&state);
            economics.observe_model(bank.recent_error_rate());
            // Re-planning is skipped while the pool is saturated: the
            // predictor rollout is expensive, and a saturated pool means the
            // predictions from the previous occurrence are still being
            // speculated — re-deriving (largely overlapping) ones would only
            // be deduplicated at dispatch anyway. An open breaker skips it
            // entirely: a sick runtime executes plainly, paying nothing for
            // speculation until the half-open probe.
            let pool_saturated = pool.as_ref().is_some_and(SpeculationPool::is_saturated);
            if driver.allows_speculation() && bank.is_ready() && !pool_saturated {
                // The rollout itself is priced: a rip whose predictions are
                // not landing gets a collapsed horizon, so the expensive
                // chained prediction work shrinks along with the dispatches.
                let horizon = economics.horizon(self.config.rollout_depth);
                let rollouts = bank.rollout(&state, horizon);
                let tasks = plan_speculation(
                    rollouts,
                    superstep_estimate,
                    self.config.rollout_depth,
                    cache,
                    rip.ip,
                    &mut lookup,
                    economics,
                );
                for task in tasks {
                    if let Some(pool) = pool.as_mut() {
                        // Hand the superstep to a worker; the main thread
                        // continues immediately. A full queue drops the task.
                        pool.dispatch(SpeculationJob {
                            start: task.predicted.state,
                            rip: rip.ip,
                            stride: rip.stride,
                            max_instructions: self.config.max_superstep,
                        });
                    } else {
                        self.speculate_inline(
                            &task.predicted.state,
                            rip,
                            cache,
                            supervision,
                            &mut scratch,
                        );
                    }
                }
            }

            // Execute the current superstep on the main thread.
            let (executed, now_halted) =
                Self::run_one_superstep(machine, rip.ip, rip.stride, self.config.max_superstep)?;
            *halted = now_halted;
            if executed == 0 {
                break;
            }
            superstep_estimate = 0.9 * superstep_estimate + 0.1 * executed as f64;
        }

        // Joining the pool before snapshotting makes the reported cache and
        // speculation statistics stable (all in-flight inserts land). A pool
        // the watchdog tore down mid-run already joined; its counters stand.
        Ok((pool.map(SpeculationPool::shutdown).or(torn_down), scratch.take_tier_stats()))
    }

    /// Inline (`workers == 0`) speculation of one predicted superstep under
    /// the same supervision policy the worker pool applies: the job deadline
    /// binds when it is tighter than the superstep budget, and every
    /// retirement feeds the breaker's success or failure counters.
    fn speculate_inline(
        &self,
        start: &StateVector,
        rip: RecognizedIp,
        cache: &TrajectoryCache,
        supervision: &Supervision,
        scratch: &mut SpeculationScratch,
    ) {
        let (budget, deadline_bound) = supervision.job_budget(self.config.max_superstep);
        match execute_superstep_with(start, rip.ip, rip.stride, budget, scratch) {
            Ok(result) => match result.completed() {
                Some(speculation) if speculation.reached_rip || speculation.halted => {
                    cache.insert(speculation.entry);
                    supervision.health.record_jobs_ok(1);
                }
                Some(_) if deadline_bound => supervision.health.record_deadline_kills(1),
                // Exhausting the job's own budget, or faulting from a
                // mispredicted start state, is a normal speculation outcome.
                Some(_) | None => supervision.health.record_jobs_ok(1),
            },
            Err(_) => supervision.health.record_jobs_ok(1),
        }
    }

    /// The planner-owned variant of [`accelerate`](LascRuntime::accelerate):
    /// the main thread only executes, fast-forwards, streams occurrences and
    /// drives the circuit breaker; training, planning and dispatch happen on
    /// the planner thread (see the module documentation's pipeline). A
    /// planner death mid-run (a panic — injected or real) is detected by
    /// its liveness flag, counted, and the rest of the run finishes under
    /// miss-driven dispatch on a fresh pool and predictor bank.
    #[allow(clippy::too_many_arguments)]
    fn accelerate_planned(
        &self,
        initial: &StateVector,
        outcome: &RecognizerOutcome,
        cache: &Arc<TrajectoryCache>,
        planner: PlannerHandle,
        supervision: &Supervision,
        mut driver: BreakerDriver,
        remote: Option<RemoteTier>,
        dur: &mut Durability,
    ) -> AscResult<RunReport> {
        let rip = outcome.rip;
        let mut machine = Machine::from_state(outcome.resume_state.clone());
        // Same tier-up as the miss-driven main loop: the recognized IP seeds
        // the block cache so the inter-occurrence region compiles on the
        // first arrival instead of after `hot_threshold` of them.
        machine.enable_tier(self.config.tier);
        machine.seed_hot(rip.ip);
        let mut fast_forwarded = dur.resume_fast_forwarded;
        let mut halted = outcome.halted;
        let mut planner_died = false;
        // Stage-2 watchdog escalation: the planner (and its pool) are torn
        // down and the run finishes inline via the miss-driven tail.
        let mut watchdog_teardown = false;
        // Hits are cloned into a reusable buffer: the fast-forward loop must
        // not allocate per occurrence.
        let mut lookup = LookupScratch::new();
        // Consecutive cache hits since the last miss. During an uninterrupted
        // hit streak the main thread only applies sparse deltas, so cloning
        // the full state for the planner on *every* occurrence costs more
        // than the planner gains (a flooded channel drops most of them
        // anyway) — mid-streak, only every
        // `STREAK_SEND_INTERVAL`-th occurrence is reported. Clamped to the
        // plan horizon: a sample arriving more supersteps past the previous
        // one than the horizon is deep could never match a plan entry, so
        // it would invalidate the plan on every sample.
        const STREAK_SEND_INTERVAL: u64 = 8;
        let streak_send_interval = STREAK_SEND_INTERVAL.min(self.config.planner.horizon as u64);
        let mut hit_streak = 0u64;
        // Whether the previous occurrence was reported: a send after a
        // throttled occurrence is marked non-contiguous so the planner's
        // bank does not train across the gap.
        let mut prev_sent = true;

        while !halted {
            if outcome.resume_instret + machine.instret() >= self.config.instruction_budget {
                break;
            }
            // A dead planner leaves occurrences landing in a channel nobody
            // drains: detect it here and hand the rest of the run to the
            // miss-driven fallback below.
            if !planner.is_alive() {
                planner_died = true;
                break;
            }
            // Durability preamble, mirroring the miss-driven loop: count the
            // occurrence, feed the watchdog, honour its escalations, and
            // checkpoint on the interval. Planner-mode checkpoints omit the
            // bank/economics sections — that state lives on the planner
            // thread and re-warms after resume, like the dead-planner
            // degrade.
            dur.occurrence += 1;
            dur.heartbeat.tick();
            if supervision.abort_at(dur.occurrence) {
                std::process::abort();
            }
            if supervision.stall_at(dur.occurrence) {
                Self::stall_until_escalation(&dur.heartbeat);
            }
            let stage = dur.heartbeat.stage();
            if stage >= watchdog_stage::FORCE_BREAKER && !dur.breaker_forced {
                dur.breaker_forced = true;
                driver.breaker.force_open();
            }
            if stage >= watchdog_stage::TEAR_DOWN_POOL {
                watchdog_teardown = true;
                break;
            }
            if dur.shutdown_requested() {
                dur.stop = true;
            }
            if let Some(ckpt) = dur.checkpoints.as_mut() {
                ckpt.tick(
                    dur.occurrence,
                    dur.stop,
                    outcome.resume_instret + machine.instret(),
                    fast_forwarded,
                    machine.state(),
                    None,
                    None,
                    cache,
                );
            }
            if dur.stop {
                break;
            }
            driver.on_occurrence(supervision, cache);
            let speculating = driver.allows_speculation();
            // The main thread is at a recognized-IP occurrence: report it to
            // the planner (never blocks; drop-oldest) and consult the cache.
            // An open breaker suppresses the report — a planner that hears
            // no occurrences trains nothing, re-plans nothing and tops
            // nothing up, so speculation quiesces while the machinery is
            // sick (residual queued jobs drain and stragglers are dropped
            // by the breaker).
            let sent = speculating && hit_streak % streak_send_interval == 0;
            if sent {
                planner.send(OccurrenceEvent {
                    state: machine.state().clone(),
                    contiguous: prev_sent,
                });
            }
            // An occurrence boundary is the natural preemption point: on
            // machines with fewer spare cores than threads, handing the
            // scheduler an explicit yield here is what keeps the planner and
            // workers running ahead of a fast-forwarding main thread — a
            // starved planner plans from stale states and every speculation
            // it dispatches arrives too late to matter. Unlike the state
            // clone, the yield is kept on *every* occurrence: skipping it
            // mid-streak lets the main thread outrun the workers extending
            // the cached frontier and collapses the hit rate on
            // core-constrained hosts. With the breaker open there is nobody
            // worth yielding to.
            if speculating {
                std::thread::yield_now();
            }
            if let Some(entry) = cache.lookup_with(rip.ip, machine.state(), &mut lookup) {
                machine.apply_sparse(&entry.end);
                fast_forwarded += entry.instructions;
                hit_streak += 1;
                prev_sent = sent;
                continue;
            }
            // Local miss: one bounded peer probe before the superstep (and
            // before anchoring a re-plan — a remote hit continues the streak
            // exactly like a local one).
            if let Some(entry) =
                remote.as_ref().and_then(|tier| tier.fetch(rip.ip, machine.state()))
            {
                machine.apply_sparse(&entry.end);
                fast_forwarded += entry.instructions;
                hit_streak += 1;
                prev_sent = sent;
                continue;
            }
            // A miss state is the planner's re-plan anchor: if the throttle
            // skipped it above, report it now. An open breaker leaves the
            // gap in place; the first report after it re-opens is marked
            // non-contiguous so the planner's bank never trains across it.
            if speculating && !sent {
                planner.send(OccurrenceEvent {
                    state: machine.state().clone(),
                    contiguous: prev_sent,
                });
            }
            prev_sent = speculating;
            hit_streak = 0;
            let (executed, now_halted) = Self::run_one_superstep(
                &mut machine,
                rip.ip,
                rip.stride,
                self.config.max_superstep,
            )?;
            halted = now_halted;
            if executed == 0 {
                break;
            }
        }

        if planner_died || watchdog_teardown {
            if planner_died {
                supervision.health.record_planner_panics(1);
            }
            // A panicking planner's unwind dropped it, which already shut
            // its pool down; its bank and statistics died with it. A
            // watchdog teardown shuts a *live* planner (and its pool) down
            // the same way. Either way: retrain a fresh bank and finish the
            // run miss-driven — on a fresh pool after a planner death, but
            // *inline* (no pool) after a watchdog escalation, whose whole
            // point is shedding the stalled machinery. Both degrade the
            // run, never abort it.
            let _ = planner.shutdown();
            let mut bank = PredictorBank::new(rip.ip, &self.config);
            // The dead planner's economics died with its thread; the tail
            // restarts from the optimistic prior, like the fresh bank.
            let mut economics = SpeculationEconomics::new(&self.config.economics);
            let pool = (!watchdog_teardown).then(|| {
                SpeculationPool::with_supervision(
                    self.config.workers,
                    Arc::clone(cache),
                    supervision.clone(),
                )
            });
            let (speculation, inline_tier) = self.run_miss_driven(MissDriven {
                machine: &mut machine,
                rip,
                cache,
                bank: &mut bank,
                pool,
                driver: &mut driver,
                supervision,
                economics: &mut economics,
                remote: remote.as_ref(),
                resume_instret: outcome.resume_instret,
                fast_forwarded: &mut fast_forwarded,
                halted: &mut halted,
                dur,
            })?;
            let remote_stats = remote.map(RemoteTier::finish);
            let executed_instructions = outcome.resume_instret + machine.instret();
            let mut tier = machine.tier_stats();
            tier.merge(&inline_tier);
            if let Some(stats) = &speculation {
                tier.merge(&stats.tier);
            }
            let mut health = assemble_health(supervision, &driver, cache);
            dur.heartbeat.fill_stats(&mut health);
            return Ok(RunReport {
                rip,
                unique_ips: outcome.unique_ips,
                state_bits: initial.len_bits(),
                excited_bits: bank.excited_bits(),
                converge_instructions: outcome.instructions_spent,
                total_instructions: executed_instructions + fast_forwarded,
                executed_instructions,
                fast_forwarded_instructions: fast_forwarded,
                supersteps: Vec::new(),
                ensemble_errors: bank.errors(),
                weight_matrix: bank.weight_matrix(),
                cache_stats: cache.stats(),
                speculation,
                planner: None,
                health,
                economics: Some(economics.stats()),
                remote: remote_stats,
                checkpoints: dur.checkpoints.as_ref().map(|driver| driver.stats),
                tier,
                final_state: machine.into_state(),
                halted,
            });
        }

        // Shutting the planner down drains its channel, joins the worker
        // pool (all in-flight inserts land) and returns the predictor bank,
        // so the reported statistics are stable. `None` means the planner
        // panicked between the loop's last liveness check and the join: the
        // program result is unaffected (it was computed on the main
        // thread), only the planner-side statistics died with the thread.
        let planned = planner.shutdown();
        if planned.is_none() {
            supervision.health.record_planner_panics(1);
        }
        // Planner shutdown joined the pool, so every worker insert passed
        // through the observer before the write-behind drains and the
        // shutdown snapshot is written.
        let remote_stats = remote.map(RemoteTier::finish);
        let (excited_bits, ensemble_errors, weight_matrix, speculation, planner_stats, economics) =
            match planned {
                Some(PlannerOutcome { stats, pool, bank, economics }) => (
                    bank.excited_bits(),
                    bank.errors(),
                    bank.weight_matrix(),
                    Some(pool),
                    Some(stats),
                    Some(economics),
                ),
                None => (0, None, None, None, None, None),
            };
        let executed_instructions = outcome.resume_instret + machine.instret();
        let mut tier = machine.tier_stats();
        if let Some(stats) = &speculation {
            tier.merge(&stats.tier);
        }
        let mut health = assemble_health(supervision, &driver, cache);
        dur.heartbeat.fill_stats(&mut health);
        Ok(RunReport {
            rip,
            unique_ips: outcome.unique_ips,
            state_bits: initial.len_bits(),
            excited_bits,
            converge_instructions: outcome.instructions_spent,
            total_instructions: executed_instructions + fast_forwarded,
            executed_instructions,
            fast_forwarded_instructions: fast_forwarded,
            supersteps: Vec::new(),
            ensemble_errors,
            weight_matrix,
            cache_stats: cache.stats(),
            speculation,
            planner: planner_stats,
            health,
            economics,
            remote: remote_stats,
            checkpoints: dur.checkpoints.as_ref().map(|driver| driver.stats),
            tier,
            final_state: machine.into_state(),
            halted,
        })
    }

    /// Single-core generalized memoization (Figure 6, rightmost plot): no
    /// prediction and no speculative threads — the cache is populated from the
    /// program's *own past* supersteps, and execution fast-forwards whenever
    /// the current state matches one of them on its dependency set. Returns
    /// the run report plus a time series of `(virtual instructions retired,
    /// scaling so far)` sampled at every recognized-IP occurrence, where the
    /// scaling denominator charges `query_overhead` extra instruction-
    /// equivalents per cache consultation.
    ///
    /// # Errors
    /// Propagates recognizer and simulator errors.
    pub fn memoize(
        &self,
        program: &Program,
        query_overhead: f64,
    ) -> AscResult<(RunReport, Vec<(u64, f64)>)> {
        let initial = program.initial_state()?;
        // Memoization wants *frequently recurring* states rather than
        // predictable successors, so instead of the full two-phase recognizer
        // it profiles IP occurrences and picks the most frequently observed
        // candidate (with a stride that still satisfies the minimum-superstep
        // rule). This is the "recognizer still detects frequently occurring
        // IP values" behaviour the paper describes for the laptop experiment.
        let mut profiling = Machine::from_state(initial.clone());
        let mut profiler = crate::recognizer::IpProfiler::new();
        let mut profile_halted = false;
        while profiling.instret() < self.config.explore_instructions {
            match profiling.step()? {
                asc_tvm::exec::StepOutcome::Continue => {
                    profiler.record(profiling.state().ip(), profiling.instret());
                }
                asc_tvm::exec::StepOutcome::Halted => {
                    profile_halted = true;
                    break;
                }
            }
        }
        let candidate = profiler
            .candidates(self.config.min_superstep, self.config.candidate_count, profiling.instret())
            .into_iter()
            .max_by_key(|c| c.occurrences)
            .ok_or(crate::error::AscError::NoRecognizedIp)?;
        let rip = RecognizedIp {
            ip: candidate.ip,
            stride: candidate.stride,
            mean_superstep: candidate.mean_gap * candidate.stride as f64,
            accuracy: 0.0,
            score: 0.0,
        };
        let outcome = crate::recognizer::RecognizerOutcome {
            rip,
            evaluated: vec![rip],
            unique_ips: profiler.unique_ips(),
            instructions_spent: profiling.instret(),
            resume_state: profiling.state().clone(),
            resume_instret: profiling.instret(),
            halted: profile_halted,
        };
        let cache = TrajectoryCache::with_junk_threshold(
            self.config.cache_capacity,
            self.config.cache_junk_threshold,
        );

        let mut machine = Machine::from_state(outcome.resume_state.clone());
        let mut fast_forwarded = 0u64;
        let mut overhead = 0.0f64;
        let mut halted = outcome.halted;
        let mut series = Vec::new();
        let mut lookup = LookupScratch::new();

        while !halted {
            if outcome.resume_instret + machine.instret() >= self.config.instruction_budget {
                break;
            }
            overhead += query_overhead;
            if let Some(entry) = cache.lookup_with(rip.ip, machine.state(), &mut lookup) {
                machine.apply_sparse(&entry.end);
                fast_forwarded += entry.instructions;
            } else {
                // Execute the superstep with dependency tracking and remember
                // it: the program's own past becomes the cache contents.
                let start_state = machine.state().clone();
                machine.enable_dep_tracking();
                let (executed, now_halted) = Self::run_one_superstep(
                    &mut machine,
                    rip.ip,
                    rip.stride,
                    self.config.max_superstep,
                )?;
                halted = now_halted;
                let deps = machine.take_deps().expect("dep tracking was enabled");
                if executed == 0 {
                    break;
                }
                cache.insert(crate::cache::CacheEntry::new(
                    rip.ip,
                    SparseBytes::capture(&start_state, deps.read_set()),
                    SparseBytes::capture(machine.state(), deps.write_set()),
                    executed,
                ));
            }
            let virtual_instructions = outcome.resume_instret + machine.instret() + fast_forwarded;
            let real_cost = (outcome.resume_instret + machine.instret()) as f64 + overhead;
            series.push((virtual_instructions, virtual_instructions as f64 / real_cost.max(1.0)));
        }

        let executed_instructions = outcome.resume_instret + machine.instret();
        let report = RunReport {
            rip,
            unique_ips: outcome.unique_ips,
            state_bits: initial.len_bits(),
            excited_bits: 0,
            converge_instructions: outcome.instructions_spent,
            total_instructions: executed_instructions + fast_forwarded,
            executed_instructions,
            fast_forwarded_instructions: fast_forwarded,
            supersteps: Vec::new(),
            ensemble_errors: None,
            weight_matrix: None,
            cache_stats: cache.stats(),
            speculation: None,
            planner: None,
            health: HealthStats::default(),
            economics: None,
            remote: None,
            checkpoints: None,
            tier: TierStats::default(),
            final_state: machine.into_state(),
            halted,
        };
        Ok((report, series))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::AscError;
    use asc_workloads::registry::{build, Benchmark, Scale};
    use asc_workloads::{collatz, ising};

    fn test_runtime() -> LascRuntime {
        LascRuntime::new(AscConfig::for_tests()).unwrap()
    }

    #[test]
    fn measure_collatz_produces_a_trace_and_high_accuracy() {
        let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
        let report = test_runtime().measure(&workload.program).unwrap();
        assert!(report.halted);
        assert!(workload.verify(&report.final_state), "measure must not change results");
        assert!(
            report.supersteps.len() > 20,
            "expected many supersteps, got {}",
            report.supersteps.len()
        );
        assert!(report.mean_superstep() >= 50.0);
        assert!(report.one_step_accuracy() > 0.6, "accuracy {}", report.one_step_accuracy());
        assert!(report.converge_instructions > 0);
        assert!(report.state_bits > 0);
        assert!(report.mean_query_bits() > 0.0);
        // Prediction error statistics exist and are internally consistent.
        let errors = report.ensemble_errors.unwrap();
        assert!(errors.total_predictions > 10);
        assert!(errors.hindsight_optimal_error_rate <= errors.equal_weight_error_rate + 1e-9);
    }

    #[test]
    fn measure_ising_tracks_pointer_chasing() {
        // Size the exploration window so the recognizer profiles well into the
        // list walk (the init phase alone is ~18k instructions here).
        let params = ising::IsingParams { nodes: 64, spins: 24, reps: 4, seed: 3 };
        let program = ising::program(&params).unwrap();
        let config = AscConfig { explore_instructions: 22_000, ..AscConfig::for_tests() };
        let report = LascRuntime::new(config).unwrap().measure(&program).unwrap();
        assert!(report.halted);
        assert!(report.one_step_accuracy() > 0.5, "accuracy {}", report.one_step_accuracy());
        let got = ising::read_result(&program, &report.final_state, &params).unwrap();
        assert_eq!(got, ising::reference(&params));
    }

    #[test]
    fn accelerate_collatz_is_correct_and_skips_work() {
        let params = collatz::CollatzParams { start: 2, count: 500 };
        let program = collatz::program(&params).unwrap();
        let report = test_runtime().accelerate(&program).unwrap();
        assert!(report.halted);
        let got = collatz::read_result(&program, &report.final_state).unwrap();
        assert_eq!(got, collatz::reference(&params), "speculation must not change results");
        // The cache must have produced real fast-forwarding.
        assert!(report.fast_forwarded_instructions > 0, "{report:?}");
        assert!(report.cache_stats.hits > 0);
        assert!(report.work_scaling() > 1.2, "work scaling {}", report.work_scaling());
        // The tier is on by default and the recognized IP is seeded hot, so
        // an accelerated run must retire real tier-1 work.
        assert!(report.tier.blocks_compiled > 0, "{:?}", report.tier);
        assert!(report.tier.tier1_instructions > 0, "{:?}", report.tier);
    }

    #[test]
    fn accelerate_with_tier_disabled_matches_tier_enabled_results() {
        let params = collatz::CollatzParams { start: 2, count: 300 };
        let program = collatz::program(&params).unwrap();
        let on = test_runtime().accelerate(&program).unwrap();
        let off_config =
            AscConfig { tier: asc_tvm::TierConfig::disabled(), ..AscConfig::for_tests() };
        let off = LascRuntime::new(off_config).unwrap().accelerate(&program).unwrap();
        assert_eq!(on.final_state, off.final_state, "tier must not change results");
        assert_eq!(on.total_instructions, off.total_instructions);
        assert_eq!(off.tier.blocks_compiled, 0, "{:?}", off.tier);
        assert!(on.tier.tier1_instructions > 0, "{:?}", on.tier);
    }

    #[test]
    fn accelerate_ising_is_correct_and_hits_cache() {
        let params = ising::IsingParams { nodes: 64, spins: 24, reps: 4, seed: 9 };
        let program = ising::program(&params).unwrap();
        let config = AscConfig { explore_instructions: 22_000, ..AscConfig::for_tests() };
        let report = LascRuntime::new(config).unwrap().accelerate(&program).unwrap();
        assert!(report.halted);
        let got = ising::read_result(&program, &report.final_state, &params).unwrap();
        assert_eq!(got, ising::reference(&params));
        assert!(report.cache_stats.queries > 0);
    }

    #[test]
    fn memoize_collatz_reuses_shared_subsequences_correctly() {
        // The Collatz inner loop revisits values (every sequence ends
        // …16, 8, 4, 2, 1), so with a fine-grained recognized IP single-core
        // memoization produces real fast-forwarding — Figure 6's rightmost
        // plot — without changing the program's results.
        let params = collatz::CollatzParams { start: 2, count: 400 };
        let program = collatz::pure_program(&params).unwrap();
        let config = AscConfig { min_superstep: 8, ..AscConfig::for_tests() };
        let (report, series) = LascRuntime::new(config).unwrap().memoize(&program, 2.0).unwrap();
        assert!(report.halted);
        let verified = collatz::read_pure_result(&program, &report.final_state).unwrap();
        assert_eq!(verified, params.count, "memoization must not change results");
        assert!(report.fast_forwarded_instructions > 0, "{report:?}");
        assert!(!series.is_empty());
        // Virtual progress is monotone in the series.
        for pair in series.windows(2) {
            assert!(pair[1].0 >= pair[0].0);
        }
    }

    #[test]
    fn straight_line_program_reports_a_clean_error() {
        let program = asc_asm::assemble("main:\n movi r1, 1\n halt\n").unwrap();
        let err = test_runtime().measure(&program).unwrap_err();
        assert!(matches!(err, AscError::ProgramTooShort { .. } | AscError::NoRecognizedIp));
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let config = AscConfig { rollout_depth: 0, ..AscConfig::default() };
        assert!(LascRuntime::new(config).is_err());
    }

    #[test]
    fn interrupted_accelerate_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("asc-resume-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = collatz::CollatzParams { start: 2, count: 500 };
        let program = collatz::program(&params).unwrap();
        let reference = test_runtime().accelerate(&program).unwrap();
        assert!(reference.halted);

        // First leg: checkpoint every 8 occurrences, cut the run short by
        // budget well before completion.
        let mut config = AscConfig::for_tests();
        config.checkpoint.enabled = true;
        config.checkpoint.directory = Some(dir.clone());
        config.checkpoint.interval = 8;
        config.checkpoint.keep = 2;
        config.checkpoint.resume = true;
        // The budget gates *executed* instructions (fast-forwards are free),
        // so cut the post-recognizer execution in half.
        let converge = reference.converge_instructions;
        config.instruction_budget =
            converge + (reference.executed_instructions.saturating_sub(converge)) / 2;
        let first = LascRuntime::new(config.clone()).unwrap().accelerate(&program).unwrap();
        assert!(!first.halted, "the truncated leg must stop early");
        let first_ckpt = first.checkpoints.expect("checkpointing was on");
        assert!(first_ckpt.saves > 0, "{first_ckpt:?}");
        assert!(!first_ckpt.resumed);

        // Second leg: full budget, resumes from the newest checkpoint and
        // must finish in the exact state of the uninterrupted run.
        config.instruction_budget = AscConfig::for_tests().instruction_budget;
        let second = LascRuntime::new(config).unwrap().accelerate(&program).unwrap();
        assert!(second.halted);
        let second_ckpt = second.checkpoints.expect("checkpointing was on");
        assert!(second_ckpt.resumed, "{second_ckpt:?}");
        assert_eq!(second_ckpt.rejected_files, 0, "{second_ckpt:?}");
        assert_eq!(second.final_state, reference.final_state);
        assert_eq!(second.total_instructions, reference.total_instructions);
        let got = collatz::read_result(&program, &second.final_state).unwrap();
        assert_eq!(got, collatz::reference(&params));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_flag_flushes_a_final_checkpoint_and_stops_the_run() {
        let dir = std::env::temp_dir().join(format!("asc-shutdown-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = collatz::CollatzParams { start: 2, count: 500 };
        let program = collatz::program(&params).unwrap();
        let mut config = AscConfig::for_tests();
        config.checkpoint.enabled = true;
        config.checkpoint.directory = Some(dir.clone());
        config.checkpoint.resume = true;
        // An interval far beyond the run: the only save can be the flush.
        config.checkpoint.interval = u64::MAX;
        let mut runtime = LascRuntime::new(config.clone()).unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        runtime.set_shutdown_flag(Arc::clone(&flag));
        let report = runtime.accelerate(&program).unwrap();
        assert!(!report.halted, "a pre-set flag must stop the run at the first occurrence");
        let stats = report.checkpoints.expect("checkpointing was on");
        assert_eq!(stats.saves, 1, "{stats:?}");

        // The flushed checkpoint is a valid resume point: clearing the flag
        // and rerunning completes the program from it.
        flag.store(false, Ordering::Relaxed);
        let resumed = runtime.accelerate(&program).unwrap();
        assert!(resumed.halted);
        assert!(resumed.checkpoints.unwrap().resumed);
        let got = collatz::read_result(&program, &resumed.final_state).unwrap();
        assert_eq!(got, collatz::reference(&params));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
