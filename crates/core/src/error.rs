//! Error types for the ASC runtime.
//!
//! Deliberately *not* here: speculation-machinery failures. A worker panic,
//! a deadline-killed job, a failed thread spawn, a corrupted cache entry or
//! a dead planner never surface as an [`AscError`] — the supervision layer
//! ([`supervisor`](crate::supervisor)) contains them, the run degrades
//! (fewer workers, miss-driven dispatch, or breaker-forced inline
//! execution) and the evidence lands in
//! [`RunReport::health`](crate::runtime::RunReport::health). An `AscError`
//! means the *main* execution cannot proceed: the program itself faulted,
//! the configuration is inconsistent, or there is nothing to speculate on.

use asc_tvm::error::VmError;
use std::fmt;

/// Errors produced by the ASC runtime and its components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AscError {
    /// The underlying simulator reported an error while executing the program.
    Vm(VmError),
    /// The configuration is inconsistent (limits of zero, contradictory modes, …).
    InvalidConfig(String),
    /// The recognizer could not find any instruction pointer worth speculating
    /// on within its exploration budget.
    NoRecognizedIp,
    /// The program halted before the runtime finished its exploration phase,
    /// so there is nothing to speculate on (the run is still correct).
    ProgramTooShort {
        /// Instructions the program retired before halting.
        executed: u64,
    },
}

impl fmt::Display for AscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AscError::Vm(e) => write!(f, "simulator error: {e}"),
            AscError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            AscError::NoRecognizedIp => {
                write!(f, "no predictable instruction pointer found within the exploration budget")
            }
            AscError::ProgramTooShort { executed } => {
                write!(
                    f,
                    "program halted after only {executed} instructions, before speculation began"
                )
            }
        }
    }
}

impl std::error::Error for AscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AscError::Vm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VmError> for AscError {
    fn from(e: VmError) -> Self {
        AscError::Vm(e)
    }
}

/// Convenience alias for runtime results.
pub type AscResult<T> = Result<T, AscError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = AscError::from(VmError::DivideByZero { addr: 8 });
        assert!(err.to_string().contains("division"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(AscError::NoRecognizedIp.to_string().contains("instruction pointer"));
    }
}
