//! The speculation value model: per-rip dispatch economics.
//!
//! The paper frames automatically scalable computation as a *resource
//! allocation* problem — spare cores are capital, and every speculative
//! execution is an investment that pays off only when the main thread later
//! fast-forwards through the entry it produced. PR 5's cache work made a
//! losing investment cheap to *look up*; this module makes the runtime stop
//! *placing* losing investments at all.
//!
//! # The value model
//!
//! For every candidate speculation the runtime asks one question: does the
//! expected benefit beat the cost?
//!
//! ```text
//! dispatch  ⇔  P(hit) × E[superstep length]  ≥  threshold × overhead × E[superstep length]
//!           ⇔  P(hit)  ≥  threshold × overhead
//! ```
//!
//! * **Benefit** is the instructions the main thread would skip if the entry
//!   lands and is used: one superstep (the live EMA estimate), weighted by
//!   the probability the prediction is right *and* the main thread actually
//!   reaches it.
//! * **Cost** is the instructions a core burns executing the rollout — the
//!   same superstep length again, times an `overhead` factor for dependency
//!   tracking and insert bookkeeping.
//!
//! `P(hit)` is where the learning lives, and neither signal alone is
//! trustworthy. The model's own confidence (the rollout's cumulative Eq. 2
//! probability) is *systematically pessimistic* about hits: it is a joint
//! probability over every excited bit, but an entry fast-forwards when its
//! **read set** matches — a prediction wrong on write-only bits still
//! lands. The same goes for the windowed whole-state accuracy from
//! [`EnsembleErrors::recent_error_rate`], which supplies a per-step floor
//! under the joint probability. The *realized* hit-rate EMA — what fraction
//! of this rip's lookups actually fast-forwarded — is the direct evidence,
//! so it bounds the estimate from **both** sides: it floors a pessimistic
//! model (speculation that demonstrably lands keeps dispatching no matter
//! what the joint probability says) and caps a confident one (on chaotic
//! workloads the ensemble is confidently wrong in ways its probabilities
//! never admit):
//!
//! ```text
//! P(hit) = min( max(exp(Σ log p), accuracy_recentᵈᵉᵖᵗʰ, realized),  slack × realized )
//! ```
//!
//! # Adaptive horizon
//!
//! The same signals bound how deep rollouts are worth computing at all. A
//! depth-`k` candidate is worth predicting only while `per_stepᵏ × cap`
//! clears the dispatch threshold — with `per_step = max(accuracy_recent,
//! realized)`, for the same read-set-versus-whole-state reason as above —
//! so the horizon is the largest such `k`, clamped to the configured
//! `[min_horizon, max_horizon]` band (and never beyond the caller's legacy
//! depth). A chaotic rip collapses to depth-1 rollouts — the predictor-bank
//! rollout itself was a large share of the logistic-map miss cost — while a
//! rip whose speculation keeps landing keeps the full depth.
//!
//! # Suppression is never a correctness event
//!
//! Gating decides only which speculations *run*. A suppressed dispatch means
//! a cache entry is never produced, which means the main thread executes
//! that superstep itself — the exact behaviour of a cache miss, which every
//! mode already handles on every occurrence. The determinism argument is
//! unchanged: entries are applied only on a full read-set match, so the
//! worst any gating decision can do is fail to save work.
//!
//! Suppression is also deliberately *leaky*: after `probe_interval`
//! consecutive suppressions the next candidate is dispatched anyway, and any
//! realized hit snaps the EMA back to the optimistic prior
//! ([`EconomicsConfig::optimism`]). A rip written off by a junk-saturated
//! history therefore re-admits itself the moment speculation starts landing
//! again — the model can only throttle, never permanently blacklist.
//!
//! [`EnsembleErrors::recent_error_rate`]: asc_learn::ensemble::EnsembleErrors::recent_error_rate

use crate::config::EconomicsConfig;
use asc_learn::persist::{self, Reader};

/// Running counters of the value model's decisions, reported per run in
/// [`RunReport::economics`](crate::runtime::RunReport::economics).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EconomicsStats {
    /// Candidate speculations evaluated against the value model.
    pub considered: u64,
    /// Candidates that cleared the value test and were dispatched.
    pub dispatched: u64,
    /// Candidates refused because expected benefit did not cover cost.
    pub suppressed: u64,
    /// Suppression-regime probe dispatches (the leak that re-admits a rip).
    pub probes: u64,
    /// Lookup outcomes folded into the realized-rate EMA.
    pub lookups: u64,
    /// How many of those outcomes were hits.
    pub hits: u64,
    /// Σ `P(hit) × superstep` over dispatched candidates, in instruction
    /// equivalents: the value the model believed it was buying.
    pub expected_value: f64,
    /// Σ `overhead × superstep` over suppressed candidates: the estimated
    /// instruction-equivalents of futile speculation *not* executed.
    pub suppressed_cost: f64,
    /// The realized hit-rate EMA at the end of the run.
    pub realized_hit_rate: f64,
    /// The adaptive rollout horizon most recently computed.
    pub last_horizon: usize,
}

impl EconomicsStats {
    /// Realized hit rate over the raw counted outcomes (not the EMA).
    pub fn counted_hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Per-rip dispatch economics: the realized hit-rate EMA, the model-accuracy
/// signal, and the decision procedure over both. Single-threaded by design —
/// each dispatch site (the miss-driven main loop, or the planner thread)
/// owns one instance, so inline runs stay bit-reproducible, statistics
/// included.
#[derive(Debug, Clone)]
pub struct SpeculationEconomics {
    enabled: bool,
    /// Per-outcome EMA step, derived from the configured half-life.
    alpha: f64,
    optimism: f64,
    threshold: f64,
    overhead: f64,
    slack: f64,
    min_horizon: usize,
    max_horizon: usize,
    probe_interval: u64,
    /// EMA of lookup outcomes (1 = hit), the evidence side of calibration.
    realized: f64,
    /// Windowed whole-state accuracy of the ensemble (1 − recent error
    /// rate), the model side. Starts at the optimistic prior.
    step_accuracy: f64,
    /// Totals last seen by [`observe_cache_totals`], for delta feeding.
    ///
    /// [`observe_cache_totals`]: SpeculationEconomics::observe_cache_totals
    queries_seen: u64,
    hits_seen: u64,
    /// Value-test refusals since the last dispatch (probe trigger).
    suppressed_streak: u64,
    stats: EconomicsStats,
}

impl SpeculationEconomics {
    /// Builds the model from its configuration. A disabled configuration
    /// still counts dispatches (every candidate passes), so reports stay
    /// comparable across gated and ungated runs.
    pub fn new(config: &EconomicsConfig) -> Self {
        // Half-life h ⇒ per-outcome retention (1 − α) with (1 − α)^h = ½.
        let alpha = 1.0 - 0.5f64.powf(1.0 / config.half_life.max(1.0));
        SpeculationEconomics {
            enabled: config.enabled,
            alpha,
            optimism: config.optimism,
            threshold: config.dispatch_threshold,
            overhead: config.speculation_overhead,
            slack: config.calibration_slack,
            min_horizon: config.min_horizon,
            max_horizon: config.max_horizon,
            probe_interval: config.probe_interval,
            realized: config.optimism,
            step_accuracy: config.optimism.max(0.5),
            queries_seen: 0,
            hits_seen: 0,
            suppressed_streak: 0,
            stats: EconomicsStats::default(),
        }
    }

    /// Folds one realized lookup outcome into the hit-rate EMA. A hit also
    /// *re-admits* the rip: the EMA snaps up to at least the optimistic
    /// prior and the suppression streak resets, so one landed speculation is
    /// enough to resume dispatching after a junk-saturated history.
    pub fn record_lookup(&mut self, hit: bool) {
        self.stats.lookups += 1;
        if hit {
            self.stats.hits += 1;
            self.realized = (self.realized + self.alpha * (1.0 - self.realized)).max(self.optimism);
            self.suppressed_streak = 0;
        } else {
            self.realized *= 1.0 - self.alpha;
        }
        self.stats.realized_hit_rate = self.realized;
    }

    /// Delta-feeds the EMA from the cache's monotone `queries`/`hits`
    /// totals — the planner's path, which observes lookups only through the
    /// shared cache statistics. Misses are folded before hits (closed form,
    /// O(1) in the delta sizes); ordering within one polling interval is
    /// unknowable anyway and only shifts the EMA by O(α²).
    pub fn observe_cache_totals(&mut self, queries: u64, hits: u64) {
        let hit_delta = hits.saturating_sub(self.hits_seen);
        let miss_delta = queries.saturating_sub(self.queries_seen).saturating_sub(hit_delta);
        self.queries_seen = queries;
        self.hits_seen = hits;
        self.stats.lookups += hit_delta + miss_delta;
        self.stats.hits += hit_delta;
        if miss_delta > 0 {
            self.realized *= (1.0 - self.alpha).powi(miss_delta.min(1 << 30) as i32);
        }
        if hit_delta > 0 {
            // First hit takes the re-admission snap, exactly as
            // `record_lookup` would; once at or above the prior the EMA only
            // grows, so the remaining hits fold in closed form.
            self.realized = (self.realized + self.alpha * (1.0 - self.realized)).max(self.optimism);
            let keep = (1.0 - self.alpha).powi((hit_delta - 1).min(1 << 30) as i32);
            self.realized = 1.0 - (1.0 - self.realized) * keep;
            self.suppressed_streak = 0;
        }
        self.stats.realized_hit_rate = self.realized;
    }

    /// Updates the model-accuracy signal from the ensemble's windowed
    /// whole-state error rate (`None` while the bank is warming up leaves
    /// the optimistic prior in place). O(1); safe on the per-miss hot path.
    pub fn observe_model(&mut self, recent_error_rate: Option<f64>) {
        if let Some(rate) = recent_error_rate {
            self.step_accuracy = (1.0 - rate).clamp(0.01, 1.0);
        }
    }

    /// Calibration cap on any candidate's believed probability: evidence of
    /// realized hits, with configured slack for optimism while evidence is
    /// thin.
    fn cap(&self) -> f64 {
        (self.realized * self.slack).clamp(1e-6, 1.0)
    }

    /// Outcomes to observe before the adaptive horizon trusts the EMA: one
    /// half-life, the point where evidence outweighs the prior.
    fn warmup_lookups(&self) -> u64 {
        (0.5f64.ln() / (1.0 - self.alpha).ln()).ceil() as u64
    }

    /// The per-rip rollout horizon: the deepest `k` for which a depth-`k`
    /// candidate could still clear the value test, clamped to the configured
    /// band and never beyond `fallback` (the mode's legacy global depth).
    /// Disabled economics return `fallback` unchanged.
    pub fn horizon(&mut self, fallback: usize) -> usize {
        // Until one half-life of outcomes has been observed the EMA is
        // mostly prior; shortening rollouts on a prior would cost the very
        // early hits that teach the model the rip is worth speculating on,
        // so the warm-up keeps the legacy depth.
        if !self.enabled || self.stats.lookups < self.warmup_lookups() {
            self.stats.last_horizon = fallback;
            return fallback;
        }
        let ceiling = self.max_horizon.min(fallback).max(1);
        let floor = self.min_horizon.min(ceiling).max(1);
        // Largest k with per_stepᵏ × cap ≥ threshold × overhead, where
        // per-step survival is the better of the model's whole-state
        // accuracy and the realized (read-set) hit evidence.
        let needed = (self.threshold * self.overhead).max(1e-12);
        let per_step = self.step_accuracy.max(self.realized).clamp(0.01, 0.9999);
        let budget = (needed / self.cap()).min(1.0);
        let depth = if budget >= 1.0 {
            // Even depth 1 cannot clear the bar; the floor still applies so
            // probe dispatches have something to roll out.
            floor
        } else {
            (budget.ln() / per_step.ln()).floor() as usize
        };
        let horizon = depth.clamp(floor, ceiling);
        self.stats.last_horizon = horizon;
        horizon
    }

    /// The dispatch decision for one candidate: `true` to run it. Updates
    /// the decision counters and the probe streak.
    ///
    /// * `log_probability` — the candidate's cumulative rollout
    ///   log-probability (Eq. 2 along the chain).
    /// * `depth` — supersteps ahead of the conditioning state.
    /// * `superstep_estimate` — live EMA of instructions per superstep.
    pub fn evaluate(&mut self, log_probability: f64, depth: usize, superstep: f64) -> bool {
        self.stats.considered += 1;
        if !self.enabled {
            self.stats.dispatched += 1;
            return true;
        }
        let superstep = superstep.max(1.0);
        // Model probability with the per-step accuracy floor; realized
        // evidence then bounds it from both sides (floor: landing
        // speculation keeps dispatching however pessimistic the joint
        // probability is; cap: a junk history throttles however confident
        // the model is).
        let modeled = log_probability.exp().max(self.step_accuracy.powi(depth.max(1) as i32));
        let p_hit = modeled.max(self.realized).min(self.cap());
        if p_hit >= self.threshold * self.overhead {
            self.stats.dispatched += 1;
            self.stats.expected_value += p_hit * superstep;
            self.suppressed_streak = 0;
            return true;
        }
        self.suppressed_streak += 1;
        if self.suppressed_streak >= self.probe_interval {
            // The leak: dispatch anyway so a rip whose behaviour changed can
            // produce the hit that re-admits it.
            self.suppressed_streak = 0;
            self.stats.probes += 1;
            self.stats.dispatched += 1;
            self.stats.expected_value += p_hit * superstep;
            return true;
        }
        self.stats.suppressed += 1;
        self.stats.suppressed_cost += self.overhead * superstep;
        false
    }

    /// Whether gating is active (a disabled model passes every candidate).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends the learned dispatch state — the EMAs, delta-feed cursors,
    /// probe streak and decision counters — to `out` for checkpointing.
    /// Floats are written as raw IEEE-754 bits so a restore is bit-exact.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_f64(out, self.realized);
        persist::put_f64(out, self.step_accuracy);
        persist::put_u64(out, self.queries_seen);
        persist::put_u64(out, self.hits_seen);
        persist::put_u64(out, self.suppressed_streak);
        persist::put_u64(out, self.stats.considered);
        persist::put_u64(out, self.stats.dispatched);
        persist::put_u64(out, self.stats.suppressed);
        persist::put_u64(out, self.stats.probes);
        persist::put_u64(out, self.stats.lookups);
        persist::put_u64(out, self.stats.hits);
        persist::put_f64(out, self.stats.expected_value);
        persist::put_f64(out, self.stats.suppressed_cost);
        persist::put_f64(out, self.stats.realized_hit_rate);
        persist::put_usize(out, self.stats.last_horizon);
    }

    /// Restores state written by
    /// [`save_state`](SpeculationEconomics::save_state) into a model built
    /// from the same configuration. Returns `None` on truncated bytes; the
    /// caller then keeps the freshly constructed model (configuration priors
    /// are not serialized, so no shape validation is needed beyond length).
    pub fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        let realized = reader.f64()?;
        let step_accuracy = reader.f64()?;
        let queries_seen = reader.u64()?;
        let hits_seen = reader.u64()?;
        let suppressed_streak = reader.u64()?;
        let stats = EconomicsStats {
            considered: reader.u64()?,
            dispatched: reader.u64()?,
            suppressed: reader.u64()?,
            probes: reader.u64()?,
            lookups: reader.u64()?,
            hits: reader.u64()?,
            expected_value: reader.f64()?,
            suppressed_cost: reader.f64()?,
            realized_hit_rate: reader.f64()?,
            last_horizon: reader.usize()?,
        };
        self.realized = realized;
        self.step_accuracy = step_accuracy;
        self.queries_seen = queries_seen;
        self.hits_seen = hits_seen;
        self.suppressed_streak = suppressed_streak;
        self.stats = stats;
        Some(())
    }

    /// Snapshot of the decision counters.
    pub fn stats(&self) -> EconomicsStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> EconomicsConfig {
        EconomicsConfig::default()
    }

    #[test]
    fn optimistic_prior_dispatches_before_evidence() {
        let mut econ = SpeculationEconomics::new(&config());
        // A fresh rip with a confident model: everything runs.
        for depth in 1..=4 {
            assert!(econ.evaluate(-0.01 * depth as f64, depth, 500.0));
        }
        assert_eq!(econ.stats().dispatched, 4);
        assert_eq!(econ.stats().suppressed, 0);
    }

    #[test]
    fn saturated_junk_history_is_suppressed_and_readmitted_after_a_hit() {
        let mut econ = SpeculationEconomics::new(&config());
        // A long all-miss history: every speculation this rip ever produced
        // was junk. The EMA decays far below the dispatch bar.
        for _ in 0..1_000 {
            econ.record_lookup(false);
        }
        assert!(econ.stats().realized_hit_rate < 1e-3);
        // Even a maximally confident prediction is refused now.
        assert!(!econ.evaluate(0.0, 1, 500.0), "junk-saturated rip must be suppressed");
        assert_eq!(econ.stats().suppressed, 1);
        assert!(econ.stats().suppressed_cost > 0.0);

        // One realized hit re-admits the rip: the EMA snaps back to the
        // optimistic prior and the same candidate dispatches again.
        econ.record_lookup(true);
        assert!(econ.evaluate(0.0, 1, 500.0), "a hit must re-admit the rip");
        assert_eq!(econ.stats().dispatched, 1);
    }

    #[test]
    fn probe_leak_dispatches_after_enough_suppressions() {
        let cfg = EconomicsConfig { probe_interval: 5, ..config() };
        let mut econ = SpeculationEconomics::new(&cfg);
        for _ in 0..1_000 {
            econ.record_lookup(false);
        }
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            outcomes.push(econ.evaluate(0.0, 1, 500.0));
        }
        // Exactly every 5th decision leaks through as a probe.
        assert_eq!(
            outcomes,
            vec![false, false, false, false, true, false, false, false, false, true]
        );
        assert_eq!(econ.stats().probes, 2);
    }

    #[test]
    fn horizon_collapses_for_a_chaotic_rip_and_stays_deep_for_a_learnable_one() {
        let mut econ = SpeculationEconomics::new(&config());
        // Locked-on model, healthy hit history: full depth.
        econ.observe_model(Some(0.02));
        for _ in 0..64 {
            econ.record_lookup(true);
        }
        assert_eq!(econ.horizon(32), 32);

        // Chaotic model, junk history: the horizon collapses to the floor.
        econ.observe_model(Some(0.9));
        for _ in 0..1_000 {
            econ.record_lookup(false);
        }
        assert_eq!(econ.horizon(32), config().min_horizon);
        // The caller's legacy depth stays an upper bound.
        for _ in 0..64 {
            econ.record_lookup(true);
        }
        econ.observe_model(Some(0.02));
        assert_eq!(econ.horizon(4), 4);
    }

    #[test]
    fn disabled_economics_pass_everything_at_the_fallback_horizon() {
        let cfg = EconomicsConfig { enabled: false, ..config() };
        let mut econ = SpeculationEconomics::new(&cfg);
        for _ in 0..1_000 {
            econ.record_lookup(false);
        }
        assert!(econ.evaluate(-50.0, 32, 1.0), "disabled gating must pass everything");
        assert_eq!(econ.horizon(17), 17);
        assert_eq!(econ.stats().suppressed, 0);
    }

    #[test]
    fn cache_totals_feed_the_ema_like_individual_outcomes() {
        let mut by_outcome = SpeculationEconomics::new(&config());
        let mut by_totals = SpeculationEconomics::new(&config());
        // 10 misses then 3 hits, fed both ways.
        for _ in 0..10 {
            by_outcome.record_lookup(false);
        }
        for _ in 0..3 {
            by_outcome.record_lookup(true);
        }
        by_totals.observe_cache_totals(10, 0);
        by_totals.observe_cache_totals(13, 3);
        assert_eq!(by_outcome.stats().lookups, by_totals.stats().lookups);
        assert_eq!(by_outcome.stats().hits, by_totals.stats().hits);
        // Same closed-form EMA up to floating-point association.
        assert!(
            (by_outcome.stats().realized_hit_rate - by_totals.stats().realized_hit_rate).abs()
                < 1e-9
        );
    }

    #[test]
    fn save_load_roundtrip_preserves_decisions() {
        let mut trained = SpeculationEconomics::new(&config());
        trained.observe_model(Some(0.3));
        for i in 0..40 {
            trained.record_lookup(i % 3 == 0);
            trained.evaluate(-0.5, 2, 400.0);
        }
        let mut bytes = Vec::new();
        trained.save_state(&mut bytes);

        let mut restored = SpeculationEconomics::new(&config());
        restored
            .load_state(&mut asc_learn::persist::Reader::new(&bytes))
            .expect("roundtrip must restore");
        assert_eq!(restored.stats(), trained.stats());
        // Both copies keep making identical decisions.
        for i in 0..20 {
            trained.record_lookup(i % 5 == 0);
            restored.record_lookup(i % 5 == 0);
            assert_eq!(trained.evaluate(-1.0, 3, 250.0), restored.evaluate(-1.0, 3, 250.0));
            assert_eq!(trained.horizon(16), restored.horizon(16));
        }
        assert_eq!(restored.stats(), trained.stats());

        // Truncation anywhere must fail cleanly.
        for cut in 0..bytes.len() {
            let mut fresh = SpeculationEconomics::new(&config());
            assert!(fresh
                .load_state(&mut asc_learn::persist::Reader::new(&bytes[..cut]))
                .is_none());
        }
    }

    #[test]
    fn expected_value_accounts_dispatched_benefit() {
        let mut econ = SpeculationEconomics::new(&config());
        assert!(econ.evaluate(0.0, 1, 1_000.0));
        let stats = econ.stats();
        // P(hit) is capped by slack × realized prior, never above 1.
        assert!(stats.expected_value > 0.0 && stats.expected_value <= 1_000.0);
        assert_eq!(stats.counted_hit_rate(), 0.0);
    }
}
