//! Platform profiles and the cluster cost model used for the scaling figures.
//!
//! The paper evaluates LASC on a 32-core x86 server, an IBM Blue Gene/P and a
//! single-core laptop, and reports *relative scaling*: single-threaded wall
//! clock divided by parallel wall clock of the same (slow) functional
//! simulator. This module reproduces those curves from a per-superstep trace
//! recorded by [`LascRuntime::measure`](crate::runtime::LascRuntime::measure):
//! it replays the trace against a model of `P` cores in which
//!
//! * the recognizer's convergence prefix is sequential,
//! * each dispatch round assigns worker rank `k` the superstep `k` ahead of
//!   the main thread; the worker first pays the recursive-prediction latency
//!   (linear in `k`, §5.3) and then executes the superstep,
//! * a worker's entry is usable only if the chained one-step predictions to
//!   its depth were correct (taken from the trace) and the worker finished
//!   before the main thread arrived,
//! * the main thread pays a cache-query cost (a log₂ P max-reduction plus a
//!   point-to-point transfer) at every superstep boundary and fast-forwards
//!   on a hit, otherwise executes the superstep itself.
//!
//! The same trace replayed with different cost parameters yields the paper's
//! line families: *cycle-count* scaling (free lookups), *oracle* scaling
//! (every prediction correct), and plain *LASC* scaling.

use crate::runtime::RunReport;

/// Costs, in instruction-equivalent cycles, of one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformProfile {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Largest core count the platform supports.
    pub max_cores: usize,
    /// Fixed cost of issuing a cache query (serialisation, local lookup).
    pub query_base_cost: f64,
    /// Additional query cost per reduction hop (× log₂ P).
    pub query_hop_cost: f64,
    /// Cost of the point-to-point transfer of the winning end state.
    pub p2p_cost: f64,
    /// Recursive-prediction latency per rollout step for a worker of rank k
    /// (the paper's ~10³·k µs, expressed in cycles of this platform).
    pub rollout_cost_per_step: f64,
}

impl PlatformProfile {
    /// The paper's 32-core x86 server.
    pub fn server_32core() -> Self {
        PlatformProfile {
            name: "32-core server",
            max_cores: 32,
            query_base_cost: 10.0,
            query_hop_cost: 2.0,
            p2p_cost: 10.0,
            rollout_cost_per_step: 4.0,
        }
    }

    /// The paper's Blue Gene/P partition (ASIC-accelerated reductions, slower
    /// cores, vastly more of them).
    pub fn blue_gene_p() -> Self {
        PlatformProfile {
            name: "Blue Gene/P",
            max_cores: 16_384,
            query_base_cost: 10.0,
            query_hop_cost: 1.0,
            p2p_cost: 10.0,
            rollout_cost_per_step: 8.0,
        }
    }

    /// The single-core laptop (only memoization is possible).
    pub fn laptop() -> Self {
        PlatformProfile {
            name: "1-core laptop",
            max_cores: 1,
            query_base_cost: 20.0,
            query_hop_cost: 0.0,
            p2p_cost: 0.0,
            rollout_cost_per_step: 25.0,
        }
    }
}

/// Which idealisations to apply when replaying the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// The full LASC model: real predictions, real costs.
    Lasc,
    /// "Cycle count" scaling: infinitely fast cache lookups (§5.4).
    CycleCount,
    /// Oracle scaling: every prediction correct, costs unchanged (§5.4).
    Oracle,
}

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of cores.
    pub cores: usize,
    /// Relative scaling (sequential time / parallel time).
    pub scaling: f64,
    /// Fraction of supersteps served from the cache.
    pub hit_rate: f64,
}

/// Replays a measured trace against the platform model for one core count.
pub fn simulate(
    report: &RunReport,
    profile: &PlatformProfile,
    mode: ScalingMode,
    cores: usize,
) -> ScalingPoint {
    let cores = cores.clamp(1, profile.max_cores);
    let lengths: Vec<f64> = report.supersteps.iter().map(|s| s.instructions as f64).collect();
    let correct: Vec<bool> = report
        .supersteps
        .iter()
        .map(|s| match mode {
            ScalingMode::Oracle => true,
            _ => s.prediction_correct.unwrap_or(false),
        })
        .collect();
    let sequential_time: f64 = report.converge_instructions as f64 + lengths.iter().sum::<f64>();
    if lengths.is_empty() || cores <= 1 {
        return ScalingPoint { cores, scaling: 1.0, hit_rate: 0.0 };
    }

    let (query_cost, p2p_cost) = match mode {
        ScalingMode::CycleCount => (0.0, 0.0),
        _ => (
            profile.query_base_cost + profile.query_hop_cost * (cores as f64).log2(),
            profile.p2p_cost,
        ),
    };

    // Sequential prefix: recognizer convergence.
    let mut time = report.converge_instructions as f64;
    let mut hits = 0usize;
    let mut queries = 0usize;
    let workers = cores - 1;

    // Each dispatch round: the main thread executes the superstep at `t`
    // itself while worker rank k (k = 1..P-1) speculates superstep t+k —
    // paying the linear-in-rank recursive-prediction latency first. The main
    // thread then consumes hits until the first superstep whose speculation
    // is unusable (wrong prediction chain, or not worth waiting for), which
    // it executes itself as the start of the next round — modelling the
    // continuous re-dispatch the allocator performs at every occurrence.
    let mut t = 0usize;
    while t < lengths.len() {
        let dispatch_time = time;
        let round_end = (t + workers + 1).min(lengths.len());

        // Main thread executes superstep t itself.
        time += lengths[t];
        let mut advanced = 1usize;
        for (index, &length) in lengths.iter().enumerate().take(round_end).skip(t + 1) {
            // Query the distributed cache (max-reduction + winner transfer).
            time += query_cost;
            queries += 1;
            let rank = (index - t) as f64;
            let chain_valid = (t..index).all(|i| correct[i]);
            let ready_time = dispatch_time + profile.rollout_cost_per_step * rank + length;
            if chain_valid {
                let wait = (ready_time - time).max(0.0);
                if wait + p2p_cost < lengths[index] {
                    // Hit: wait for the worker if needed, then fast-forward.
                    time += wait + p2p_cost;
                    hits += 1;
                    advanced += 1;
                    continue;
                }
            }
            // Miss: this superstep starts the next round on the main thread.
            break;
        }
        t += advanced;
    }

    let scaling = sequential_time / time.max(1.0);
    let hit_rate = if queries == 0 { 0.0 } else { hits as f64 / queries as f64 };
    ScalingPoint { cores, scaling, hit_rate }
}

/// Convenience: a whole scaling curve over a set of core counts.
pub fn scaling_curve(
    report: &RunReport,
    profile: &PlatformProfile,
    mode: ScalingMode,
    core_counts: &[usize],
) -> Vec<ScalingPoint> {
    core_counts.iter().map(|&cores| simulate(report, profile, mode, cores)).collect()
}

/// The standard core counts used for the 32-core server figures.
pub fn server_core_counts() -> Vec<usize> {
    (1..=32).collect()
}

/// The standard core counts used for the Blue Gene/P figures (powers of two).
pub fn blue_gene_core_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut p = 2usize;
    while p <= max {
        counts.push(p);
        p *= 2;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognizer::RecognizedIp;
    use crate::runtime::SuperstepRecord;
    use asc_tvm::state::StateVector;

    /// Builds a synthetic report with `n` supersteps of equal length and the
    /// given per-superstep prediction accuracy pattern.
    fn synthetic_report(n: usize, length: u64, correct: impl Fn(usize) -> bool) -> RunReport {
        RunReport {
            rip: RecognizedIp {
                ip: 0,
                stride: 1,
                mean_superstep: length as f64,
                accuracy: 1.0,
                score: length as f64,
            },
            unique_ips: 10,
            state_bits: 1024,
            excited_bits: 32,
            converge_instructions: length * 2,
            total_instructions: length * n as u64,
            executed_instructions: length * n as u64,
            fast_forwarded_instructions: 0,
            supersteps: (0..n)
                .map(|i| SuperstepRecord {
                    index: i,
                    instructions: length,
                    read_bytes: 40,
                    write_bytes: 40,
                    query_bits: 640,
                    prediction_correct: Some(correct(i)),
                })
                .collect(),
            ensemble_errors: None,
            weight_matrix: None,
            cache_stats: Default::default(),
            remote: None,
            speculation: None,
            planner: None,
            health: Default::default(),
            economics: None,
            checkpoints: None,
            tier: Default::default(),
            final_state: StateVector::new(16).unwrap(),
            halted: true,
        }
    }

    #[test]
    fn perfect_predictions_scale_nearly_linearly_at_moderate_core_counts() {
        let report = synthetic_report(2000, 10_000, |_| true);
        let profile = PlatformProfile::server_32core();
        let p8 = simulate(&report, &profile, ScalingMode::Lasc, 8);
        let p32 = simulate(&report, &profile, ScalingMode::Lasc, 32);
        assert!(p8.scaling > 6.0, "{p8:?}");
        assert!(p32.scaling > 20.0, "{p32:?}");
        assert!(p32.scaling > p8.scaling);
        assert!(p32.hit_rate > 0.9);
    }

    #[test]
    fn one_core_never_scales() {
        let report = synthetic_report(100, 1_000, |_| true);
        let point = simulate(&report, &PlatformProfile::server_32core(), ScalingMode::Lasc, 1);
        assert_eq!(point.scaling, 1.0);
    }

    #[test]
    fn wrong_predictions_cap_scaling() {
        // Every fourth prediction wrong: chains break quickly, so scaling
        // saturates well below the core count.
        let report = synthetic_report(2000, 10_000, |i| i % 4 != 3);
        let profile = PlatformProfile::server_32core();
        let p32 = simulate(&report, &profile, ScalingMode::Lasc, 32);
        let perfect =
            simulate(&synthetic_report(2000, 10_000, |_| true), &profile, ScalingMode::Lasc, 32);
        assert!(p32.scaling < perfect.scaling * 0.5, "{p32:?} vs {perfect:?}");
        assert!(p32.scaling > 1.5);
    }

    #[test]
    fn oracle_mode_recovers_perfect_prediction_scaling() {
        let flawed = synthetic_report(1000, 10_000, |i| i % 3 != 0);
        let profile = PlatformProfile::server_32core();
        let lasc = simulate(&flawed, &profile, ScalingMode::Lasc, 32);
        let oracle = simulate(&flawed, &profile, ScalingMode::Oracle, 32);
        assert!(oracle.scaling > lasc.scaling);
        assert!(oracle.hit_rate > 0.9);
    }

    #[test]
    fn cycle_count_mode_is_an_upper_bound_on_lasc() {
        let report = synthetic_report(1000, 2_000, |_| true);
        let profile = PlatformProfile::blue_gene_p();
        for cores in [8, 64, 512] {
            let lasc = simulate(&report, &profile, ScalingMode::Lasc, cores);
            let cycle = simulate(&report, &profile, ScalingMode::CycleCount, cores);
            assert!(cycle.scaling >= lasc.scaling - 1e-9, "cores {cores}");
        }
    }

    #[test]
    fn rollout_latency_limits_blue_gene_scaling() {
        // With thousands of cores the linear-in-rank prediction latency means
        // distant workers are not ready in time, so scaling rolls off well
        // below the core count — the effect the paper reports at ~1024 cores.
        let report = synthetic_report(4000, 10_000, |_| true);
        let profile = PlatformProfile::blue_gene_p();
        let p256 = simulate(&report, &profile, ScalingMode::Lasc, 256);
        let p4096 = simulate(&report, &profile, ScalingMode::Lasc, 4096);
        assert!(p256.scaling > 100.0, "{p256:?}");
        assert!(p4096.scaling < 4096.0 * 0.5, "{p4096:?}");
        assert!(p4096.scaling >= p256.scaling * 0.5, "{p4096:?} vs {p256:?}");
    }

    #[test]
    fn available_parallelism_limits_scaling() {
        // Only 50 supersteps exist: no matter how many cores, scaling cannot
        // exceed ~50 (the paper's 2000-node Ising drop-off).
        let report = synthetic_report(50, 10_000, |_| true);
        let profile = PlatformProfile::blue_gene_p();
        let point = simulate(&report, &profile, ScalingMode::CycleCount, 4096);
        assert!(point.scaling <= 51.0);
        assert!(point.scaling > 10.0);
    }

    #[test]
    fn curves_are_sorted_by_core_count() {
        let report = synthetic_report(500, 5_000, |_| true);
        let profile = PlatformProfile::server_32core();
        let curve = scaling_curve(&report, &profile, ScalingMode::Lasc, &server_core_counts());
        assert_eq!(curve.len(), 32);
        assert_eq!(curve[0].cores, 1);
        assert_eq!(curve[31].cores, 32);
        let bg = blue_gene_core_counts(4096);
        assert_eq!(*bg.last().unwrap(), 4096);
    }
}
