//! # asc-core — the ASC architecture (LASC runtime)
//!
//! This crate implements the paper's primary contribution: an architecture
//! that automatically scales unmodified sequential programs by treating
//! execution as a trajectory through state space, predicting future points on
//! that trajectory with on-line machine learning, speculatively executing
//! from the predicted points, and fast-forwarding through a dependency-aware
//! trajectory cache.
//!
//! Components (Figure 1 of the paper):
//!
//! * [`recognizer`] — finds recognized instruction pointers (RIPs) whose
//!   occurrences are widely spaced and predictable (§4.3).
//! * [`excitation`] / [`predictor_bank`] — track which bits change between
//!   RIP occurrences and train the `asc-learn` ensemble on exactly those
//!   bits (§4.4).
//! * [`allocator`] — expected-utility selection of speculative work from
//!   recursive rollout predictions (§4.5).
//! * [`economics`] — the cost-aware dispatch value model: per-RIP realized
//!   hit rates, calibrated `P(hit)` estimates, and the adaptive rollout
//!   horizon that decides whether a speculation is worth a worker's time.
//! * [`planner`] — the continuous-speculation planner thread that owns
//!   speculation cadence: it consumes the main thread's occurrence stream
//!   and keeps the worker pool topped up with predicted supersteps instead
//!   of waiting for cache misses.
//! * [`speculator`] — executes supersteps from predicted states with
//!   dependency tracking (§4.1).
//! * [`cache`] — the sparse, dependency-matched trajectory cache (§4.2).
//! * [`runtime`] — the LASC main loop: `measure` (instrumented, for the
//!   experiment harnesses), `accelerate` (cache + speculation in the loop)
//!   and `memoize` (single-core generalized memoization).
//! * [`supervisor`] — the supervision layer over the speculation machinery:
//!   panic containment, job deadlines, worker respawn, health counters, and
//!   the degrade-to-inline circuit breaker (speculation failures may only
//!   ever cost speed — including *execution* failures).
//! * [`cluster`] — platform cost models that turn a measured trace into the
//!   paper's scaling curves (32-core server, Blue Gene/P, laptop).
//! * [`remote`] — the distributed cache tier: a versioned wire codec, TCP
//!   cache peers shared between runs, and on-disk snapshots for persistent
//!   warm starts (the paper's cluster-shared trajectory cache, §5).
//! * [`checkpoint`] — crash durability: occurrence-boundary checkpoints of
//!   resumable run state, written atomically and verified section by
//!   section, from which an interrupted `accelerate` resumes to a final
//!   state bit-identical to the uninterrupted run (see `ROBUSTNESS.md`).
//!
//! ## Quick example
//!
//! ```no_run
//! use asc_core::config::AscConfig;
//! use asc_core::runtime::LascRuntime;
//! use asc_workloads::registry::{build, Benchmark, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = build(Benchmark::Collatz, Scale::Small)?;
//! let runtime = LascRuntime::new(AscConfig::default())?;
//! let report = runtime.accelerate(&workload.program)?;
//! assert!(workload.verify(&report.final_state));
//! println!("fast-forwarded {} of {} instructions",
//!          report.fast_forwarded_instructions, report.total_instructions);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod cache;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod economics;
pub mod error;
pub mod excitation;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod planner;
pub mod predictor_bank;
pub mod recognizer;
pub mod remote;
pub mod runtime;
pub mod speculator;
pub mod supervisor;
pub mod workers;

pub use cache::{CacheEntry, CacheStats, TrajectoryCache};
pub use checkpoint::{CheckpointStats, RunCheckpoint};
pub use cluster::{PlatformProfile, ScalingMode, ScalingPoint};
pub use config::{
    AscConfig, BreakerConfig, CheckpointConfig, EconomicsConfig, PlannerConfig,
    PredictorComplement, RemoteConfig, WatchdogConfig,
};
pub use economics::{EconomicsStats, SpeculationEconomics};
pub use error::{AscError, AscResult};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use planner::{OccurrenceEvent, PlannerHandle, PlannerStats};
pub use recognizer::{RecognizedIp, RecognizerOutcome};
pub use remote::{CachePeer, RemoteStats};
pub use runtime::{LascRuntime, RunReport, SuperstepRecord};
pub use supervisor::{BreakerState, CircuitBreaker, HealthMonitor, HealthStats, Supervision};
pub use workers::{PoolStats, SpeculationJob, SpeculationPool};
