//! The predictor bank: excitation tracking plus the learning ensemble, bound
//! to one recognized instruction pointer (§4.4).
//!
//! The bank is the runtime end of the packed prediction pipeline:
//!
//! ```text
//! StateVector ──ExcitationMap::observe──▶ PackedObservation
//!     (one 32-bit read per tracked word)        │
//!                                               ├─ Ensemble::observe ── block
//!                                               │  training, XOR mistake masks
//!                                               └─ Ensemble::predict_ml ──▶
//!                                                  packed ML block
//!                                                        │
//!                        ExcitationMap::materialize ◀────┘
//!                        (patch tracked words onto the live state)
//! ```
//!
//! It first warms up an [`ExcitationTracker`] over the stream of occurrence
//! states to discover which bits actually change, then freezes an
//! [`ExcitationMap`] and instantiates the block-predictor ensemble over
//! exactly those bits. Every subsequent occurrence trains the ensemble with
//! one block call per predictor. Given a current state it produces the
//! maximum-likelihood predicted next state — and recursive rollouts of it,
//! chained in packed observation space so only the returned states are
//! materialised — each a *full* state vector built by patching only the
//! tracked words: the paper's sparsity argument made concrete.

use crate::config::{AscConfig, PredictorComplement};
use crate::excitation::{ExcitationMap, ExcitationTracker};
use asc_learn::ensemble::{Ensemble, EnsembleErrors};
use asc_learn::features::PackedObservation;
use asc_learn::persist::{self, Reader};
use asc_learn::traits::{default_predictors, extended_predictors};
use asc_tvm::state::StateVector;

/// A predicted future state together with its probability under the model.
#[derive(Debug, Clone)]
pub struct PredictedState {
    /// The materialised full state vector.
    pub state: StateVector,
    /// Natural log of the joint probability assigned by Eq. 2.
    pub log_probability: f64,
    /// How many supersteps ahead of the conditioning state this prediction is.
    pub depth: usize,
}

/// Excitation tracking + ensemble for one recognized IP.
pub struct PredictorBank {
    rip: u32,
    warmup: usize,
    beta: f64,
    max_excited_bits: usize,
    mistake_capacity: usize,
    complement: PredictorComplement,
    tracker: ExcitationTracker,
    map: Option<ExcitationMap>,
    ensemble: Option<Ensemble>,
    previous: Option<(StateVector, PackedObservation)>,
    observations: u64,
    /// Consecutive occurrences whose changes fell substantially outside the
    /// frozen map.
    drift: u32,
    /// Observation count at the last ensemble (re)build, for rate limiting.
    last_rebuild: u64,
}

impl std::fmt::Debug for PredictorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorBank")
            .field("rip", &self.rip)
            .field("observations", &self.observations)
            .field("excited_bits", &self.excited_bits())
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl PredictorBank {
    /// Creates a bank for occurrences of `rip` with the given configuration.
    pub fn new(rip: u32, config: &AscConfig) -> Self {
        PredictorBank {
            rip,
            warmup: config.excitation_warmup.max(2),
            beta: config.ensemble_beta,
            max_excited_bits: config.max_excited_bits.max(32),
            mistake_capacity: config.mistake_log_capacity.max(1),
            complement: config.predictors,
            tracker: ExcitationTracker::new(config.excitation_threshold),
            map: None,
            ensemble: None,
            previous: None,
            observations: 0,
            drift: 0,
            last_rebuild: 0,
        }
    }

    /// The recognized IP this bank models.
    pub fn rip(&self) -> u32 {
        self.rip
    }

    /// Whether the excitation map has been frozen and the ensemble built.
    pub fn is_ready(&self) -> bool {
        self.ensemble.is_some()
    }

    /// Number of excitation bits currently modelled (0 before readiness).
    pub fn excited_bits(&self) -> usize {
        self.map.as_ref().map(|m| m.bit_count()).unwrap_or(0)
    }

    /// Number of occurrence states observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Error statistics of the ensemble, if it has been built.
    pub fn errors(&self) -> Option<EnsembleErrors> {
        self.ensemble.as_ref().map(|e| e.errors())
    }

    /// The ensemble's windowed whole-state error rate (the
    /// [`EnsembleErrors::recent_error_rate`] signal) without computing the
    /// full Table-2 statistics — O(1), safe on the per-occurrence hot path.
    /// `None` until the ensemble is built. The dispatch economics consume
    /// this as their model-accuracy signal.
    pub fn recent_error_rate(&self) -> Option<f64> {
        self.ensemble.as_ref().map(|e| e.recent_error_rate())
    }

    /// The Figure-3 weight matrix: predictor names and per-bit normalised
    /// weights, if the ensemble has been built.
    pub fn weight_matrix(&self) -> Option<(Vec<&'static str>, Vec<Vec<f64>>)> {
        self.ensemble.as_ref().map(|e| (e.predictor_names(), e.weight_matrix()))
    }

    /// Instantiates the configured predictor complement over a frozen map's
    /// schema — shared by the warm-up build, drift rebuilds and checkpoint
    /// restores (which must reproduce exactly the ensemble the save saw).
    fn make_ensemble(&self, map: &ExcitationMap) -> Ensemble {
        let schema = map.schema().clone();
        let predictors = match self.complement {
            PredictorComplement::Default => default_predictors(&schema),
            PredictorComplement::Extended => extended_predictors(&schema),
        };
        Ensemble::new(predictors, map.bit_count(), self.beta, self.mistake_capacity)
    }

    fn build_ensemble(&mut self) {
        if let Some(map) = self.tracker.build_map_with_limit(self.max_excited_bits) {
            self.ensemble = Some(self.make_ensemble(&map));
            self.map = Some(map);
            self.previous = None;
            self.drift = 0;
            self.last_rebuild = self.observations;
        }
    }

    /// Appends the bank's full learned state — tracker statistics, the frozen
    /// excitation map (as its tracked bit indices) and the ensemble blob — to
    /// `out`. The `previous` transition origin is *not* saved: a restore
    /// behaves like [`break_stream`](PredictorBank::break_stream), costing
    /// one training transition.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, self.rip);
        persist::put_u64(out, self.observations);
        persist::put_u32(out, self.drift);
        persist::put_u64(out, self.last_rebuild);
        let mut tracker_blob = Vec::new();
        self.tracker.save_state(&mut tracker_blob);
        persist::put_bytes(out, &tracker_blob);
        match &self.map {
            Some(map) => {
                persist::put_u32(out, 1);
                persist::put_usize(out, map.bit_indices().len());
                for &bit in map.bit_indices() {
                    persist::put_usize(out, bit);
                }
            }
            None => persist::put_u32(out, 0),
        }
        match &self.ensemble {
            Some(ensemble) => {
                persist::put_u32(out, 1);
                let mut blob = Vec::new();
                ensemble.save_state(&mut blob);
                persist::put_bytes(out, &blob);
            }
            None => persist::put_u32(out, 0),
        }
    }

    /// Restores state written by [`save_state`](PredictorBank::save_state)
    /// into a bank freshly constructed from the *same* configuration and
    /// RIP. Returns `None` (bank left fit only for discarding — the caller
    /// re-warms with a fresh bank) on any mismatch, truncation or malformed
    /// bytes.
    pub fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        if reader.u32()? != self.rip {
            return None;
        }
        let observations = reader.u64()?;
        let drift = reader.u32()?;
        let last_rebuild = reader.u64()?;
        let tracker_blob = reader.bytes()?;
        let mut tracker_reader = Reader::new(tracker_blob);
        self.tracker.load_state(&mut tracker_reader)?;
        if !tracker_reader.is_empty() {
            return None;
        }
        let map = match reader.u32()? {
            0 => None,
            1 => {
                let count = reader.usize()?;
                if count > reader.remaining() / 8 {
                    return None;
                }
                let mut bits = Vec::with_capacity(count);
                for _ in 0..count {
                    bits.push(reader.usize()?);
                }
                // `ExcitationMap::new` expands to aligned words; the saved
                // indices are already expanded, so this is idempotent and
                // reproduces the frozen map exactly.
                Some(ExcitationMap::new(bits))
            }
            _ => return None,
        };
        let ensemble = match reader.u32()? {
            0 => None,
            1 => {
                let map = map.as_ref()?;
                let mut ensemble = self.make_ensemble(map);
                let blob = reader.bytes()?;
                let mut blob_reader = Reader::new(blob);
                ensemble.load_state(&mut blob_reader)?;
                if !blob_reader.is_empty() {
                    return None;
                }
                Some(ensemble)
            }
            _ => return None,
        };
        self.observations = observations;
        self.drift = drift;
        self.last_rebuild = last_rebuild;
        self.map = map;
        self.ensemble = ensemble;
        self.previous = None;
        Some(())
    }

    /// Folds in the state at a new occurrence of the recognized IP, training
    /// the ensemble on the transition from the previous occurrence.
    pub fn observe(&mut self, state: &StateVector) {
        self.observations += 1;
        self.tracker.observe(state);

        if self.ensemble.is_none() {
            if self.tracker.observations() > self.warmup {
                self.build_ensemble();
            }
            if self.ensemble.is_none() {
                return;
            }
        }

        // Detect drift: *substantial* changes outside the frozen map mean the
        // program moved to a new phase; rebuild from the (still accumulating)
        // tracker. A handful of unmapped bits per superstep — the freshly
        // written output cell of a kernel like 2mm, which no later superstep
        // reads — is expected and must not trigger a rebuild.
        let map = self.map.as_ref().expect("ensemble implies map");
        let observation = map.observe(state);
        if let Some((previous_state, previous_observation)) = &self.previous {
            let unmapped_changed_bits: usize = previous_state
                .diff_bytes(state)
                .iter()
                .map(|&byte| {
                    (0..8)
                        .filter(|bit| {
                            let index = byte * 8 + bit;
                            (previous_state.bit(index) != state.bit(index))
                                && map.bit_indices().binary_search(&index).is_err()
                        })
                        .count()
                })
                .sum();
            if unmapped_changed_bits > 64 {
                self.drift += 1;
            } else {
                self.drift = 0;
            }
            let rebuild_allowed = self.observations >= self.last_rebuild + (self.warmup as u64 + 8);
            if self.drift >= 3 && rebuild_allowed {
                // The paper's recognizer calls reset() on its predictors when
                // program behaviour changes; rebuilding widens the map to the
                // newly excited bits.
                self.build_ensemble();
                let map = self.map.as_ref().expect("rebuild keeps a map");
                let observation = map.observe(state);
                self.previous = Some((state.clone(), observation));
                return;
            }
            let ensemble = self.ensemble.as_mut().expect("checked above");
            ensemble.observe(previous_observation, &observation);
        }
        self.previous = Some((state.clone(), observation));
    }

    /// Cheap training path for high-rate occurrence streams (the planner's
    /// hot path): once the ensemble is ready, extracts the packed
    /// observation — one 32-bit read per tracked word — and block-trains the
    /// ensemble on the transition from the previous occurrence, skipping the
    /// full-state excitation diff and drift scan that [`observe`] pays.
    /// Falls back to the full path until the ensemble is ready.
    ///
    /// The packed refactor removed most of the gap between the two paths:
    /// what remains in [`observe`] is the full-state `diff_bytes` scan that
    /// keeps excitation discovery and drift detection alive — a cost
    /// proportional to the *state* size, not the excitation count, so it
    /// stays worth amortising. Callers should still route occasional
    /// occurrences through [`observe`] (the planner does so every
    /// [`full_observe_interval`](crate::config::PlannerConfig::full_observe_interval)-th
    /// occurrence). Between full updates the tracker's diff spans several
    /// supersteps, which coarsens change *counts* but cannot hide a changing
    /// bit.
    ///
    /// [`observe`]: PredictorBank::observe
    pub fn observe_incremental(&mut self, state: &StateVector) {
        if self.ensemble.is_none() {
            self.observe(state);
            return;
        }
        self.observations += 1;
        let map = self.map.as_ref().expect("ensemble implies map");
        let observation = map.observe(state);
        if let Some((_, previous_observation)) = &self.previous {
            let ensemble = self.ensemble.as_mut().expect("checked above");
            ensemble.observe(previous_observation, &observation);
        }
        self.previous = Some((state.clone(), observation));
    }

    /// Severs the training stream: the next [`observe`] or
    /// [`observe_incremental`] call records its state as the new transition
    /// origin without training on the gap it follows. Called when the
    /// occurrence stream skipped states (a throttled or dropped occurrence):
    /// the transition across such a gap spans several supersteps, and
    /// training on it would teach the ensemble a variable-stride successor
    /// function.
    ///
    /// [`observe`]: PredictorBank::observe
    /// [`observe_incremental`]: PredictorBank::observe_incremental
    pub fn break_stream(&mut self) {
        self.previous = None;
    }

    /// Predicts the state at the next occurrence of the RIP, conditioned on
    /// `state`. Returns `None` until the ensemble is ready.
    pub fn predict_next(&self, state: &StateVector) -> Option<PredictedState> {
        let (map, ensemble) = (self.map.as_ref()?, self.ensemble.as_ref()?);
        let observation = map.observe(state);
        let (block, log_probability) = ensemble.predict_ml(&observation);
        Some(PredictedState { state: map.materialize(state, &block), log_probability, depth: 1 })
    }

    /// Whether `predicted` agrees with `actual` on every modelled excitation
    /// bit. This is the accuracy criterion the recognizer uses when scoring
    /// candidate IPs: bits outside the model (for example freshly written
    /// output cells that no later superstep reads) do not count against a
    /// prediction, mirroring how the trajectory cache only requires matches
    /// on an entry's read set.
    pub fn prediction_matches(&self, predicted: &StateVector, actual: &StateVector) -> bool {
        match &self.map {
            Some(map) => map.states_agree(predicted, actual),
            None => predicted == actual,
        }
    }

    /// Rolls predictions out `depth` supersteps into the future by feeding
    /// each predicted block back into the model (§4.5.2). The chain advances
    /// in packed observation space — only the returned states pay for
    /// materialisation, and each is the anchor state with just the tracked
    /// words patched. Entry `k-1` of the result is the prediction `k`
    /// supersteps ahead; log-probabilities are cumulative along the chain.
    pub fn rollout(&self, state: &StateVector, depth: usize) -> Vec<PredictedState> {
        let mut results = Vec::with_capacity(depth);
        let (Some(map), Some(ensemble)) = (self.map.as_ref(), self.ensemble.as_ref()) else {
            return results;
        };
        let mut observation = map.observe(state);
        let mut cumulative_log_probability = 0.0;
        for k in 1..=depth {
            let (block, log_probability) = ensemble.predict_ml(&observation);
            cumulative_log_probability += log_probability;
            results.push(PredictedState {
                state: map.materialize(state, &block),
                log_probability: cumulative_log_probability,
                depth: k,
            });
            observation = map.observation_from_packed(&block);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_tvm::machine::Machine;
    use asc_tvm::program::Program;

    /// A counting loop: at the loop head, r1 decrements and r2 accumulates by
    /// a constant, so the excitations are exactly predictable.
    fn counting_program(iterations: i32) -> (Program, u32) {
        let program = assemble(&format!(
            r#"
            main:
                movi r1, {iterations}
                movi r2, 0
            loop:
                add  r2, r2, 3
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#
        ))
        .unwrap();
        let rip = program.symbol("loop").unwrap();
        (program, rip)
    }

    fn occurrence_states(program: &Program, rip: u32, count: usize) -> Vec<StateVector> {
        let mut machine = Machine::load(program).unwrap();
        let mut states = Vec::new();
        for _ in 0..count {
            let (_, _) = machine.run_until_ip(rip, 1_000_000).unwrap();
            if machine.is_halted() {
                break;
            }
            states.push(machine.state().clone());
        }
        states
    }

    #[test]
    fn bank_becomes_ready_and_predicts_exactly() {
        let (program, rip) = counting_program(200);
        let states = occurrence_states(&program, rip, 40);
        let config = AscConfig::for_tests();
        let mut bank = PredictorBank::new(rip, &config);
        for state in &states[..30] {
            bank.observe(state);
        }
        assert!(bank.is_ready());
        assert!(bank.excited_bits() > 0);
        // Prediction from occurrence 30 should equal occurrence 31 exactly.
        let predicted = bank.predict_next(&states[30]).unwrap();
        assert_eq!(predicted.state, states[31]);
        assert!(predicted.log_probability <= 0.0);
    }

    #[test]
    fn rollout_chains_predictions() {
        let (program, rip) = counting_program(200);
        let states = occurrence_states(&program, rip, 50);
        let config = AscConfig::for_tests();
        let mut bank = PredictorBank::new(rip, &config);
        for state in &states[..35] {
            bank.observe(state);
        }
        let rollout = bank.rollout(&states[35], 5);
        assert_eq!(rollout.len(), 5);
        for (k, predicted) in rollout.iter().enumerate() {
            assert_eq!(predicted.depth, k + 1);
            assert_eq!(predicted.state, states[35 + k + 1], "rollout depth {} wrong", k + 1);
        }
        // Cumulative probability must be non-increasing with depth.
        for pair in rollout.windows(2) {
            assert!(pair[1].log_probability <= pair[0].log_probability + 1e-9);
        }
    }

    #[test]
    fn incremental_observe_trains_like_full_observe() {
        let (program, rip) = counting_program(200);
        let states = occurrence_states(&program, rip, 60);
        let config = AscConfig::for_tests();
        let mut full = PredictorBank::new(rip, &config);
        let mut incremental = PredictorBank::new(rip, &config);
        for state in &states[..50] {
            full.observe(state);
            // The incremental path self-falls-back until the ensemble exists,
            // then trains the ensemble only.
            incremental.observe_incremental(state);
        }
        assert!(incremental.is_ready());
        assert_eq!(incremental.observations(), full.observations());
        // On an exactly learnable loop both training paths converge to the
        // same prediction.
        let from_full = full.predict_next(&states[50]).unwrap();
        let from_incremental = incremental.predict_next(&states[50]).unwrap();
        assert_eq!(from_full.state, states[51]);
        assert_eq!(from_incremental.state, states[51]);
    }

    #[test]
    fn not_ready_before_warmup() {
        let (program, rip) = counting_program(50);
        let states = occurrence_states(&program, rip, 3);
        let config = AscConfig::for_tests();
        let mut bank = PredictorBank::new(rip, &config);
        bank.observe(&states[0]);
        assert!(!bank.is_ready());
        assert!(bank.predict_next(&states[0]).is_none());
        assert!(bank.rollout(&states[0], 3).is_empty());
    }

    #[test]
    fn errors_reflect_learning_quality() {
        let (program, rip) = counting_program(300);
        let states = occurrence_states(&program, rip, 120);
        let config = AscConfig::for_tests();
        let mut bank = PredictorBank::new(rip, &config);
        for state in &states {
            bank.observe(state);
        }
        let errors = bank.errors().unwrap();
        assert!(errors.total_predictions > 50);
        // The loop is exactly learnable, so the ensemble should settle down to
        // a low state-level error rate (early mistakes included).
        assert!(errors.actual_error_rate < 0.5, "{errors:?}");
        assert!(errors.hindsight_optimal_error_rate <= errors.equal_weight_error_rate + 1e-9);
        let (names, matrix) = bank.weight_matrix().unwrap();
        assert_eq!(names.len(), 4);
        assert_eq!(matrix.len(), bank.excited_bits());
    }

    #[test]
    fn save_load_roundtrip_predicts_identically() {
        let (program, rip) = counting_program(300);
        let states = occurrence_states(&program, rip, 80);
        let config = AscConfig::for_tests();
        let mut trained = PredictorBank::new(rip, &config);
        for state in &states[..60] {
            trained.observe(state);
        }
        assert!(trained.is_ready());
        let mut bytes = Vec::new();
        trained.save_state(&mut bytes);

        let mut restored = PredictorBank::new(rip, &config);
        let mut reader = asc_learn::persist::Reader::new(&bytes);
        restored.load_state(&mut reader).expect("roundtrip must restore");
        assert!(reader.is_empty());
        assert!(restored.is_ready());
        assert_eq!(restored.observations(), trained.observations());
        assert_eq!(restored.excited_bits(), trained.excited_bits());
        assert_eq!(restored.errors(), trained.errors());

        let from_trained = trained.predict_next(&states[60]).unwrap();
        let from_restored = restored.predict_next(&states[60]).unwrap();
        assert_eq!(from_restored.state, from_trained.state);
        assert_eq!(from_restored.log_probability, from_trained.log_probability);

        // A restore breaks the training stream (like break_stream): the first
        // observe re-anchors, then both banks keep learning identically.
        trained.break_stream();
        for state in &states[60..] {
            trained.observe(state);
            restored.observe(state);
        }
        let last = states.last().unwrap();
        let a = trained.rollout(last, 4);
        let b = restored.rollout(last, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.state, y.state);
            assert_eq!(x.log_probability, y.log_probability);
        }
    }

    #[test]
    fn load_rejects_wrong_rip_and_truncation() {
        let (program, rip) = counting_program(200);
        let states = occurrence_states(&program, rip, 40);
        let config = AscConfig::for_tests();
        let mut trained = PredictorBank::new(rip, &config);
        for state in &states {
            trained.observe(state);
        }
        let mut bytes = Vec::new();
        trained.save_state(&mut bytes);

        let mut wrong_rip = PredictorBank::new(rip + 4, &config);
        assert!(wrong_rip.load_state(&mut asc_learn::persist::Reader::new(&bytes)).is_none());

        for cut in (0..bytes.len()).step_by(7) {
            let mut fresh = PredictorBank::new(rip, &config);
            assert!(
                fresh.load_state(&mut asc_learn::persist::Reader::new(&bytes[..cut])).is_none(),
                "truncation at {cut} must not restore"
            );
        }
    }

    #[test]
    fn mistake_history_stays_bounded() {
        let (program, rip) = counting_program(600);
        let states = occurrence_states(&program, rip, 200);
        let config = AscConfig { mistake_log_capacity: 16, ..AscConfig::for_tests() };
        let mut bank = PredictorBank::new(rip, &config);
        for state in &states {
            bank.observe(state);
        }
        let errors = bank.errors().unwrap();
        // Full-history counters keep counting far past the 16-observation
        // mistake window; the windowed hindsight rate stays well-formed.
        assert!(errors.total_predictions > 100, "{errors:?}");
        assert!(errors.hindsight_optimal_error_rate <= 1.0);
    }
}
