//! Speculative superstep execution (§3.2 (E), §4.1).
//!
//! A speculative worker receives a (usually predicted) start state, resets a
//! dependency vector to all-`null`, and calls the transition function in a
//! loop until it reaches the recognized IP again (one superstep), the program
//! halts, or it exhausts its instruction allowance. The accumulated
//! dependency vector is then used to build the compressed cache entry: the
//! read set keyed on the *start* state and the write set keyed on the *end*
//! state.
//!
//! Long-lived workers execute many supersteps; [`SpeculationScratch`] lets
//! them reuse one dependency vector and one decoded-instruction cache across
//! jobs (reset between supersteps, reallocated only when the state size
//! changes) instead of paying two state-sized allocations per job.

use crate::cache::CacheEntry;
use crate::error::AscResult;
use asc_tvm::delta::SparseBytes;
use asc_tvm::deps::DepVector;
use asc_tvm::error::VmError;
use asc_tvm::state::StateVector;
use asc_tvm::tier::{run_segment, BlockCache, SegmentExit};
use asc_tvm::{TierConfig, TierStats};

/// Outcome of one speculative superstep execution.
#[derive(Debug, Clone)]
pub struct SuperstepOutcome {
    /// The cache entry summarising the execution.
    pub entry: CacheEntry,
    /// The full end state (used by recursive speculation and by tests).
    pub end_state: StateVector,
    /// Whether the execution ended because it reached the recognized IP
    /// (`stride` times); `false` means it halted or ran out of budget.
    pub reached_rip: bool,
    /// Whether the program halted during the execution.
    pub halted: bool,
    /// Number of instructions executed.
    pub instructions: u64,
    /// Number of state bytes in the read (dependency) set.
    pub read_bytes: usize,
    /// Number of state bytes in the write (output) set.
    pub write_bytes: usize,
}

/// How a speculative execution ended.
#[derive(Debug, Clone)]
pub enum SpeculationResult {
    /// The superstep completed; a cache entry is available.
    Completed(Box<SuperstepOutcome>),
    /// Execution faulted (invalid opcode, wild access, division by zero).
    /// Expected when speculating from a mispredicted state; the result is
    /// simply discarded.
    Faulted {
        /// Instructions executed before the fault.
        instructions: u64,
        /// The fault itself.
        error: VmError,
    },
}

impl SpeculationResult {
    /// The completed outcome, if any.
    pub fn completed(self) -> Option<SuperstepOutcome> {
        match self {
            SpeculationResult::Completed(outcome) => Some(*outcome),
            SpeculationResult::Faulted { .. } => None,
        }
    }
}

/// Reusable per-worker execution scratch: the dependency vector and two-tier
/// execution cache a speculative superstep needs. Long-lived workers keep
/// one scratch across jobs and reset it (no reallocation when the state size
/// is unchanged) instead of constructing both afresh per superstep — at the
/// planner's dispatch rate the per-job allocations otherwise dominate small
/// supersteps. Compiled tier-1 blocks additionally *survive* the reset when
/// the new job's code bytes still match, so a worker re-speculating the same
/// hot loop keeps its superinstructions across jobs.
#[derive(Debug, Default)]
pub struct SpeculationScratch {
    deps: Option<DepVector>,
    icache: Option<BlockCache>,
    tier: TierConfig,
}

impl SpeculationScratch {
    /// Creates an empty scratch with the default (enabled) tier
    /// configuration; buffers are sized lazily on first use.
    pub fn new() -> Self {
        SpeculationScratch::default()
    }

    /// Creates an empty scratch with an explicit tier configuration — the
    /// constructor the runtime uses to propagate [`AscConfig::tier`]
    /// (via [`Supervision`](crate::supervisor::Supervision)) to workers.
    ///
    /// [`AscConfig::tier`]: crate::config::AscConfig::tier
    pub fn with_tier(tier: TierConfig) -> Self {
        SpeculationScratch { tier, ..SpeculationScratch::default() }
    }

    /// Drains the tier-1 execution counters accumulated since the last
    /// drain (across however many supersteps ran on this scratch).
    pub fn take_tier_stats(&mut self) -> TierStats {
        self.icache.as_mut().map(BlockCache::take_stats).unwrap_or_default()
    }
}

/// Executes one speculative superstep from `start`.
///
/// Execution stops after the IP equals `rip` `stride` times (checked after
/// each instruction), when the program halts, or after `max_instructions`.
///
/// # Errors
/// Never returns `Err` for faults *inside* the speculative execution — those
/// are reported as [`SpeculationResult::Faulted`] because they are an
/// expected consequence of mispredicted start states. The `Result` wrapper
/// exists for future-proofing of caller signatures.
pub fn execute_superstep(
    start: &StateVector,
    rip: u32,
    stride: usize,
    max_instructions: u64,
) -> AscResult<SpeculationResult> {
    execute_superstep_with(start, rip, stride, max_instructions, &mut SpeculationScratch::new())
}

/// Like [`execute_superstep`], but reuses the caller's [`SpeculationScratch`]
/// (reset, not reallocated) — the entry point long-lived workers use.
///
/// # Errors
/// Same contract as [`execute_superstep`].
pub fn execute_superstep_with(
    start: &StateVector,
    rip: u32,
    stride: usize,
    max_instructions: u64,
    scratch: &mut SpeculationScratch,
) -> AscResult<SpeculationResult> {
    let mut state = start.clone();
    let deps = match scratch.deps.as_mut() {
        Some(deps) => {
            deps.reset_for(state.len_bytes());
            deps
        }
        None => scratch.deps.insert(DepVector::new(state.len_bytes())),
    };
    // Tracked *and* two-tier: monomorphized over the dependency sink, so a
    // worker pays decoding once per instruction slot rather than once per
    // retired instruction — and, with the tier enabled, retires the hot
    // inter-occurrence region as fused micro-ops (supersteps are loops by
    // construction, so the recognized IP is the natural block seed).
    let icache = match scratch.icache.as_mut() {
        Some(icache) => {
            icache.reset_for(&state);
            icache
        }
        None => scratch.icache.insert(BlockCache::new(&state, scratch.tier)),
    };
    icache.seed_hot(rip);
    let mut instructions = 0u64;
    let mut occurrences = 0usize;
    let mut reached_rip = false;
    let mut halted = false;
    let target = stride.max(1);

    // Each segment runs to the next recognized-IP occurrence (or halt, or
    // the remaining budget). Instruction counts stay exact at every exit —
    // deadline-killed jobs report precisely how many instructions retired,
    // blocks included.
    while instructions < max_instructions {
        let (retired, exit) =
            run_segment(&mut state, deps, icache, rip, max_instructions - instructions);
        instructions += retired;
        match exit {
            SegmentExit::StopIp => {
                occurrences += 1;
                if occurrences >= target {
                    reached_rip = true;
                    break;
                }
            }
            SegmentExit::Halted => {
                halted = true;
                break;
            }
            SegmentExit::Budget => break,
            SegmentExit::Fault(error) => {
                return Ok(SpeculationResult::Faulted { instructions, error });
            }
        }
    }

    let read_set = deps.read_set();
    let write_set = deps.write_set();
    let entry = CacheEntry::new(
        start.ip(),
        SparseBytes::capture(start, read_set.iter().copied()),
        SparseBytes::capture(&state, write_set.iter().copied()),
        instructions,
    );
    Ok(SpeculationResult::Completed(Box::new(SuperstepOutcome {
        entry,
        end_state: state,
        reached_rip,
        halted,
        instructions,
        read_bytes: read_set.len(),
        write_bytes: write_set.len(),
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_tvm::machine::Machine;

    /// A loop whose head (address of `loop:`) is a natural recognized IP.
    fn looping_program() -> (asc_tvm::program::Program, u32) {
        let program = assemble(
            r#"
            main:
                movi r1, 100
                movi r2, 0
            loop:
                add  r2, r2, r1
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#,
        )
        .unwrap();
        let rip = program.symbol("loop").unwrap();
        (program, rip)
    }

    #[test]
    fn superstep_reaches_next_rip_occurrence() {
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let start = machine.state().clone();
        let result = execute_superstep(&start, rip, 1, 10_000).unwrap();
        let outcome = result.completed().unwrap();
        assert!(outcome.reached_rip);
        assert_eq!(outcome.instructions, 4); // one loop iteration
        assert!(outcome.read_bytes > 0);
        assert!(outcome.write_bytes > 0);
        // The entry must match the state it was captured from and fast-forward
        // a copy of it to the true end state on every written byte.
        assert!(outcome.entry.matches(&start));
        let mut forwarded = start.clone();
        outcome.entry.apply(&mut forwarded);
        assert_eq!(forwarded, outcome.end_state);
    }

    #[test]
    fn entry_reusable_from_a_different_full_state() {
        // The paper's key point: matching on the read set lets one entry be
        // reused even when unrelated parts of the state differ.
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let start = machine.state().clone();
        let outcome = execute_superstep(&start, rip, 1, 10_000).unwrap().completed().unwrap();

        // Perturb memory far away from anything the loop touches.
        let mut other = start.clone();
        other.store_word(4000, 0xdead_beef).unwrap();
        assert!(outcome.entry.matches(&other));
        // Apply and confirm it equals direct execution from the perturbed state.
        let direct = execute_superstep(&other, rip, 1, 10_000).unwrap().completed().unwrap();
        let mut forwarded = other.clone();
        outcome.entry.apply(&mut forwarded);
        assert_eq!(forwarded, direct.end_state);
    }

    #[test]
    fn stride_crosses_multiple_occurrences() {
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let start = machine.state().clone();
        let outcome = execute_superstep(&start, rip, 5, 10_000).unwrap().completed().unwrap();
        assert!(outcome.reached_rip);
        assert_eq!(outcome.instructions, 20); // five iterations
    }

    #[test]
    fn budget_exhaustion_reported() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        let outcome = execute_superstep(&start, rip, 1_000_000, 50).unwrap().completed().unwrap();
        assert!(!outcome.reached_rip);
        assert!(!outcome.halted);
        assert_eq!(outcome.instructions, 50);
    }

    #[test]
    fn halting_superstep_reported() {
        let (program, rip) = looping_program();
        let start = program.initial_state().unwrap();
        // The whole program is ~402 instructions; a large budget halts first.
        let outcome =
            execute_superstep(&start, rip + 4096, 1, 100_000).unwrap().completed().unwrap();
        assert!(outcome.halted);
        assert!(!outcome.reached_rip);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        // One scratch across many jobs — including a job with a different
        // state size in the middle — must produce exactly the entries a
        // fresh-allocation execution produces.
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let mut scratch = SpeculationScratch::new();
        for _ in 0..5 {
            let start = machine.state().clone();
            let reused = execute_superstep_with(&start, rip, 1, 10_000, &mut scratch)
                .unwrap()
                .completed()
                .unwrap();
            let fresh = execute_superstep(&start, rip, 1, 10_000).unwrap().completed().unwrap();
            assert_eq!(reused.entry, fresh.entry);
            assert_eq!(reused.end_state, fresh.end_state);
            // Interleave a differently-sized program so the scratch resizes.
            let other = asc_asm::Assembler::new()
                .mem_size(8192)
                .assemble("spin:\n movi r1, 1\n halt\n")
                .unwrap();
            let other_start = other.initial_state().unwrap();
            assert_ne!(other_start.len_bytes(), start.len_bytes());
            let small = execute_superstep_with(&other_start, 0, 1, 100, &mut scratch).unwrap();
            assert!(small.completed().is_some());
            machine.run_until_ip(rip, 1_000).unwrap();
        }
    }

    #[test]
    fn tier_on_and_off_produce_identical_entries() {
        // The tier must be invisible in every captured artifact: entry,
        // end state and instruction count — that is what lets worker
        // supersteps run tier-1 without perturbing cache semantics.
        let (program, rip) = looping_program();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 1_000).unwrap();
        let start = machine.state().clone();
        let mut on =
            SpeculationScratch::with_tier(TierConfig { hot_threshold: 1, ..TierConfig::default() });
        let mut off = SpeculationScratch::with_tier(TierConfig::disabled());
        for stride in [1usize, 3, 7] {
            let a = execute_superstep_with(&start, rip, stride, 10_000, &mut on)
                .unwrap()
                .completed()
                .unwrap();
            let b = execute_superstep_with(&start, rip, stride, 10_000, &mut off)
                .unwrap()
                .completed()
                .unwrap();
            assert_eq!(a.entry, b.entry, "stride {stride}");
            assert_eq!(a.end_state, b.end_state, "stride {stride}");
            assert_eq!(a.instructions, b.instructions, "stride {stride}");
        }
        let on_stats = on.take_tier_stats();
        assert!(on_stats.tier1_instructions > 0, "{on_stats:?}");
        // Draining resets the counters.
        assert_eq!(on.take_tier_stats(), TierStats::default());
        let off_stats = off.take_tier_stats();
        assert_eq!(off_stats.blocks_compiled, 0, "{off_stats:?}");
        assert_eq!(off_stats.tier1_instructions, 0, "{off_stats:?}");
    }

    #[test]
    fn fault_from_garbage_state_is_contained() {
        let (program, rip) = looping_program();
        let mut garbage = program.initial_state().unwrap();
        garbage.set_ip(3); // misaligned into the middle of an instruction
        let result = execute_superstep(&garbage, rip, 1, 1_000).unwrap();
        match result {
            SpeculationResult::Faulted { .. } => {}
            SpeculationResult::Completed(outcome) => {
                // Depending on the bytes this may decode as something valid;
                // either way nothing panicked and the outcome is well-formed.
                assert!(outcome.instructions <= 1_000);
            }
        }
    }
}
