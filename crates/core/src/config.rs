//! Configuration of the LASC runtime.

use crate::error::{AscError, AscResult};
use asc_tvm::TierConfig;

/// Which predictor complement the runtime builds (§4.4.2 / §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorComplement {
    /// The paper's four algorithms: mean, weatherman, logistic, linear.
    #[default]
    Default,
    /// Several learning-rate variants of each algorithm, as when more cores
    /// are available for hyper-parameter exploration.
    Extended,
}

/// Cadence and horizon knobs of the continuous-speculation planner thread.
///
/// With [`AscConfig::workers`] > 0 and `enabled`, [`accelerate`] spawns a
/// planner that consumes the main thread's stream of recognized-IP
/// occurrences from a bounded drop-oldest channel and keeps the speculation
/// pool's queue topped up with predicted future supersteps *continuously*,
/// instead of re-planning only at cache misses. The planner owns the
/// predictor bank and the worker pool; it re-plans when an occurrence
/// invalidates the predicted trajectory and tops the queue up again whenever
/// a cache insert lands. It only ever chooses *which* speculations run —
/// main-thread results stay bit-for-bit identical with the planner on or
/// off.
///
/// [`accelerate`]: crate::runtime::LascRuntime::accelerate
/// [`AscConfig::workers`]: AscConfig::workers
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Whether the planner thread runs (ignored when `workers == 0`; inline
    /// speculation has no pool to feed). Disabled, a worker-pool run uses the
    /// PR 1 miss-driven dispatch instead.
    pub enabled: bool,
    /// How many predicted supersteps ahead of the main thread the planner
    /// keeps planned (its rollout horizon). The plan is extended back to this
    /// depth whenever confirmations consume its front.
    pub horizon: usize,
    /// Capacity of the occurrence channel from the main thread. The channel
    /// never blocks the sender: when full, the *oldest* queued occurrence is
    /// dropped — a late planner should anchor on fresh states, not stale
    /// ones.
    pub channel_capacity: usize,
    /// How often the planner pays the full predictor-bank update (excitation
    /// tracking + drift detection, ~80µs on TVM-sized states) instead of the
    /// cheap incremental ensemble-only path. 1 trains fully on every
    /// occurrence; the default keeps discovery alive at a fraction of the
    /// cost.
    pub full_observe_interval: usize,
    /// Milliseconds the planner waits for an occurrence before waking up
    /// anyway to re-check for landed cache inserts and top the queue up.
    pub idle_poll_ms: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            enabled: true,
            horizon: 8,
            channel_capacity: 64,
            full_observe_interval: 16,
            idle_poll_ms: 1,
        }
    }
}

/// Knobs of the per-rip speculation value model; see the
/// [`economics`](crate::economics) module docs for the full model. The
/// defaults keep warm-up and predictable workloads fully dispatched (the
/// optimistic prior puts the evidence cap at 1.0 until misses accumulate)
/// while collapsing chaotic rips to shallow, mostly-suppressed speculation.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomicsConfig {
    /// Whether dispatch gating runs at all. Disabled, every candidate
    /// dispatches (the pre-economics behaviour) but decisions are still
    /// counted, so gated and ungated reports stay comparable.
    pub enabled: bool,
    /// Half-life, in lookup outcomes, of the realized hit-rate EMA: after
    /// this many all-miss lookups the rate halves. Shorter adapts faster;
    /// longer rides out bursty hit streaks.
    pub half_life: f64,
    /// The prior hit rate a fresh rip starts from — and the level a single
    /// realized hit re-admits a suppressed rip back to. Must be high enough
    /// that warm-up speculation is never suppressed before evidence exists.
    pub optimism: f64,
    /// Minimum `P(hit) / overhead` ratio a candidate must clear to
    /// dispatch: expected benefit must be at least this fraction of the
    /// worker cost of executing the rollout.
    pub dispatch_threshold: f64,
    /// Cost multiplier of speculative execution relative to the main
    /// thread's: a speculating core pays dependency tracking and insert
    /// bookkeeping on top of the superstep itself.
    pub speculation_overhead: f64,
    /// Slack factor on the realized-rate evidence cap (`cap = slack ×
    /// realized`): how much benefit of the doubt the model's confidence
    /// gets beyond observed hit rates.
    pub calibration_slack: f64,
    /// Floor on the adaptive per-rip rollout horizon (suppressed rips still
    /// roll out this deep so probe dispatches have candidates).
    pub min_horizon: usize,
    /// Ceiling on the adaptive per-rip rollout horizon. The effective depth
    /// is additionally bounded by the mode's legacy depth
    /// ([`AscConfig::rollout_depth`] miss-driven, [`PlannerConfig::horizon`]
    /// planned).
    pub max_horizon: usize,
    /// Consecutive value-test refusals after which one candidate is
    /// dispatched anyway — the leak that lets a written-off rip produce the
    /// hit that re-admits it.
    pub probe_interval: u64,
}

impl Default for EconomicsConfig {
    fn default() -> Self {
        EconomicsConfig {
            enabled: true,
            half_life: 64.0,
            optimism: 0.5,
            dispatch_threshold: 0.02,
            speculation_overhead: 1.25,
            calibration_slack: 4.0,
            min_horizon: 1,
            max_horizon: 32,
            probe_interval: 64,
        }
    }
}

/// Thresholds of the degrade-to-inline circuit breaker.
///
/// # Failure model
///
/// The paper's safety argument makes speculation free to *mispredict*: a
/// trajectory whose read set no longer matches the live state is simply
/// discarded. The supervised runtime extends that argument to *execution*
/// failures — a worker panic, a speculation job overrunning its deadline, a
/// corrupted or hash-colliding cache entry — by containing each one
/// ([`catch_unwind`](std::panic::catch_unwind), deadline kills, checksum
/// verification at apply time) and counting it into
/// [`HealthStats`](crate::supervisor::HealthStats). The breaker is the
/// back-stop on top of that containment: when failures cluster, the
/// speculation machinery itself is sick (a poisoned program region, a
/// corrupted cache, a dying thread pool) and every further speculation is
/// overhead with no expected payoff. Tripping to inline execution caps the
/// damage at plain-execution speed — the runtime must never be
/// *slower-than-inline* because its accelerator is broken.
///
/// The breaker watches a sliding window of the last [`window`] *events*. A
/// **failure** event is a worker panic, a deadline kill, or a cache
/// integrity reject (checksum or value-hash collision); a **success** event
/// is any normally retired speculation job, including ordinary faulted or
/// budget-exhausted speculations — those are expected outcomes, not
/// sickness. When the window holds at least [`min_failures`] failures *and*
/// the failure fraction reaches [`failure_threshold`], the breaker opens:
/// the runtime stops dispatching (and stops speculating inline) for
/// [`cooldown_occurrences`] recognized-IP occurrences, then half-opens and
/// probes: speculation resumes, and [`probe_successes`] consecutive
/// successes re-close the breaker while a single failure re-opens it with
/// the cooldown doubled (capped at 64× — an accelerator that keeps
/// relapsing ends up effectively inline, which is exactly the guarantee).
///
/// [`window`]: BreakerConfig::window
/// [`min_failures`]: BreakerConfig::min_failures
/// [`failure_threshold`]: BreakerConfig::failure_threshold
/// [`cooldown_occurrences`]: BreakerConfig::cooldown_occurrences
/// [`probe_successes`]: BreakerConfig::probe_successes
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Whether the breaker runs at all. Disabled, failures are still
    /// contained and counted, but never trip speculation off.
    pub enabled: bool,
    /// Number of most-recent events the failure rate is measured over.
    pub window: usize,
    /// Failure fraction of the window at which the breaker opens.
    pub failure_threshold: f64,
    /// Minimum number of failures in the window before the rate is even
    /// consulted — keeps one early panic in a short history from tripping a
    /// healthy runtime.
    pub min_failures: u32,
    /// Recognized-IP occurrences the breaker stays open before half-opening
    /// to probe. Doubles on every consecutive re-trip (capped at 64×).
    pub cooldown_occurrences: u64,
    /// Consecutive successful speculation events that close a half-open
    /// breaker.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            window: 32,
            failure_threshold: 0.5,
            min_failures: 8,
            cooldown_occurrences: 256,
            probe_successes: 8,
        }
    }
}

/// Distributed trajectory-cache tier: a TCP cache peer plus on-disk
/// snapshots, layered in front of the local sharded cache by
/// [`crate::remote`].
///
/// The tier is strictly best-effort: a dead, slow or absent peer and a
/// missing or corrupt snapshot all degrade to local-only operation, never to
/// an error or a wrong result — the same economy as speculation itself. The
/// remote probe runs only on a local cache miss, bounded by
/// [`deadline_ms`](RemoteConfig::deadline_ms); once
/// [`max_retries`](RemoteConfig::max_retries) consecutive attempts have
/// failed the client marks the peer dead and stops trying, so a killed peer
/// costs at most `max_retries` deadlines of wall clock over the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteConfig {
    /// Whether the remote tier runs at all. Disabled (the default), the
    /// runtime touches no sockets and no files.
    pub enabled: bool,
    /// Cache-peer address (`host:port`) to GET from and stream inserts to;
    /// `None` runs snapshot-only (still useful for warm starts).
    pub peer: Option<String>,
    /// Socket read/write deadline for one remote operation, in
    /// milliseconds. A peer that cannot answer within this is treated as a
    /// miss (and counted in `remote_timeouts`).
    pub deadline_ms: u64,
    /// Base backoff after a failed peer operation, in milliseconds; the
    /// `n`-th consecutive failure waits `2ⁿ⁻¹` times this (capped at 64×)
    /// before the next attempt is even allowed. While backing off, remote
    /// probes return a miss immediately — the main loop never waits.
    pub retry_backoff_ms: u64,
    /// Consecutive failed peer operations after which the client declares
    /// the peer dead for the rest of the run and degrades to local-only.
    pub max_retries: u32,
    /// Bounded write-behind queue between local inserts and the peer
    /// stream. When the streaming thread falls behind, the *oldest* queued
    /// entry is dropped (counted in `puts_dropped`) — inserts from the main
    /// loop and workers never block on the network.
    pub write_behind_capacity: usize,
    /// Snapshot file to load into the local cache before the run starts;
    /// `None` starts cold. A missing or unreadable file is counted and
    /// ignored, and individually corrupt entries are skipped.
    pub snapshot_load: Option<std::path::PathBuf>,
    /// Snapshot file to write the local cache to after the run finishes;
    /// `None` saves nothing.
    pub snapshot_save: Option<std::path::PathBuf>,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            enabled: false,
            peer: None,
            deadline_ms: 20,
            retry_backoff_ms: 50,
            max_retries: 3,
            write_behind_capacity: 256,
            snapshot_load: None,
            snapshot_save: None,
        }
    }
}

/// Crash-durable checkpointing of resumable run state; see
/// [`crate::checkpoint`] for the file format and the exact set of state that
/// is (and deliberately is not) saved.
///
/// Checkpoints are written at recognized-IP occurrence boundaries — the only
/// points where the machine state, the counters and the learned state are
/// all simultaneously coherent — every [`interval`](CheckpointConfig::interval)
/// occurrences, atomically (tmp + rename), keeping the last
/// [`keep`](CheckpointConfig::keep) files. A resumed run restores the newest
/// *intact* checkpoint and continues to a final state bit-identical to the
/// uninterrupted run; a torn, truncated or bit-flipped file is skipped in
/// favour of an older intact one (or a fresh start), never loaded wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Whether checkpointing runs at all. Disabled (the default), the
    /// runtime touches no files.
    pub enabled: bool,
    /// Directory checkpoint files live in (`ckpt-<seq>.asc` plus an optional
    /// `.cache` trajectory-cache sibling). Created if absent. Required when
    /// enabled.
    pub directory: Option<std::path::PathBuf>,
    /// Recognized-IP occurrences between checkpoint writes.
    pub interval: u64,
    /// How many checkpoint files to retain; older ones are pruned after each
    /// successful write. At least 2 is recommended so damage to the newest
    /// file still leaves an intact predecessor.
    pub keep: usize,
    /// Whether to restore from the newest intact checkpoint in
    /// [`directory`](CheckpointConfig::directory) before running. With no
    /// intact checkpoint present the run starts fresh.
    pub resume: bool,
    /// Whether each checkpoint also saves the trajectory cache alongside (a
    /// `.cache` sibling via [`crate::remote::snapshot`]). The cache is pure
    /// acceleration state — resume is bit-identical with or without it —
    /// but reloading it preserves warm-start speed.
    pub snapshot_cache: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: false,
            directory: None,
            interval: 256,
            keep: 3,
            resume: false,
            snapshot_cache: true,
        }
    }
}

/// The run-level liveness watchdog; see
/// [`crate::supervisor::Watchdog`]. The main loop ticks a heartbeat once per
/// recognized-IP occurrence; a watchdog thread that observes no tick for
/// [`deadline_ms`](WatchdogConfig::deadline_ms) declares the run stalled —
/// the failure class (livelock, a hung lock, a wedged pool) the windowed
/// circuit breaker cannot see, because nothing *fails* — dumps diagnostics
/// and escalates: force-open the breaker, then tear down the pool and finish
/// inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Whether the watchdog thread runs during [`accelerate`].
    ///
    /// [`accelerate`]: crate::runtime::LascRuntime::accelerate
    pub enabled: bool,
    /// Milliseconds without an occurrence tick before the run counts as
    /// stalled and the next escalation stage fires.
    pub deadline_ms: u64,
    /// How often the watchdog thread polls the heartbeat, in milliseconds.
    pub poll_ms: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { enabled: true, deadline_ms: 10_000, poll_ms: 500 }
    }
}

/// Tunable parameters of the LASC runtime.
///
/// The defaults reproduce the paper's policies scaled to TVM-sized programs:
/// supersteps must be long enough to outweigh lookup costs, the recognizer
/// converges within a bounded exploration prefix, and the allocator rolls
/// predictions a bounded number of supersteps into the future.
#[derive(Debug, Clone, PartialEq)]
pub struct AscConfig {
    /// Instructions the recognizer observes before scoring candidate IPs.
    pub explore_instructions: u64,
    /// Occurrences of each candidate IP used to evaluate its predictability.
    pub evaluation_occurrences: usize,
    /// Occurrences of each candidate IP used to train its throw-away
    /// predictor bank before scored evaluation begins.
    pub evaluation_training: usize,
    /// Number of candidate IPs evaluated for predictability.
    pub candidate_count: usize,
    /// Minimum number of instructions a superstep must span for speculation
    /// from it to be worthwhile (the paper uses 10⁴ for its benchmarks; TVM
    /// programs are smaller so the default is lower but the same idea).
    pub min_superstep: u64,
    /// Maximum number of instructions a single speculative execution may run
    /// before giving up (guards against a wrong prediction running away).
    pub max_superstep: u64,
    /// How many supersteps ahead the allocator rolls out predictions.
    pub rollout_depth: usize,
    /// Multiplicative weight update applied to a predictor that mispredicts a
    /// bit (the RWMA `beta`).
    pub ensemble_beta: f64,
    /// Which predictor complement to instantiate.
    pub predictors: PredictorComplement,
    /// A bit must change at least this many times between occurrences of the
    /// recognized IP to be treated as an excitation (the paper's default: once).
    pub excitation_threshold: u32,
    /// Number of occurrences used to warm up the excitation map before
    /// predictors start training.
    pub excitation_warmup: usize,
    /// Upper bound on the number of excitation bits modelled per recognized
    /// IP (most frequently changing bits win); bounds learner memory for
    /// programs that touch fresh output locations every superstep.
    pub max_excited_bits: usize,
    /// How many observations of per-predictor mistake history the ensemble
    /// retains (a ring buffer of packed mistake masks). Hindsight predictor
    /// *selection* uses never-evicted cumulative counts; this bounds only
    /// the window the Table-2 whole-state hindsight miss rate is measured
    /// over — and, crucially, bounds ensemble memory for arbitrarily long
    /// occurrence streams.
    pub mistake_log_capacity: usize,
    /// Maximum number of entries the trajectory cache retains.
    pub cache_capacity: usize,
    /// The trajectory cache's insert-time usefulness filter: a read-set
    /// group whose entries have served zero hits after this many lookup
    /// probes stops accepting inserts (and a rip drowning in such
    /// proven-junk groups stops admitting new shapes), bounding junk growth
    /// on chaotic workloads where speculation rarely pays. `0` disables the
    /// filter. See [`TrajectoryCache`](crate::cache::TrajectoryCache)'s
    /// module docs for the exact policy.
    pub cache_junk_threshold: u64,
    /// Upper bound on total instructions executed (safety net for tests).
    pub instruction_budget: u64,
    /// Number of speculation worker threads [`accelerate`] runs supersteps
    /// on concurrently with the main thread. `0` executes speculation inline
    /// on the main thread (deterministic scheduling, useful for tests and
    /// single-core machines). Results are bit-for-bit identical either way —
    /// workers only ever *add* cache entries whose application is equivalent
    /// to executing the skipped instructions.
    ///
    /// [`accelerate`]: crate::runtime::LascRuntime::accelerate
    pub workers: usize,
    /// Continuous-speculation planner knobs; see [`PlannerConfig`]. Only
    /// consulted when `workers > 0`.
    pub planner: PlannerConfig,
    /// Per-rip speculation value model; see [`EconomicsConfig`]. Applies in
    /// every speculating mode (inline, miss-driven pool, planner).
    pub economics: EconomicsConfig,
    /// Per-job instruction deadline for speculation jobs. A job that has
    /// executed this many instructions without finishing is killed and
    /// counted as a deadline kill in [`HealthStats`] (and as a breaker
    /// failure). `0` disables the deadline: jobs run to the per-job
    /// [`max_superstep`](AscConfig::max_superstep)-derived budget as before.
    /// The deadline rides the existing instruction-budget plumbing in
    /// `execute_superstep`, so enforcement costs nothing extra per step.
    ///
    /// [`HealthStats`]: crate::supervisor::HealthStats
    pub job_deadline_instructions: u64,
    /// How many times the supervisor respawns a panicked speculation worker
    /// before giving up on that slot and shrinking the pool. Each respawn
    /// backs off exponentially from
    /// [`worker_restart_backoff_ms`](AscConfig::worker_restart_backoff_ms).
    pub max_worker_restarts: u32,
    /// Base backoff before the first worker respawn, in milliseconds; the
    /// `n`-th respawn of a slot waits `2ⁿ⁻¹` times this (capped at 64×).
    pub worker_restart_backoff_ms: u64,
    /// Degrade-to-inline circuit-breaker thresholds; see [`BreakerConfig`]
    /// for the failure model.
    pub breaker: BreakerConfig,
    /// Distributed cache tier (TCP peer + disk snapshots); see
    /// [`RemoteConfig`]. Disabled by default.
    pub remote: RemoteConfig,
    /// Tier-1 execution (superinstruction fusion + block-threaded dispatch
    /// of hot straight-line regions); see [`TierConfig`], re-exported from
    /// `asc_tvm`. Enabled by default — results are bit-identical with the
    /// tier on or off, only the retirement rate changes. Applies to the
    /// main thread and to every speculation worker in all three modes
    /// (inline, miss-driven pool, planner).
    pub tier: TierConfig,
    /// Crash-durable checkpoint/resume; see [`CheckpointConfig`]. Disabled
    /// by default.
    pub checkpoint: CheckpointConfig,
    /// Run-level liveness watchdog; see [`WatchdogConfig`].
    pub watchdog: WatchdogConfig,
    /// Deterministic fault-injection plan driving the supervised runtime's
    /// test harness; `None` injects nothing. Only exists under the
    /// `fault-inject` cargo feature — production builds have no injection
    /// code at all.
    #[cfg(feature = "fault-inject")]
    pub fault: Option<crate::fault::FaultPlan>,
}

impl Default for AscConfig {
    fn default() -> Self {
        AscConfig {
            explore_instructions: 60_000,
            evaluation_occurrences: 8,
            evaluation_training: 10,
            candidate_count: 12,
            min_superstep: 200,
            max_superstep: 2_000_000,
            rollout_depth: 32,
            ensemble_beta: 0.5,
            predictors: PredictorComplement::Default,
            excitation_threshold: 1,
            excitation_warmup: 3,
            max_excited_bits: 4096,
            mistake_log_capacity: 4096,
            cache_capacity: 1 << 16,
            cache_junk_threshold: crate::cache::DEFAULT_JUNK_THRESHOLD,
            instruction_budget: 2_000_000_000,
            workers: 0,
            planner: PlannerConfig::default(),
            economics: EconomicsConfig::default(),
            job_deadline_instructions: 0,
            max_worker_restarts: 8,
            worker_restart_backoff_ms: 1,
            breaker: BreakerConfig::default(),
            remote: RemoteConfig::default(),
            tier: TierConfig::default(),
            checkpoint: CheckpointConfig::default(),
            watchdog: WatchdogConfig::default(),
            #[cfg(feature = "fault-inject")]
            fault: None,
        }
    }
}

impl AscConfig {
    /// A configuration suited to the small programs used in unit tests.
    pub fn for_tests() -> Self {
        AscConfig {
            explore_instructions: 5_000,
            evaluation_occurrences: 6,
            evaluation_training: 10,
            candidate_count: 8,
            min_superstep: 50,
            rollout_depth: 8,
            ..AscConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`AscError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> AscResult<()> {
        if self.explore_instructions == 0 {
            return Err(AscError::InvalidConfig("explore_instructions must be positive".into()));
        }
        if self.min_superstep == 0 || self.max_superstep < self.min_superstep {
            return Err(AscError::InvalidConfig(
                "superstep bounds must satisfy 0 < min <= max".into(),
            ));
        }
        if self.rollout_depth == 0 {
            return Err(AscError::InvalidConfig("rollout_depth must be at least 1".into()));
        }
        if !(self.ensemble_beta > 0.0 && self.ensemble_beta < 1.0) {
            return Err(AscError::InvalidConfig("ensemble_beta must be in (0, 1)".into()));
        }
        if self.candidate_count == 0 || self.evaluation_occurrences == 0 {
            return Err(AscError::InvalidConfig(
                "candidate_count and evaluation_occurrences must be positive".into(),
            ));
        }
        if self.cache_capacity == 0 {
            return Err(AscError::InvalidConfig("cache_capacity must be positive".into()));
        }
        if self.mistake_log_capacity == 0 {
            return Err(AscError::InvalidConfig("mistake_log_capacity must be positive".into()));
        }
        if self.workers > 4096 {
            return Err(AscError::InvalidConfig(
                "workers must be at most 4096 (0 runs speculation inline)".into(),
            ));
        }
        if self.breaker.enabled {
            if self.breaker.window == 0 {
                return Err(AscError::InvalidConfig("breaker window must be at least 1".into()));
            }
            if !(self.breaker.failure_threshold > 0.0 && self.breaker.failure_threshold <= 1.0) {
                return Err(AscError::InvalidConfig(
                    "breaker failure_threshold must be in (0, 1]".into(),
                ));
            }
            if self.breaker.probe_successes == 0 {
                return Err(AscError::InvalidConfig(
                    "breaker probe_successes must be at least 1".into(),
                ));
            }
            if self.breaker.cooldown_occurrences == 0 {
                return Err(AscError::InvalidConfig(
                    "breaker cooldown_occurrences must be at least 1".into(),
                ));
            }
        }
        if self.planner.enabled {
            if self.planner.horizon == 0 {
                return Err(AscError::InvalidConfig("planner horizon must be at least 1".into()));
            }
            if self.planner.channel_capacity == 0 {
                return Err(AscError::InvalidConfig(
                    "planner channel_capacity must be at least 1".into(),
                ));
            }
            if self.planner.full_observe_interval == 0 {
                return Err(AscError::InvalidConfig(
                    "planner full_observe_interval must be at least 1".into(),
                ));
            }
        }
        if self.remote.enabled {
            if self.remote.peer.is_none()
                && self.remote.snapshot_load.is_none()
                && self.remote.snapshot_save.is_none()
            {
                return Err(AscError::InvalidConfig(
                    "remote tier enabled with no peer and no snapshot paths".into(),
                ));
            }
            if self.remote.deadline_ms == 0 {
                return Err(AscError::InvalidConfig(
                    "remote deadline_ms must be at least 1".into(),
                ));
            }
            if self.remote.retry_backoff_ms == 0 {
                return Err(AscError::InvalidConfig(
                    "remote retry_backoff_ms must be at least 1".into(),
                ));
            }
            if self.remote.max_retries == 0 {
                return Err(AscError::InvalidConfig(
                    "remote max_retries must be at least 1".into(),
                ));
            }
            if self.remote.write_behind_capacity == 0 {
                return Err(AscError::InvalidConfig(
                    "remote write_behind_capacity must be at least 1".into(),
                ));
            }
        }
        if self.tier.enabled {
            if self.tier.hot_threshold == 0 {
                return Err(AscError::InvalidConfig(
                    "tier hot_threshold must be at least 1".into(),
                ));
            }
            if self.tier.max_block_len < 2 {
                return Err(AscError::InvalidConfig(
                    "tier max_block_len must be at least 2 (a block fuses multiple instructions)"
                        .into(),
                ));
            }
        }
        if self.checkpoint.enabled {
            if self.checkpoint.directory.is_none() {
                return Err(AscError::InvalidConfig("checkpoint enabled with no directory".into()));
            }
            if self.checkpoint.interval == 0 {
                return Err(AscError::InvalidConfig(
                    "checkpoint interval must be at least 1".into(),
                ));
            }
            if self.checkpoint.keep == 0 {
                return Err(AscError::InvalidConfig("checkpoint keep must be at least 1".into()));
            }
        }
        if self.watchdog.enabled && (self.watchdog.deadline_ms == 0 || self.watchdog.poll_ms == 0) {
            return Err(AscError::InvalidConfig(
                "watchdog deadline_ms and poll_ms must be at least 1".into(),
            ));
        }
        if self.economics.enabled {
            if !(self.economics.half_life >= 1.0 && self.economics.half_life.is_finite()) {
                return Err(AscError::InvalidConfig(
                    "economics half_life must be at least 1".into(),
                ));
            }
            if !(self.economics.optimism > 0.0 && self.economics.optimism <= 1.0) {
                return Err(AscError::InvalidConfig("economics optimism must be in (0, 1]".into()));
            }
            if !(self.economics.dispatch_threshold > 0.0 && self.economics.dispatch_threshold < 1.0)
            {
                return Err(AscError::InvalidConfig(
                    "economics dispatch_threshold must be in (0, 1)".into(),
                ));
            }
            if !(self.economics.speculation_overhead > 0.0
                && self.economics.speculation_overhead.is_finite())
            {
                return Err(AscError::InvalidConfig(
                    "economics speculation_overhead must be positive".into(),
                ));
            }
            if !(self.economics.calibration_slack >= 1.0
                && self.economics.calibration_slack.is_finite())
            {
                return Err(AscError::InvalidConfig(
                    "economics calibration_slack must be at least 1".into(),
                ));
            }
            if self.economics.min_horizon == 0
                || self.economics.max_horizon < self.economics.min_horizon
            {
                return Err(AscError::InvalidConfig(
                    "economics horizons must satisfy 0 < min <= max".into(),
                ));
            }
            if self.economics.probe_interval == 0 {
                return Err(AscError::InvalidConfig(
                    "economics probe_interval must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        AscConfig::default().validate().unwrap();
        AscConfig::for_tests().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = AscConfig { rollout_depth: 0, ..AscConfig::default() };
        assert!(c.validate().is_err());

        let c = AscConfig { ensemble_beta: 1.0, ..AscConfig::default() };
        assert!(c.validate().is_err());

        let c = AscConfig { max_superstep: 1, min_superstep: 10, ..AscConfig::default() };
        assert!(c.validate().is_err());

        let c = AscConfig { cache_capacity: 0, ..AscConfig::default() };
        assert!(c.validate().is_err());

        let c = AscConfig { mistake_log_capacity: 0, ..AscConfig::default() };
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.planner.horizon = 0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.planner.channel_capacity = 0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.breaker.window = 0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.breaker.failure_threshold = 0.0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.breaker.failure_threshold = 1.5;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.breaker.probe_successes = 0;
        assert!(c.validate().is_err());

        // A disabled breaker's knobs are not validated: it never consults
        // them.
        let mut c = AscConfig::default();
        c.breaker.enabled = false;
        c.breaker.window = 0;
        assert!(c.validate().is_ok());

        // Disabled planner knobs are not validated: the planner never runs.
        let mut c = AscConfig::default();
        c.planner.enabled = false;
        c.planner.horizon = 0;
        assert!(c.validate().is_ok());

        let mut c = AscConfig::default();
        c.economics.half_life = 0.5;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.economics.optimism = 0.0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.economics.dispatch_threshold = 1.0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.economics.calibration_slack = 0.5;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.economics.min_horizon = 4;
        c.economics.max_horizon = 2;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.economics.probe_interval = 0;
        assert!(c.validate().is_err());

        // A disabled value model's knobs are not validated: every candidate
        // dispatches without consulting them.
        let mut c = AscConfig::default();
        c.economics.enabled = false;
        c.economics.probe_interval = 0;
        assert!(c.validate().is_ok());

        // An enabled remote tier needs a reason to exist (peer or snapshot)
        // and sane bounds.
        let mut c = AscConfig::default();
        c.remote.enabled = true;
        assert!(c.validate().is_err(), "no peer and no snapshots must reject");
        c.remote.peer = Some("127.0.0.1:9999".into());
        assert!(c.validate().is_ok());

        let mut c = AscConfig::default();
        c.remote.enabled = true;
        c.remote.snapshot_load = Some("warm.snap".into());
        assert!(c.validate().is_ok(), "snapshot-only remote tier is valid");
        c.remote.deadline_ms = 0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.remote.enabled = true;
        c.remote.peer = Some("127.0.0.1:9999".into());
        c.remote.retry_backoff_ms = 0;
        assert!(c.validate().is_err());
        c.remote.retry_backoff_ms = 1;
        c.remote.max_retries = 0;
        assert!(c.validate().is_err());
        c.remote.max_retries = 1;
        c.remote.write_behind_capacity = 0;
        assert!(c.validate().is_err());

        // Disabled remote knobs are not validated: the tier never starts.
        let mut c = AscConfig::default();
        c.remote.deadline_ms = 0;
        assert!(c.validate().is_ok());

        let mut c = AscConfig::default();
        c.tier.hot_threshold = 0;
        assert!(c.validate().is_err());

        let mut c = AscConfig::default();
        c.tier.max_block_len = 1;
        assert!(c.validate().is_err());

        // Disabled tier knobs are not validated: blocks never compile.
        let mut c = AscConfig::default();
        c.tier.enabled = false;
        c.tier.hot_threshold = 0;
        assert!(c.validate().is_ok());

        // An enabled checkpoint needs a directory and sane bounds.
        let mut c = AscConfig::default();
        c.checkpoint.enabled = true;
        assert!(c.validate().is_err(), "checkpointing with no directory must reject");
        c.checkpoint.directory = Some("ckpts".into());
        assert!(c.validate().is_ok());
        c.checkpoint.interval = 0;
        assert!(c.validate().is_err());
        c.checkpoint.interval = 1;
        c.checkpoint.keep = 0;
        assert!(c.validate().is_err());

        // Disabled checkpoint knobs are not validated: nothing is written.
        let mut c = AscConfig::default();
        c.checkpoint.interval = 0;
        assert!(c.validate().is_ok());

        let mut c = AscConfig::default();
        c.watchdog.deadline_ms = 0;
        assert!(c.validate().is_err());
        c.watchdog.enabled = false;
        assert!(c.validate().is_ok(), "disabled watchdog knobs are not validated");

        let mut c = AscConfig::default();
        c.watchdog.poll_ms = 0;
        assert!(c.validate().is_err());
    }
}
