//! The cache-peer server: a TCP process other runs GET from, PUT to, and
//! bulk-transfer snapshots out of.
//!
//! One blocking accept thread, one thread per connection, all under the
//! supervision layer's failure model: a connection handler that panics is
//! contained by `catch_unwind` and counted in the shared
//! [`HealthMonitor`] exactly like a speculation-worker panic — the peer
//! keeps serving its other connections. Malformed frames are counted in
//! [`CachePeer::frames_rejected`] and the offending connection dropped (a
//! framing error means the stream lost sync; there is nothing to salvage),
//! but a structurally valid `Put` whose entry fails its checksum only
//! drops that entry. The peer's store is its own [`TrajectoryCache`] with
//! the junk filter disabled: the peer sees no lookups of its own, so
//! probe-based junk evidence would never accumulate and the filter would
//! only starve admission.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::cache::{CacheEntry, CacheStats, TrajectoryCache};
use crate::remote::codec::{self, Frame, FrameKind};
use crate::supervisor::HealthMonitor;

/// The injector handle [`CachePeer::bind`] threads through: the fault state
/// under `fault-inject`, nothing otherwise (so production builds carry no
/// injection plumbing at all).
#[cfg(feature = "fault-inject")]
type FaultHandle = Option<Arc<crate::fault::FaultState>>;
#[cfg(not(feature = "fault-inject"))]
type FaultHandle = ();

/// The no-injection handle, spelled so both cfg arms type-check at the
/// `bind` call site (a unit literal under `not(fault-inject)`).
#[cfg(feature = "fault-inject")]
const NO_FAULTS: FaultHandle = None;
#[cfg(not(feature = "fault-inject"))]
const NO_FAULTS: FaultHandle = ();

/// State shared between the accept loop and every connection handler.
struct PeerShared {
    store: Arc<TrajectoryCache>,
    health: Arc<HealthMonitor>,
    frames_rejected: AtomicU64,
    shutting_down: AtomicBool,
    /// One cloned handle per live connection so shutdown can unblock their
    /// reads; a connection removes nothing (the list is short-lived and
    /// shutdown-only), it just tolerates already-closed sockets.
    conns: Mutex<Vec<TcpStream>>,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<crate::fault::FaultState>>,
}

impl PeerShared {
    /// Frames the payload and — under fault injection — flips a payload bit
    /// on entry-carrying replies before they leave the peer, exercising the
    /// client's rejection path over a real socket.
    fn framed_reply(&self, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
        #[allow(unused_mut)]
        let mut bytes = codec::encode_frame(kind, payload);
        #[cfg(feature = "fault-inject")]
        if matches!(kind, FrameKind::GetHit | FrameKind::Entry) {
            if let Some(faults) = &self.faults {
                if let Some(selector) = faults.sample_frame_corruption() {
                    codec::corrupt_frame(&mut bytes, selector);
                    self.health.record_injected_faults(1);
                }
            }
        }
        bytes
    }
}

/// A running cache-peer server; see the module docs. Dropping it without
/// [`shutdown`](CachePeer::shutdown) leaves the threads serving until the
/// process exits — the CI warm-start scenario relies on exactly that
/// (process B's runs end while the peer keeps serving).
pub struct CachePeer {
    addr: SocketAddr,
    shared: Arc<PeerShared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl CachePeer {
    /// Binds and starts serving on `addr` (use port 0 for an ephemeral
    /// port; [`local_addr`](CachePeer::local_addr) reports the real one).
    /// `capacity` bounds the peer's store.
    ///
    /// # Errors
    /// Propagates bind/spawn failures — a peer that cannot serve should
    /// fail loudly at startup; it is the *clients* that degrade gracefully.
    pub fn bind(addr: &str, capacity: usize) -> io::Result<CachePeer> {
        Self::bind_inner(addr, capacity, NO_FAULTS)
    }

    /// [`bind`](CachePeer::bind) with a fault injector corrupting a
    /// deterministic fraction of entry-carrying reply frames.
    #[cfg(feature = "fault-inject")]
    pub fn bind_faulty(
        addr: &str,
        capacity: usize,
        faults: Arc<crate::fault::FaultState>,
    ) -> io::Result<CachePeer> {
        Self::bind_inner(addr, capacity, Some(faults))
    }

    fn bind_inner(addr: &str, capacity: usize, _faults: FaultHandle) -> io::Result<CachePeer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(PeerShared {
            store: Arc::new(TrajectoryCache::with_junk_threshold(capacity, 0)),
            health: Arc::new(HealthMonitor::default()),
            frames_rejected: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            #[cfg(feature = "fault-inject")]
            faults: _faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("asc-peer-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(CachePeer { addr, shared, accept_handle: Some(accept_handle) })
    }

    /// The address the peer is actually serving on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The peer store's counters (its `inserted` is the PUT volume; it
    /// performs no lookups of its own, so `queries` stays zero).
    pub fn stats(&self) -> CacheStats {
        self.shared.store.stats()
    }

    /// Live entries in the peer's store.
    pub fn len(&self) -> usize {
        self.shared.store.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Malformed or checksum-failing frames received (and dropped) so far.
    pub fn frames_rejected(&self) -> u64 {
        self.shared.frames_rejected.load(Ordering::Relaxed)
    }

    /// Contained connection-handler panics so far.
    pub fn contained_panics(&self) -> u64 {
        self.shared.health.worker_panics()
    }

    /// Pre-warms the peer's store from a snapshot file, returning
    /// `(loaded, rejected)` — the `serve` half of the warm-start story.
    ///
    /// # Errors
    /// Propagates open/read failures on the snapshot file itself; corrupt
    /// individual entries are counted in `rejected`, not errors.
    pub fn load_snapshot(&self, path: &std::path::Path) -> io::Result<(u64, u64)> {
        let load = crate::remote::snapshot::load(&self.shared.store, path)?;
        Ok((load.loaded, load.rejected))
    }

    /// Stops accepting, unblocks and joins every connection handler, then
    /// joins the accept thread. Entries already stored are dropped with the
    /// peer — persistence is the snapshot tier's job.
    pub fn shutdown(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the handlers first, then the accept loop: a handler
        // blocked in read would otherwise never observe the flag.
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for conn in conns {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // Wake the accept loop with a throw-away connection; it checks the
        // flag before handling anything.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Arc<PeerShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while let Ok((stream, _)) = listener.accept() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).push(clone);
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new().name("asc-peer-conn".into()).spawn(move || {
            // Same containment as a speculation worker: a panicking handler
            // is counted and its connection dies; the peer keeps serving.
            if catch_unwind(AssertUnwindSafe(|| serve_connection(stream, &conn_shared))).is_err() {
                conn_shared.health.record_worker_panics(1);
            }
        });
        match spawned {
            Ok(handle) => handlers.push(handle),
            Err(_) => shared.health.record_spawn_failures(1),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One connection's request/reply loop. Any I/O failure (including the
/// client closing) ends the loop; an `InvalidData` framing error is counted
/// first.
fn serve_connection(stream: TcpStream, shared: &PeerShared) {
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let frame = match codec::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(error) => {
                if error.kind() == io::ErrorKind::InvalidData {
                    shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        };
        if handle_frame(&frame, shared, &mut writer).is_err() {
            return;
        }
    }
}

fn handle_frame(frame: &Frame, shared: &PeerShared, writer: &mut TcpStream) -> io::Result<()> {
    match frame.kind {
        FrameKind::Get => {
            let reply = match codec::decode_get(&frame.payload) {
                Some((rip, pairs)) => match shared.store.probe_by_hashes(rip, &pairs) {
                    Some(entry) => {
                        shared.framed_reply(FrameKind::GetHit, &codec::encode_entry(&entry))
                    }
                    None => codec::encode_frame(FrameKind::GetMiss, &[]),
                },
                None => {
                    shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
                    codec::encode_frame(FrameKind::GetMiss, &[])
                }
            };
            writer.write_all(&reply)
        }
        // Write-behind is fire-and-forget: no reply, and a checksum-failing
        // entry costs exactly that entry.
        FrameKind::Put => {
            match codec::decode_entry(&frame.payload) {
                Some(entry) => {
                    shared.store.insert(entry);
                }
                None => {
                    shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        }
        FrameKind::StatsRequest => {
            let reply =
                codec::encode_frame(FrameKind::StatsReply, &shared.store.stats().to_le_bytes());
            writer.write_all(&reply)
        }
        FrameKind::SnapshotRequest => {
            // Export is a point-in-time walk (see `for_each_entry`); the
            // count is taken from the collected batch so header and stream
            // always agree.
            let mut entries: Vec<CacheEntry> = Vec::new();
            shared.store.for_each_entry(|entry| entries.push(entry.clone()));
            let header = codec::encode_frame(
                FrameKind::SnapshotHeader,
                &codec::encode_snapshot_header(&shared.store.stats(), entries.len() as u64),
            );
            writer.write_all(&header)?;
            for entry in &entries {
                let framed = shared.framed_reply(FrameKind::Entry, &codec::encode_entry(entry));
                writer.write_all(&framed)?;
            }
            writer.write_all(&codec::encode_frame(FrameKind::SnapshotEnd, &[]))
        }
        // A reply kind arriving at the server is a protocol violation.
        _ => {
            shared.frames_rejected.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::InvalidData, "reply frame sent to server"))
        }
    }
}
