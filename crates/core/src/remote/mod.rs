//! The distributed trajectory-cache tier: wire codec, TCP cache peers, and
//! persistent warm starts.
//!
//! The paper's Blue Gene/P deployment treats the trajectory cache as a
//! *cluster* resource — speculated trajectories are shared across nodes,
//! with per-query reduction and point-to-point transfer costs (the very
//! costs [`crate::cluster`] models). This module is that sharing made
//! concrete, as two extra tiers behind the in-process cache:
//!
//! 1. **Local shards** ([`crate::cache`]): always probed first, the only
//!    tier on the correctness path.
//! 2. **Cache peer** ([`CachePeer`]): a TCP server other runs GET from and
//!    PUT to. On a local miss the runtime probes the peer by
//!    `(position-hash, value-hash)` pairs, re-verifies anything returned
//!    (byte match *and* checksum) and inserts it locally (read-through);
//!    local inserts stream out asynchronously through a bounded drop-oldest
//!    queue (write-behind). Deadline, retry backoff and a failure budget
//!    bound the cost of a sick peer: it degrades to local-only exactly like
//!    a dead planner degrades to miss-driven dispatch.
//! 3. **Snapshot** ([`snapshot`]): the same codec pointed at disk — save on
//!    shutdown, load on startup — so one run's warmup amortizes across
//!    runs and across machines.
//!
//! Every boundary crossing re-proves integrity: frames are length-checked
//! and version-checked, and entries carry the checksum they were sealed
//! with, verified on decode ([`codec`]). Corruption anywhere costs one
//! counted, dropped frame ([`RemoteStats::frames_rejected`]) — never a
//! wrong fast-forward, because a remotely-fetched entry is applied only
//! after the same `matches(state)` + `verify()` guards a local hit passes.
//! Final program states therefore stay bit-identical with the tier on,
//! off, shared between processes, or killed mid-run. How a sick or dead
//! peer degrades (down → cooldown → half-open reconnect probe), and where
//! that sits in the repo-wide failure model, is tabulated in
//! `ROBUSTNESS.md` at the repository root.

pub mod codec;
mod peer;
pub mod snapshot;

mod client;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asc_tvm::delta::PositionSchema;
use asc_tvm::state::StateVector;

use crate::cache::{CacheEntry, TrajectoryCache};
use crate::config::RemoteConfig;
use crate::remote::client::{PeerClient, WriteBehind};
use crate::remote::codec::FrameKind;
use crate::supervisor::Supervision;

pub use peer::CachePeer;

/// Most distinct read-set shapes remembered per rip for remote probes. A
/// GET can only ask about shapes the client knows; real programs produce a
/// handful per rip (the premise of the grouped cache index), so the cap is
/// slack, not a working limit.
const SCHEMA_CATALOG_LIMIT: usize = 64;

/// Counters describing one run's remote-tier activity, surfaced as
/// [`RunReport::remote`](crate::runtime::RunReport::remote).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Remote probes that returned an entry which matched the querying
    /// state and passed verification (each also read-through into the
    /// local cache).
    pub remote_hits: u64,
    /// Remote probes answered with a miss (or an entry that did not match
    /// the querying state after the hash said it might).
    pub remote_misses: u64,
    /// Remote operations that timed out or failed on I/O.
    pub remote_timeouts: u64,
    /// Frames dropped for malformation or checksum failure, on any path
    /// (GET replies, bulk transfers, snapshot entries).
    pub frames_rejected: u64,
    /// Entries imported in bulk: from the startup snapshot file and the
    /// connect-time peer transfer.
    pub snapshot_loaded: u64,
    /// Bulk-import entries rejected (corrupt, or lost to truncation).
    pub snapshot_rejected: u64,
    /// Entries exported to the shutdown snapshot file.
    pub snapshot_saved: u64,
    /// Local inserts successfully streamed to the peer.
    pub puts_streamed: u64,
    /// Local inserts dropped from the write-behind path (queue overflow,
    /// backoff, or a down peer). Only the sharing is lost — the local
    /// cache kept every one.
    pub puts_dropped: u64,
    /// Times a down peer (failure budget spent) was re-adopted by a
    /// successful half-open reconnect probe, across both the fetch and
    /// write-behind connections.
    pub peer_reconnects: u64,
    /// Whether the peer was observed down (failure budget spent, running
    /// local-only) at any point — including runs that later re-adopted it.
    pub degraded: bool,
}

macro_rules! remote_counter {
    ($($(#[$doc:meta])* $record:ident => $field:ident;)*) => {
        $(
            $(#[$doc])*
            pub(crate) fn $record(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }
        )*
    };
}

/// The tier's shared atomic counters (the [`RemoteStats`] source).
#[derive(Debug, Default)]
pub(crate) struct RemoteCounters {
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    remote_timeouts: AtomicU64,
    frames_rejected: AtomicU64,
    snapshot_loaded: AtomicU64,
    snapshot_rejected: AtomicU64,
    snapshot_saved: AtomicU64,
    puts_streamed: AtomicU64,
    puts_dropped: AtomicU64,
    peer_reconnects: AtomicU64,
    degraded: AtomicBool,
}

impl RemoteCounters {
    remote_counter! {
        /// Books one verified, matching remote hit.
        record_remote_hit => remote_hits;
        /// Books one remote miss.
        record_remote_miss => remote_misses;
        /// Books one timed-out or failed remote operation.
        record_remote_timeout => remote_timeouts;
        /// Books one malformed or checksum-failing frame.
        record_frame_rejected => frames_rejected;
        /// Books one successfully streamed insert.
        record_put_streamed => puts_streamed;
        /// Books one dropped write-behind insert.
        record_put_dropped => puts_dropped;
    }

    fn add_bulk(&self, loaded: u64, rejected: u64) {
        self.snapshot_loaded.fetch_add(loaded, Ordering::Relaxed);
        self.snapshot_rejected.fetch_add(rejected, Ordering::Relaxed);
    }

    /// Folds one client's recovery count in (each client tracks its own).
    pub(crate) fn add_peer_reconnects(&self, count: u64) {
        self.peer_reconnects.fetch_add(count, Ordering::Relaxed);
    }

    fn snapshot(&self) -> RemoteStats {
        RemoteStats {
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            remote_timeouts: self.remote_timeouts.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            snapshot_rejected: self.snapshot_rejected.load(Ordering::Relaxed),
            snapshot_saved: self.snapshot_saved.load(Ordering::Relaxed),
            puts_streamed: self.puts_streamed.load(Ordering::Relaxed),
            puts_dropped: self.puts_dropped.load(Ordering::Relaxed),
            peer_reconnects: self.peer_reconnects.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

/// State the insert-observer closure shares with the tier: the counters and
/// the schema catalog remote probes are phrased in.
struct TierShared {
    counters: Arc<RemoteCounters>,
    /// Distinct read-set shapes seen per rip — from the snapshot load, the
    /// bulk transfer, remote hits and local inserts. A remote GET sends
    /// `(schema hash, value hash of the query state's bytes at the schema's
    /// positions)` for each; the peer cannot see the state, so the catalog
    /// is what makes its entries addressable at all.
    catalog: Mutex<std::collections::HashMap<u32, Vec<PositionSchema>>>,
    /// Cleared at [`RemoteTier::finish`]: the observer goes quiet before
    /// the write-behind drains, so late worker inserts cannot race the
    /// queue teardown.
    active: AtomicBool,
}

impl TierShared {
    fn catalog_add(&self, entry: &CacheEntry) {
        let schema = PositionSchema::of(&entry.start);
        let mut catalog = self.catalog.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let schemas = catalog.entry(entry.rip).or_default();
        if schemas.len() < SCHEMA_CATALOG_LIMIT && schemas.iter().all(|s| s.hash() != schema.hash())
        {
            schemas.push(schema);
        }
    }

    fn pairs_for(&self, rip: u32, state: &StateVector) -> Vec<(u64, u64)> {
        let catalog = self.catalog.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match catalog.get(&rip) {
            Some(schemas) => schemas
                .iter()
                .filter_map(|schema| schema.hash_values_of(state).map(|v| (schema.hash(), v)))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// One run's remote tier, owned by the `accelerate` main loop: probes the
/// peer on local misses, streams inserts behind, and handles the snapshot
/// load/save at the run's edges. See the module docs for the protocol and
/// failure model.
pub(crate) struct RemoteTier {
    cache: Arc<TrajectoryCache>,
    shared: Arc<TierShared>,
    client: Option<Mutex<PeerClient>>,
    write_behind: Option<WriteBehind>,
    snapshot_save: Option<std::path::PathBuf>,
}

impl RemoteTier {
    /// Starts the tier for one run: loads the startup snapshot, connects
    /// and bulk-fetches from the peer, and attaches the write-behind
    /// observer to `cache`. Returns `None` when the tier is disabled.
    /// Every failure inside degrades (and is counted) rather than erroring
    /// — a missing snapshot is a cold start, an unreachable peer is a
    /// local-only run.
    pub(crate) fn start(
        config: &RemoteConfig,
        cache: &Arc<TrajectoryCache>,
        supervision: &Supervision,
    ) -> Option<RemoteTier> {
        if !config.enabled {
            return None;
        }
        let shared = Arc::new(TierShared {
            counters: Arc::new(RemoteCounters::default()),
            catalog: Mutex::new(std::collections::HashMap::new()),
            active: AtomicBool::new(true),
        });

        if let Some(path) = &config.snapshot_load {
            match snapshot::load(cache, path) {
                Ok(load) => shared.counters.add_bulk(load.loaded, load.rejected),
                // Missing file: a cold start, not damage. Anything else
                // (unreadable, bad header) counts one rejection.
                Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => shared.counters.add_bulk(0, 1),
            }
        }
        // Seed the schema catalog from everything now in the local cache.
        cache.for_each_entry(|entry| shared.catalog_add(entry));

        let deadline = Duration::from_millis(config.deadline_ms);
        let backoff = Duration::from_millis(config.retry_backoff_ms);
        let mut client = None;
        let mut write_behind = None;
        if let Some(addr) = &config.peer {
            let mut fetcher = PeerClient::new(addr.clone(), deadline, backoff, config.max_retries);
            // Connect-time bulk transfer: everything the peer already holds
            // becomes local (and addressable) immediately — the network
            // half of the warm start.
            match fetcher.bulk_snapshot(|entry| {
                shared.catalog_add(&entry);
                cache.insert_unobserved(entry);
                shared.counters.snapshot_loaded.fetch_add(1, Ordering::Relaxed);
            }) {
                Ok((_peer_stats, rejected)) => shared.counters.add_bulk(0, rejected),
                Err(_) => shared.counters.record_remote_timeout(),
            }
            let streamer = PeerClient::new(addr.clone(), deadline, backoff, config.max_retries);
            write_behind = WriteBehind::start(
                streamer,
                config.write_behind_capacity,
                Arc::clone(&shared.counters),
                &supervision.health,
            );
            client = Some(Mutex::new(fetcher));
        }

        let observer_shared = Arc::clone(&shared);
        let observer_queue = write_behind.as_ref().map(WriteBehind::shared);
        cache.set_insert_observer(Arc::new(move |entry| {
            if !observer_shared.active.load(Ordering::Relaxed) {
                return;
            }
            observer_shared.catalog_add(entry);
            if let Some(queue) = &observer_queue {
                queue.push(entry.clone(), &observer_shared.counters);
            }
        }));

        Some(RemoteTier {
            cache: Arc::clone(cache),
            shared,
            client,
            write_behind,
            snapshot_save: config.snapshot_save.clone(),
        })
    }

    /// Probes the peer for `state` at `rip` — called on a local cache miss
    /// only. A verified, matching entry is inserted locally (read-through)
    /// and returned; everything else is a miss. Never blocks beyond the
    /// configured deadline, and returns immediately while the client backs
    /// off or once it is dead.
    pub(crate) fn fetch(&self, rip: u32, state: &StateVector) -> Option<CacheEntry> {
        let client = self.client.as_ref()?;
        let pairs = self.shared.pairs_for(rip, state);
        if pairs.is_empty() {
            return None;
        }
        let mut client = client.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if !client.ready() {
            if client.is_down() {
                self.shared.counters.degraded.store(true, Ordering::Relaxed);
            }
            return None;
        }
        let request = codec::encode_frame(FrameKind::Get, &codec::encode_get(rip, &pairs));
        let counters = &self.shared.counters;
        match client.request(&request) {
            Ok(frame) => match frame.kind {
                FrameKind::GetHit => match codec::decode_entry(&frame.payload) {
                    Some(entry) if entry.rip == rip => {
                        // Read-through: the entry joins the local tier
                        // either way (un-echoed — it came *from* the peer).
                        self.shared.catalog_add(&entry);
                        self.cache.insert_unobserved(entry.clone());
                        if entry.matches(state) {
                            counters.record_remote_hit();
                            Some(entry)
                        } else {
                            // The 64-bit hashes said maybe; the bytes said
                            // no — the collision guard, across the wire.
                            counters.record_remote_miss();
                            None
                        }
                    }
                    Some(_) | None => {
                        counters.record_frame_rejected();
                        None
                    }
                },
                FrameKind::GetMiss => {
                    counters.record_remote_miss();
                    None
                }
                _ => {
                    counters.record_frame_rejected();
                    None
                }
            },
            Err(error) => {
                if error.kind() == std::io::ErrorKind::InvalidData {
                    counters.record_frame_rejected();
                } else {
                    counters.record_remote_timeout();
                }
                None
            }
        }
    }

    /// Shuts the tier down after the speculation machinery has joined:
    /// quiets the insert observer, drains the write-behind queue, writes
    /// the shutdown snapshot, and returns the run's counters.
    pub(crate) fn finish(self) -> RemoteStats {
        self.shared.active.store(false, Ordering::SeqCst);
        if let Some(write_behind) = self.write_behind {
            write_behind.finish();
        }
        if let Some(path) = &self.snapshot_save {
            if let Ok(saved) = snapshot::save(&self.cache, path) {
                self.shared.counters.snapshot_saved.fetch_add(saved, Ordering::Relaxed);
            }
        }
        if let Some(client) = &self.client {
            let client = client.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.counters.add_peer_reconnects(client.reconnects());
            if client.is_down() {
                self.shared.counters.degraded.store(true, Ordering::Relaxed);
            }
        }
        self.shared.counters.snapshot()
    }
}
