//! The versioned, length-prefixed wire codec shared by the cache-peer
//! protocol and the on-disk snapshot format.
//!
//! Every frame is `magic (4) + version (u16 LE) + kind (u8) + payload
//! length (u32 LE) + payload`. The decoder rejects — as
//! [`std::io::ErrorKind::InvalidData`] — anything with a wrong magic, an
//! unknown version or kind, or an oversized length, and every payload
//! decoder demands *exact* consumption, so a truncated or bit-flipped frame
//! is always detected rather than silently reinterpreted. Entry payloads
//! additionally carry the [`CacheEntry`] integrity checksum they were
//! sealed with: [`decode_entry`] rebuilds the entry *with* that checksum
//! (never re-deriving it — that would launder corruption into a
//! freshly-sealed valid entry) and drops anything
//! [`CacheEntry::verify`] rejects. Corruption anywhere between two caches
//! therefore costs one dropped frame, never a wrong fast-forward — the same
//! "free to fail" economy as speculation itself.

use std::io::{self, Read};

use asc_tvm::delta::{PositionSchema, SparseBytes};

use crate::cache::{CacheEntry, CacheStats, CACHE_STATS_WIRE_LEN};

/// Frame magic: "ASCF".
pub const MAGIC: [u8; 4] = *b"ASCF";
/// Wire-format version; bumped on any incompatible layout change.
pub const VERSION: u16 = 1;
/// Fixed frame-header length: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 4;
/// Upper bound on one frame's payload (64 MiB) — far above any real entry,
/// low enough that a corrupted length field cannot ask the reader to
/// allocate the address space.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// What a frame carries; the protocol's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → peer: probe for `(rip, position-hash, value-hash)` pairs.
    Get = 0,
    /// Peer → client: the GET matched; payload is one entry.
    GetHit = 1,
    /// Peer → client: the GET matched nothing; empty payload.
    GetMiss = 2,
    /// Client → peer: store one entry (write-behind; no reply).
    Put = 3,
    /// Client → peer: request the peer's cache counters.
    StatsRequest = 4,
    /// Peer → client: serialized [`CacheStats`].
    StatsReply = 5,
    /// Client → peer: request a bulk transfer of every live entry.
    SnapshotRequest = 6,
    /// First frame of a snapshot stream: serialized stats + entry count.
    SnapshotHeader = 7,
    /// One entry of a snapshot stream (same payload as `GetHit`/`Put`).
    Entry = 8,
    /// Terminates a snapshot stream; empty payload. A stream that ends
    /// without it was truncated.
    SnapshotEnd = 9,
    /// First frame of a checkpoint file: run identity (config fingerprint,
    /// sequence, occurrence) plus the section count that follows.
    CheckpointHeader = 10,
    /// One checkpoint section: a section id, its checksum and its body.
    CheckpointSection = 11,
    /// Terminates a checkpoint file with a whole-file checksum; a file that
    /// ends without it was torn mid-write and is rejected.
    CheckpointEnd = 12,
}

impl FrameKind {
    fn from_byte(byte: u8) -> Option<FrameKind> {
        Some(match byte {
            0 => FrameKind::Get,
            1 => FrameKind::GetHit,
            2 => FrameKind::GetMiss,
            3 => FrameKind::Put,
            4 => FrameKind::StatsRequest,
            5 => FrameKind::StatsReply,
            6 => FrameKind::SnapshotRequest,
            7 => FrameKind::SnapshotHeader,
            8 => FrameKind::Entry,
            9 => FrameKind::SnapshotEnd,
            10 => FrameKind::CheckpointHeader,
            11 => FrameKind::CheckpointSection,
            12 => FrameKind::CheckpointEnd,
            _ => return None,
        })
    }
}

/// One decoded frame: its kind and raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind from the frame header.
    pub kind: FrameKind,
    /// The payload bytes, exactly as framed.
    pub payload: Vec<u8>,
}

fn malformed(what: &'static str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Encodes one frame: header + payload, ready for a single `write_all`.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize, "oversized frame payload");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(kind as u8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Reads one frame, or `None` on a clean end-of-stream (EOF before the
/// first header byte — how a peer closes a connection, and how a snapshot
/// file ends early without its `SnapshotEnd`).
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] for a malformed header (wrong magic,
/// unknown version/kind, oversized length); [`io::ErrorKind::UnexpectedEof`]
/// for a stream truncated mid-frame; any other I/O error as-is.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish a clean close (EOF at a frame boundary) from truncation:
    // zero bytes of a new frame is the former, a partial header the latter.
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated header")),
            n => filled += n,
        }
    }
    if header[..4] != MAGIC {
        return Err(malformed("bad frame magic"));
    }
    if u16::from_le_bytes([header[4], header[5]]) != VERSION {
        return Err(malformed("unsupported frame version"));
    }
    let Some(kind) = FrameKind::from_byte(header[6]) else {
        return Err(malformed("unknown frame kind"));
    };
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if len > MAX_PAYLOAD {
        return Err(malformed("oversized frame payload"));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok(Some(Frame { kind, payload }))
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let word = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(word.try_into().ok()?))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let word = bytes.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(word.try_into().ok()?))
}

/// Encodes one entry payload: rip, instruction count, the checksum it was
/// sealed with, then both sparse sets.
pub fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(4 + 8 + 8 + entry.start.encoded_len() + entry.end.encoded_len());
    buf.extend_from_slice(&entry.rip.to_le_bytes());
    buf.extend_from_slice(&entry.instructions.to_le_bytes());
    buf.extend_from_slice(&entry.checksum().to_le_bytes());
    entry.start.encode_into(&mut buf);
    entry.end.encode_into(&mut buf);
    buf
}

/// Decodes (and integrity-checks) one entry payload. Returns `None` for any
/// malformed, truncated, over-long or checksum-failing payload — the caller
/// counts it as a rejected frame and moves on.
pub fn decode_entry(payload: &[u8]) -> Option<CacheEntry> {
    let mut at = 0usize;
    let rip = take_u32(payload, &mut at)?;
    let instructions = take_u64(payload, &mut at)?;
    let checksum = take_u64(payload, &mut at)?;
    let (start, used) = SparseBytes::decode_from(&payload[at..])?;
    at += used;
    let (end, used) = SparseBytes::decode_from(&payload[at..])?;
    at += used;
    if at != payload.len() {
        return None;
    }
    let entry = CacheEntry::from_parts_unchecked(rip, start, end, instructions, checksum);
    entry.verify().then_some(entry)
}

/// Encodes a GET payload: the rip plus every `(position-hash, value-hash)`
/// pair the client computed from its schema catalog.
pub fn encode_get(rip: u32, pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 4 + pairs.len() * 16);
    buf.extend_from_slice(&rip.to_le_bytes());
    buf.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(position_hash, value_hash) in pairs {
        buf.extend_from_slice(&position_hash.to_le_bytes());
        buf.extend_from_slice(&value_hash.to_le_bytes());
    }
    buf
}

/// Decodes a GET payload; `None` on any malformation.
pub fn decode_get(payload: &[u8]) -> Option<(u32, Vec<(u64, u64)>)> {
    let mut at = 0usize;
    let rip = take_u32(payload, &mut at)?;
    let count = take_u32(payload, &mut at)? as usize;
    if payload.len() != at + count.checked_mul(16)? {
        return None;
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let position_hash = take_u64(payload, &mut at)?;
        let value_hash = take_u64(payload, &mut at)?;
        pairs.push((position_hash, value_hash));
    }
    Some((rip, pairs))
}

/// Encodes a snapshot-stream header: the exporting cache's counters plus
/// the number of entry frames that follow.
pub fn encode_snapshot_header(stats: &CacheStats, count: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(CACHE_STATS_WIRE_LEN + 8);
    buf.extend_from_slice(&stats.to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    buf
}

/// Decodes a snapshot-stream header; `None` on any malformation.
pub fn decode_snapshot_header(payload: &[u8]) -> Option<(CacheStats, u64)> {
    if payload.len() != CACHE_STATS_WIRE_LEN + 8 {
        return None;
    }
    let stats = CacheStats::from_le_bytes(&payload[..CACHE_STATS_WIRE_LEN])?;
    let count = u64::from_le_bytes(payload[CACHE_STATS_WIRE_LEN..].try_into().ok()?);
    Some((stats, count))
}

/// Re-encodes a schema through the TVM wire hooks — exercised by the
/// property tests; the protocol itself ships schemas only inside entries'
/// sparse sets (the hash is recomputed on decode, never trusted from the
/// wire).
pub fn schema_roundtrip(schema: &PositionSchema) -> Option<PositionSchema> {
    let mut buf = Vec::new();
    schema.encode_into(&mut buf);
    let (decoded, used) = PositionSchema::decode_from(&buf)?;
    (used == buf.len()).then_some(decoded)
}

/// Flips one bit of a framed message's *payload* chosen by `selector`,
/// leaving the header intact — the fault injector's model of a link that
/// corrupts data in flight (a damaged header is already rejected by the
/// magic/version/length checks; the payload bit-flip is the corruption only
/// the checksum can catch). No-op on an empty payload.
#[cfg(feature = "fault-inject")]
pub fn corrupt_frame(frame: &mut [u8], selector: u64) {
    if frame.len() <= HEADER_LEN {
        return;
    }
    let payload_len = frame.len() - HEADER_LEN;
    let byte = HEADER_LEN + (selector as usize) % payload_len;
    let bit = ((selector >> 32) & 7) as u32;
    frame[byte] ^= 1u8 << bit;
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_learn::rng::{Rng, XorShiftRng};

    fn random_entry(rng: &mut XorShiftRng) -> CacheEntry {
        let sparse = |rng: &mut XorShiftRng| {
            let len = (rng.next_u64() % 24) as usize;
            let pairs: Vec<(u32, u8)> = (0..len)
                .map(|_| ((rng.next_u64() % 4096) as u32, (rng.next_u64() & 0xff) as u8))
                .collect();
            SparseBytes::from_pairs(pairs)
        };
        let start = sparse(rng);
        let end = sparse(rng);
        CacheEntry::new((rng.next_u64() & 0xffff_ffff) as u32, start, end, rng.next_u64() >> 20)
    }

    #[test]
    fn entry_roundtrip_is_bit_identical_including_checksum() {
        let mut rng = XorShiftRng::new(0xA5C0);
        for _ in 0..200 {
            let entry = random_entry(&mut rng);
            let payload = encode_entry(&entry);
            let decoded = decode_entry(&payload).expect("well-formed payload decodes");
            // Derived PartialEq includes the private checksum field.
            assert_eq!(decoded, entry);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let mut rng = XorShiftRng::new(7);
        for _ in 0..8 {
            let entry = random_entry(&mut rng);
            let payload = encode_entry(&entry);
            for byte in 0..payload.len() {
                for bit in 0..8 {
                    let mut flipped = payload.clone();
                    flipped[byte] ^= 1u8 << bit;
                    // A flip may still parse structurally (e.g. in padding-free
                    // value bytes), but then the checksum refuses it; a flip in
                    // a length field breaks exact consumption. Either way the
                    // decode must not return an entry that differs from the
                    // original while claiming validity.
                    if let Some(decoded) = decode_entry(&flipped) {
                        panic!(
                            "bit flip at byte {byte} bit {bit} decoded as a valid entry \
                             (rip {}, {} instructions)",
                            decoded.rip, decoded.instructions
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut rng = XorShiftRng::new(99);
        for _ in 0..8 {
            let entry = random_entry(&mut rng);
            let payload = encode_entry(&entry);
            for cut in 0..payload.len() {
                assert!(
                    decode_entry(&payload[..cut]).is_none(),
                    "prefix of length {cut} decoded as a valid entry"
                );
            }
            // Trailing garbage breaks exact consumption too.
            let mut extended = payload.clone();
            extended.push(0);
            assert!(decode_entry(&extended).is_none());
        }
    }

    #[test]
    fn frame_roundtrip_and_header_rejections() {
        let entry = random_entry(&mut XorShiftRng::new(3));
        let payload = encode_entry(&entry);
        let framed = encode_frame(FrameKind::Put, &payload);
        assert_eq!(framed.len(), HEADER_LEN + payload.len());

        let mut reader = std::io::Cursor::new(framed.clone());
        let frame = read_frame(&mut reader).unwrap().expect("one frame present");
        assert_eq!(frame.kind, FrameKind::Put);
        assert_eq!(frame.payload, payload);
        // Clean EOF at the boundary, not an error.
        assert!(read_frame(&mut reader).unwrap().is_none());

        // Wrong magic.
        let mut bad = framed.clone();
        bad[0] ^= 1;
        let err = read_frame(&mut std::io::Cursor::new(bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Unknown version.
        let mut bad = framed.clone();
        bad[4] = 0xff;
        assert!(read_frame(&mut std::io::Cursor::new(bad)).is_err());
        // Unknown kind.
        let mut bad = framed.clone();
        bad[6] = 0xff;
        assert!(read_frame(&mut std::io::Cursor::new(bad)).is_err());
        // Oversized length field.
        let mut bad = framed.clone();
        bad[7..11].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(bad)).is_err());
        // Truncation mid-header and mid-payload.
        for cut in 1..framed.len() {
            let err = read_frame(&mut std::io::Cursor::new(framed[..cut].to_vec())).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn get_payload_roundtrips_and_rejects_malformation() {
        let pairs: Vec<(u64, u64)> = (0..5).map(|i| (i * 31, i * 17 + 1)).collect();
        let payload = encode_get(42, &pairs);
        assert_eq!(decode_get(&payload), Some((42, pairs.clone())));
        assert!(decode_get(&payload[..payload.len() - 1]).is_none());
        let mut extended = payload.clone();
        extended.push(0);
        assert!(decode_get(&extended).is_none());
        // A count field inflated past the actual payload rejects.
        let mut lying = payload.clone();
        lying[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_get(&lying).is_none());
        assert_eq!(decode_get(&encode_get(7, &[])), Some((7, Vec::new())));
    }

    #[test]
    fn snapshot_header_roundtrips() {
        let cache = crate::cache::TrajectoryCache::new(16);
        cache.insert(random_entry(&mut XorShiftRng::new(5)));
        let stats = cache.stats();
        let payload = encode_snapshot_header(&stats, 123);
        let (decoded, count) = decode_snapshot_header(&payload).unwrap();
        assert_eq!(count, 123);
        assert_eq!(decoded.inserted, stats.inserted);
        assert!(decode_snapshot_header(&payload[..payload.len() - 1]).is_none());
    }

    #[test]
    fn schema_wire_roundtrip_survives() {
        let mut rng = XorShiftRng::new(13);
        for _ in 0..50 {
            let len = (rng.next_u64() % 16) as usize;
            let pairs: Vec<(u32, u8)> =
                (0..len).map(|_| ((rng.next_u64() % 4096) as u32, 1)).collect();
            let schema = PositionSchema::of(&SparseBytes::from_pairs(pairs));
            let decoded = schema_roundtrip(&schema).expect("well-formed schema");
            assert_eq!(decoded.positions(), schema.positions());
            assert_eq!(decoded.hash(), schema.hash());
        }
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn corrupt_frame_flips_exactly_one_payload_bit() {
        let entry = random_entry(&mut XorShiftRng::new(21));
        let framed = encode_frame(FrameKind::GetHit, &encode_entry(&entry));
        for selector in [0u64, 1, 0xdead_beef, u64::MAX, 1 << 40] {
            let mut corrupted = framed.clone();
            corrupt_frame(&mut corrupted, selector);
            assert_eq!(corrupted[..HEADER_LEN], framed[..HEADER_LEN], "header untouched");
            let differing: usize =
                corrupted.iter().zip(&framed).map(|(a, b)| (a ^ b).count_ones() as usize).sum();
            assert_eq!(differing, 1, "selector {selector}");
            let frame = read_frame(&mut std::io::Cursor::new(corrupted)).unwrap().unwrap();
            assert!(decode_entry(&frame.payload).is_none(), "corruption must not decode");
        }
    }
}
