//! The non-blocking client tier in front of the local cache: a deadline-
//! and backoff-guarded peer connection for GETs, and the write-behind
//! queue streaming local inserts out.
//!
//! The invariant both halves protect: **the main loop never waits on the
//! network beyond the configured deadline, and usually not at all.** A GET
//! runs only on a local cache miss and is bounded by socket timeouts; a
//! failed operation starts an exponential backoff during which every fetch
//! returns a miss *immediately*; once the failure budget is spent the peer
//! is declared *down* and the tier runs pure local — which is why killing
//! the peer mid-run costs at most `max_retries` deadlines of wall clock
//! per down transition. Down is not forever: after an exponentially
//! scaled cooldown (longer for every consecutive down transition) the
//! client half-opens and risks exactly one probe — a restarted peer is
//! re-adopted at the first probe that succeeds, a still-dead one costs a
//! single deadline and a deeper cooldown. Inserts stream through a bounded
//! drop-oldest queue serviced by a dedicated writer thread with its own
//! connection, so even a stalled peer cannot slow an insert down.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::{CacheEntry, CacheStats};
use crate::remote::codec::{self, Frame, FrameKind};
use crate::remote::RemoteCounters;
use crate::supervisor::HealthMonitor;

/// How many doublings the retry backoff is allowed (64× the base, matching
/// the worker-respawn and breaker-cooldown caps).
const BACKOFF_CAP_SHIFT: u32 = 6;

/// Cooldown multiplier applied when the failure budget is spent: the first
/// half-open reconnect probe waits this many backoff bases, doubling per
/// consecutive down transition (up to the same cap as the retry backoff).
const DOWN_COOLDOWN_FACTOR: u32 = 8;

/// One guarded connection to the cache peer; see the module docs.
pub(crate) struct PeerClient {
    addr: String,
    deadline: Duration,
    backoff_base: Duration,
    max_retries: u32,
    stream: Option<TcpStream>,
    consecutive_failures: u32,
    next_attempt: Option<Instant>,
    /// Failure budget spent: only half-open probes (one per cooldown) until
    /// one succeeds.
    down: bool,
    /// Consecutive down transitions without an intervening success — scales
    /// the reconnect cooldown.
    downs: u32,
    /// Successful recoveries from the down state.
    reconnects: u64,
}

impl PeerClient {
    pub(crate) fn new(
        addr: String,
        deadline: Duration,
        backoff_base: Duration,
        max_retries: u32,
    ) -> Self {
        PeerClient {
            addr,
            deadline,
            backoff_base,
            max_retries,
            stream: None,
            consecutive_failures: 0,
            next_attempt: None,
            down: false,
            downs: 0,
            reconnects: 0,
        }
    }

    /// Whether the failure budget is spent and the client is in the
    /// half-open reconnect cycle (local-only until a probe succeeds).
    pub(crate) fn is_down(&self) -> bool {
        self.down
    }

    /// How many times a down peer was successfully re-adopted.
    pub(crate) fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether an operation may be attempted right now (not backing off,
    /// and not inside a down cooldown). While this is false the caller
    /// treats the peer as a miss without touching the socket. A down client
    /// whose cooldown has expired reads as ready: the next operation *is*
    /// the half-open reconnect probe.
    pub(crate) fn ready(&self) -> bool {
        self.next_attempt.is_none_or(|at| Instant::now() >= at)
    }

    fn connected(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            // `connect_timeout` needs a resolved address; take the first.
            let addr = self
                .addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer address"))?;
            let stream = TcpStream::connect_timeout(&addr, self.deadline)?;
            stream.set_read_timeout(Some(self.deadline))?;
            stream.set_write_timeout(Some(self.deadline))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn record_success(&mut self) {
        if self.down {
            self.down = false;
            self.reconnects += 1;
        }
        self.downs = 0;
        self.consecutive_failures = 0;
        self.next_attempt = None;
    }

    /// Books one failure: drops the (possibly desynced) connection and
    /// starts the next backoff window. Spending the failure budget — or
    /// failing a half-open reconnect probe — enters (or deepens) the down
    /// state, whose cooldown scales exponentially with consecutive down
    /// transitions so a permanently dead peer costs asymptotically nothing.
    fn record_failure(&mut self) {
        self.stream = None;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.down || self.consecutive_failures >= self.max_retries {
            self.down = true;
            self.downs = self.downs.saturating_add(1);
            self.consecutive_failures = 0;
            let shift = (self.downs - 1).min(BACKOFF_CAP_SHIFT);
            self.next_attempt =
                Some(Instant::now() + self.backoff_base * DOWN_COOLDOWN_FACTOR * (1u32 << shift));
            return;
        }
        let shift = (self.consecutive_failures - 1).min(BACKOFF_CAP_SHIFT);
        self.next_attempt = Some(Instant::now() + self.backoff_base * (1u32 << shift));
    }

    fn transact<T>(
        &mut self,
        request: &[u8],
        read: impl FnOnce(&mut TcpStream) -> io::Result<T>,
    ) -> io::Result<T> {
        let result = (|| {
            let stream = self.connected()?;
            stream.write_all(request)?;
            read(stream)
        })();
        match &result {
            Ok(_) => self.record_success(),
            Err(_) => self.record_failure(),
        }
        result
    }

    /// One request/single-reply exchange under the deadline.
    pub(crate) fn request(&mut self, request: &[u8]) -> io::Result<Frame> {
        self.transact(request, |stream| {
            codec::read_frame(stream)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
        })
    }

    /// Fire-and-forget send (the write-behind PUT path).
    pub(crate) fn send(&mut self, request: &[u8]) -> io::Result<()> {
        self.transact(request, |_| Ok(()))
    }

    /// Requests the peer's full snapshot stream, feeding each decodable
    /// entry to `on_entry`; returns the peer's stats header and the number
    /// of entry frames that failed to decode. Each frame is read under the
    /// deadline (per frame, not per stream — a live peer streams entries
    /// back-to-back).
    pub(crate) fn bulk_snapshot(
        &mut self,
        mut on_entry: impl FnMut(CacheEntry),
    ) -> io::Result<(CacheStats, u64)> {
        let request = codec::encode_frame(FrameKind::SnapshotRequest, &[]);
        self.transact(&request, |stream| {
            let mut reader = io::BufReader::new(stream);
            let eof = || io::Error::new(io::ErrorKind::UnexpectedEof, "snapshot stream truncated");
            let header = codec::read_frame(&mut reader)?.ok_or_else(eof)?;
            if header.kind != FrameKind::SnapshotHeader {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "expected header"));
            }
            let (stats, _count) = codec::decode_snapshot_header(&header.payload)
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad header"))?;
            let mut rejected = 0u64;
            loop {
                let frame = codec::read_frame(&mut reader)?.ok_or_else(eof)?;
                match frame.kind {
                    FrameKind::Entry => match codec::decode_entry(&frame.payload) {
                        Some(entry) => on_entry(entry),
                        None => rejected += 1,
                    },
                    FrameKind::SnapshotEnd => return Ok((stats, rejected)),
                    _ => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected frame in snapshot stream",
                        ))
                    }
                }
            }
        })
    }
}

/// The write-behind queue's shared half: bounded, drop-oldest, observable
/// from the insert-observer closure.
pub(crate) struct WriteBehindShared {
    queue: Mutex<VecDeque<CacheEntry>>,
    wake: Condvar,
    shutting_down: AtomicBool,
    capacity: usize,
}

impl WriteBehindShared {
    /// Enqueues one entry for streaming, dropping the *oldest* queued entry
    /// when full — the newest trajectory is the one the other process is
    /// about to need, and the insert path must never block.
    pub(crate) fn push(&self, entry: CacheEntry, counters: &RemoteCounters) {
        let mut queue = lock(&self.queue);
        if queue.len() >= self.capacity {
            queue.pop_front();
            counters.record_put_dropped();
        }
        queue.push_back(entry);
        drop(queue);
        self.wake.notify_one();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The write-behind streamer: the shared queue plus its writer thread.
pub(crate) struct WriteBehind {
    shared: Arc<WriteBehindShared>,
    handle: Option<JoinHandle<()>>,
}

impl WriteBehind {
    /// Spawns the writer thread with its own peer connection. A spawn
    /// failure is recorded and degrades to no streaming (`None`) — the same
    /// policy as a failed worker spawn.
    pub(crate) fn start(
        client: PeerClient,
        capacity: usize,
        counters: Arc<RemoteCounters>,
        health: &Arc<HealthMonitor>,
    ) -> Option<WriteBehind> {
        let shared = Arc::new(WriteBehindShared {
            queue: Mutex::new(VecDeque::with_capacity(capacity)),
            wake: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            capacity,
        });
        let thread_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("asc-remote-writeback".into())
            .spawn(move || writer_loop(&thread_shared, client, &counters));
        match spawned {
            Ok(handle) => Some(WriteBehind { shared, handle: Some(handle) }),
            Err(_) => {
                health.record_spawn_failures(1);
                None
            }
        }
    }

    /// The queue half, for the insert-observer closure.
    pub(crate) fn shared(&self) -> Arc<WriteBehindShared> {
        Arc::clone(&self.shared)
    }

    /// Drains the queue (streaming what a live peer will still take), then
    /// joins the writer.
    pub(crate) fn finish(mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn writer_loop(shared: &WriteBehindShared, mut client: PeerClient, counters: &RemoteCounters) {
    stream_entries(shared, &mut client, counters);
    // The streamer's client dies with this thread; fold its reconnect count
    // into the shared stats on the way out.
    counters.add_peer_reconnects(client.reconnects());
}

fn stream_entries(shared: &WriteBehindShared, client: &mut PeerClient, counters: &RemoteCounters) {
    loop {
        let entry = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(entry) = queue.pop_front() {
                    break entry;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // The timeout is only a liveness backstop for a missed
                // notify; the condvar carries the real signal.
                let (guard, _) = shared
                    .wake
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        if !client.ready() {
            // During backoff or a down cooldown, holding the entry would
            // stall the drain, so it is discarded. The local cache still
            // has it — only the *sharing* is lost. The first send after a
            // cooldown expires doubles as the reconnect probe.
            counters.record_put_dropped();
            continue;
        }
        let framed = codec::encode_frame(FrameKind::Put, &codec::encode_entry(&entry));
        match client.send(&framed) {
            Ok(()) => counters.record_put_streamed(),
            Err(_) => counters.record_put_dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::CachePeer;

    fn get_request() -> Vec<u8> {
        codec::encode_frame(FrameKind::Get, &codec::encode_get(7, &[(1, 2)]))
    }

    fn drive_down(client: &mut PeerClient) {
        let give_up = Instant::now() + Duration::from_secs(10);
        while !client.is_down() {
            assert!(Instant::now() < give_up, "client never went down");
            if !client.ready() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let _ = client.request(&get_request());
        }
    }

    #[test]
    fn a_restarted_peer_is_readopted_after_the_down_cooldown() {
        let peer = CachePeer::bind("127.0.0.1:0", 1 << 12).expect("bind");
        let addr = peer.local_addr();
        let mut client = PeerClient::new(
            addr.to_string(),
            Duration::from_millis(500),
            Duration::from_millis(1),
            2,
        );
        let reply = client.request(&get_request()).expect("live peer answers");
        assert_eq!(reply.kind, FrameKind::GetMiss);
        assert!(!client.is_down());

        // Kill the peer and burn the failure budget against it.
        peer.shutdown();
        drive_down(&mut client);
        assert!(!client.ready(), "down must start a cooldown, not allow immediate probes");
        assert_eq!(client.reconnects(), 0);

        // Restart the peer on the same port (the OS may briefly hold it),
        // then let the cooldown expire: the next operation is the half-open
        // probe and must re-adopt the revived peer.
        let revived = loop {
            match CachePeer::bind(&addr.to_string(), 1 << 12) {
                Ok(peer) => break peer,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        let give_up = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < give_up, "probe never re-adopted the revived peer");
            if !client.ready() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            if client.request(&get_request()).is_ok() {
                break;
            }
        }
        assert!(!client.is_down());
        assert_eq!(client.reconnects(), 1);
        revived.shutdown();
    }

    #[test]
    fn failed_probes_deepen_the_down_state_without_a_fresh_budget() {
        // Nothing listens here: TEST-NET-1 port 9 never answers; use a
        // refused loopback port instead so failures are immediate.
        let dead = CachePeer::bind("127.0.0.1:0", 1 << 12).expect("bind");
        let addr = dead.local_addr();
        dead.shutdown();
        let mut client = PeerClient::new(
            addr.to_string(),
            Duration::from_millis(200),
            Duration::from_millis(1),
            1,
        );
        drive_down(&mut client);
        // A failed half-open probe books exactly one more down transition —
        // it must not get `max_retries` fresh attempts.
        let give_up = Instant::now() + Duration::from_secs(10);
        while !client.ready() {
            assert!(Instant::now() < give_up);
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = client.request(&get_request());
        assert!(client.is_down(), "one failed probe must re-enter the down state immediately");
        assert!(!client.ready(), "a failed probe must start the next cooldown");
        assert_eq!(client.reconnects(), 0);
    }
}
