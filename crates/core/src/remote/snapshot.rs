//! The wire codec pointed at disk: cache snapshots for persistent warm
//! starts.
//!
//! A snapshot file is exactly one peer snapshot stream — a
//! [`SnapshotHeader`](crate::remote::codec::FrameKind::SnapshotHeader)
//! frame (stats + entry count), the entry frames, then
//! [`SnapshotEnd`](crate::remote::codec::FrameKind::SnapshotEnd) — so the
//! disk and socket paths share every decoder and every rejection rule.
//! Loading re-proves each entry through the codec's checksum verification:
//! an individually corrupt entry is counted and skipped, while a truncated
//! or desynced file stops the load at the damage, keeping everything
//! decoded before it. [`save`] writes through a temp file and renames, so
//! a crash mid-save leaves the previous snapshot intact rather than a
//! half-written one.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::path::Path;

use crate::cache::{CacheEntry, CacheStats, TrajectoryCache};
use crate::remote::codec::{self, FrameKind};

/// What a [`load`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoad {
    /// Entries decoded, verified and inserted.
    pub loaded: u64,
    /// Frames rejected: corrupt entries skipped, plus one for a stream that
    /// ended without its `SnapshotEnd` (truncation) or lost framing sync.
    pub rejected: u64,
    /// Whether the stream terminated cleanly with `SnapshotEnd`.
    pub complete: bool,
    /// The saving run's cache counters, from the snapshot header — the
    /// warm-start harness compares its own hit rate against these.
    pub saved_stats: CacheStats,
}

/// Exports every live entry of `cache` to `path`, returning how many were
/// written. The export is a point-in-time walk (see
/// [`TrajectoryCache::for_each_entry`]); the header's count is taken from
/// the collected batch so header and stream always agree.
///
/// # Errors
/// Propagates file creation and write failures. The target is written as
/// `<path>.tmp` and renamed into place only after a successful flush.
pub fn save(cache: &TrajectoryCache, path: &Path) -> io::Result<u64> {
    let mut entries: Vec<CacheEntry> = Vec::new();
    cache.for_each_entry(|entry| entries.push(entry.clone()));
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut writer = BufWriter::new(File::create(&tmp)?);
    let header = codec::encode_snapshot_header(&cache.stats(), entries.len() as u64);
    writer.write_all(&codec::encode_frame(FrameKind::SnapshotHeader, &header))?;
    for entry in &entries {
        writer.write_all(&codec::encode_frame(FrameKind::Entry, &codec::encode_entry(entry)))?;
    }
    writer.write_all(&codec::encode_frame(FrameKind::SnapshotEnd, &[]))?;
    writer.flush()?;
    drop(writer);
    std::fs::rename(&tmp, path)?;
    Ok(entries.len() as u64)
}

/// Replays a snapshot file into `cache` (through the un-echoed insert path
/// — loaded entries never stream back out through the write-behind
/// observer). See [`SnapshotLoad`] for the damage accounting.
///
/// # Errors
/// Propagates open failures (a missing file is the caller's cold-start
/// signal) and a malformed or missing header (nothing trustworthy to
/// load). Damage *after* a valid header degrades to a partial load, not an
/// error.
pub fn load(cache: &TrajectoryCache, path: &Path) -> io::Result<SnapshotLoad> {
    let mut reader = BufReader::new(File::open(path)?);
    let bad_header = || io::Error::new(io::ErrorKind::InvalidData, "bad snapshot header");
    let header = codec::read_frame(&mut reader)?.ok_or_else(bad_header)?;
    if header.kind != FrameKind::SnapshotHeader {
        return Err(bad_header());
    }
    let (stats, _count) = codec::decode_snapshot_header(&header.payload).ok_or_else(bad_header)?;
    let mut result = SnapshotLoad { saved_stats: stats, ..SnapshotLoad::default() };
    loop {
        let frame = match codec::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // Truncation (clean EOF without SnapshotEnd, or EOF mid-frame)
            // and desync both stop the load at the damage.
            Ok(None) | Err(_) => {
                result.rejected += 1;
                return Ok(result);
            }
        };
        match frame.kind {
            FrameKind::Entry => match codec::decode_entry(&frame.payload) {
                Some(entry) => {
                    cache.insert_unobserved(entry);
                    result.loaded += 1;
                }
                None => result.rejected += 1,
            },
            FrameKind::SnapshotEnd => {
                result.complete = true;
                return Ok(result);
            }
            _ => {
                result.rejected += 1;
                return Ok(result);
            }
        }
    }
}
