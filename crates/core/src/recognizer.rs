//! The recognizer: finding instruction pointers worth speculating on (§4.3).
//!
//! The recognizer induces a hyperplane through state space by picking states
//! that share an instruction-pointer value. A good recognized IP (RIP) must
//! (a) recur, (b) be *widely spaced* — the speculative execution from one
//! occurrence to the next must be long enough to outweigh lookup and
//! communication costs — and (c) have successor states the predictors can
//! actually predict. The search proceeds in two phases, as in the paper:
//! first profile every observed IP's occurrence statistics, then evaluate the
//! most promising candidates by training throw-away predictor banks on them
//! and measuring realised prediction accuracy.

use crate::config::AscConfig;
use crate::error::{AscError, AscResult};
use crate::predictor_bank::PredictorBank;
use asc_tvm::machine::Machine;
use asc_tvm::state::StateVector;
use std::collections::HashMap;

/// Occurrence statistics for one candidate IP value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateStats {
    /// The instruction pointer value.
    pub ip: u32,
    /// Number of times it was observed.
    pub occurrences: u64,
    /// Instruction count at its first occurrence.
    pub first_instret: u64,
    /// Instruction count at its most recent occurrence.
    pub last_instret: u64,
}

impl CandidateStats {
    /// Mean number of instructions between occurrences.
    pub fn mean_gap(&self) -> f64 {
        if self.occurrences <= 1 {
            0.0
        } else {
            (self.last_instret - self.first_instret) as f64 / (self.occurrences - 1) as f64
        }
    }
}

/// Phase-one profiler: counts occurrences and spacing of every IP value seen.
#[derive(Debug, Clone, Default)]
pub struct IpProfiler {
    stats: HashMap<u32, CandidateStats>,
}

impl IpProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        IpProfiler::default()
    }

    /// Records that execution reached `ip` with `instret` instructions retired.
    pub fn record(&mut self, ip: u32, instret: u64) {
        self.stats
            .entry(ip)
            .and_modify(|s| {
                s.occurrences += 1;
                s.last_instret = instret;
            })
            .or_insert(CandidateStats {
                ip,
                occurrences: 1,
                first_instret: instret,
                last_instret: instret,
            });
    }

    /// Number of distinct IP values observed (Table 1's "unique IP values").
    pub fn unique_ips(&self) -> usize {
        self.stats.len()
    }

    /// The most promising candidates: IPs that recur, ranked by how much of
    /// the observed execution their occurrences span. For IPs that recur too
    /// frequently, a stride is chosen so that `stride` consecutive occurrences
    /// cover at least `min_superstep` instructions — this is how the paper's
    /// recognizer "adapts and considers only every 4000 instances" for the
    /// tight Collatz outer loop.
    ///
    /// `now` is the instruction count at the end of profiling; IPs whose last
    /// occurrence is stale (they stopped recurring, e.g. initialisation
    /// loops) are skipped, since speculation on them would never fire again.
    pub fn candidates(&self, min_superstep: u64, count: usize, now: u64) -> Vec<Candidate> {
        let window_start = self.stats.values().map(|s| s.first_instret).min().unwrap_or(0);
        let staleness_horizon = now.saturating_sub(now.saturating_sub(window_start) / 4);
        let mut ranked: Vec<&CandidateStats> = self
            .stats
            .values()
            .filter(|s| s.occurrences >= 3 && s.last_instret >= staleness_horizon)
            .collect();
        ranked.sort_by(|a, b| {
            let coverage_a = a.last_instret - a.first_instret;
            let coverage_b = b.last_instret - b.first_instret;
            coverage_b.cmp(&coverage_a).then(a.ip.cmp(&b.ip))
        });
        // Programs contain many IP values inside the *same* loop nest, all
        // with nearly identical spacing; evaluating every one of them is
        // wasted work. Bucket candidates by the magnitude of their mean gap
        // (one bucket per power of two) and pick round-robin across buckets —
        // best-covered IP of every bucket first, then the runners-up — so
        // that each loop level of the program (innermost body, middle loops,
        // outermost structure) is represented before any level gets a second
        // representative.
        let mut buckets: Vec<(u32, Vec<&CandidateStats>)> = Vec::new();
        for s in ranked {
            let gap = s.mean_gap().max(1.0);
            // Bucket granularity of ~1.5x: fine enough that adjacent loop
            // levels (e.g. an initialisation loop and the main processing
            // loop) do not collapse into one bucket.
            let bucket = (gap.ln() / 1.5f64.ln()).floor() as u32;
            match buckets.iter_mut().find(|(b, _)| *b == bucket) {
                Some((_, members)) => members.push(s),
                None => buckets.push((bucket, vec![s])),
            }
        }
        let mut chosen: Vec<Candidate> = Vec::new();
        let mut round = 0usize;
        while chosen.len() < count {
            let mut added = false;
            for (_, members) in &buckets {
                if let Some(s) = members.get(round) {
                    let gap = s.mean_gap().max(1.0);
                    let stride = (min_superstep as f64 / gap).ceil().max(1.0) as usize;
                    chosen.push(Candidate {
                        ip: s.ip,
                        stride,
                        mean_gap: gap,
                        occurrences: s.occurrences,
                    });
                    added = true;
                    if chosen.len() >= count {
                        break;
                    }
                }
            }
            if !added {
                break;
            }
            round += 1;
        }
        chosen
    }
}

/// A candidate RIP with its chosen occurrence stride.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The instruction pointer value.
    pub ip: u32,
    /// Consider only every `stride`-th occurrence (superstep = `stride` gaps).
    pub stride: usize,
    /// Mean instructions between raw occurrences.
    pub mean_gap: f64,
    /// Raw occurrence count during profiling.
    pub occurrences: u64,
}

/// The recognizer's final selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecognizedIp {
    /// The selected instruction pointer value.
    pub ip: u32,
    /// Occurrence stride defining one superstep.
    pub stride: usize,
    /// Mean instructions per superstep observed during evaluation.
    pub mean_superstep: f64,
    /// Fraction of evaluation supersteps whose successor state was predicted
    /// exactly (on the excitation bits).
    pub accuracy: f64,
    /// Expected utility: accuracy × mean superstep length.
    pub score: f64,
}

/// Outcome of the full two-phase recognizer run.
#[derive(Debug, Clone)]
pub struct RecognizerOutcome {
    /// The selected RIP.
    pub rip: RecognizedIp,
    /// All evaluated candidates with their scores, best first.
    pub evaluated: Vec<RecognizedIp>,
    /// Unique IP values observed while profiling.
    pub unique_ips: usize,
    /// Instructions consumed by profiling plus evaluation (the sequential
    /// part of Table 1's "converge time").
    pub instructions_spent: u64,
    /// The machine state at the end of the recognizer run, so the caller can
    /// resume execution without repeating work.
    pub resume_state: StateVector,
    /// Instructions retired in total by the resumed machine.
    pub resume_instret: u64,
    /// Whether the program halted during recognition (short programs).
    pub halted: bool,
}

/// Runs both recognizer phases starting from `initial` state.
///
/// Phase 1 executes `config.explore_instructions` while profiling IP
/// occurrences. Phase 2 continues execution, feeding every candidate's
/// occurrences to a throw-away [`PredictorBank`] and scoring realised
/// prediction accuracy, until each candidate has had
/// `config.evaluation_occurrences` scored supersteps (or a bounded budget is
/// exhausted).
///
/// # Errors
/// Returns [`AscError::NoRecognizedIp`] when nothing recurs widely enough,
/// [`AscError::ProgramTooShort`] when the program halts before profiling
/// found any repeating IP, and propagates simulator errors.
pub fn recognize(initial: &StateVector, config: &AscConfig) -> AscResult<RecognizerOutcome> {
    config.validate()?;
    let mut machine = Machine::from_state(initial.clone());
    let mut total_unique_ips = 0usize;

    // The recognizer adapts: if the candidates found in one profiling window
    // turn out to be unpredictable or stale (typical when the window covered
    // an initialisation phase that never runs again), it re-profiles from the
    // program's current position and tries again, exactly as the paper's
    // recognizer resets when "a change in program behaviour renders the
    // current RIP useless" (§4.4.1).
    const MAX_ATTEMPTS: usize = 8;
    for attempt in 1..=MAX_ATTEMPTS {
        let mut profiler = IpProfiler::new();

        // ---- Phase 1: profile IP occurrences. ----
        let mut halted = false;
        let phase1_end = machine.instret() + config.explore_instructions;
        while machine.instret() < phase1_end {
            match machine.step()? {
                asc_tvm::exec::StepOutcome::Continue => {
                    profiler.record(machine.state().ip(), machine.instret());
                }
                asc_tvm::exec::StepOutcome::Halted => {
                    halted = true;
                    break;
                }
            }
        }
        total_unique_ips = total_unique_ips.max(profiler.unique_ips());
        let candidates =
            profiler.candidates(config.min_superstep, config.candidate_count, machine.instret());
        if candidates.is_empty() {
            if halted {
                return Err(AscError::ProgramTooShort { executed: machine.instret() });
            }
            if attempt == MAX_ATTEMPTS {
                return Err(AscError::NoRecognizedIp);
            }
            continue;
        }

        // ---- Phase 2: evaluate candidate predictability. ----
        //
        // Exactly as in §4.3: each candidate gets a private predictor bank; when
        // the bank issues a prediction we *speculatively execute* a superstep
        // from the predicted state and keep the resulting cache entry in a local
        // cache of predictions; at the candidate's next occurrence we check
        // whether the real state matches that entry on its dependency (read) set.
        struct Evaluation {
            candidate: Candidate,
            bank: PredictorBank,
            pending: Option<crate::cache::CacheEntry>,
            raw_occurrences_left: usize,
            scored: usize,
            correct: usize,
            superstep_instructions: u64,
            supersteps: usize,
            last_occurrence_instret: Option<u64>,
        }
        let mut evaluations: Vec<Evaluation> = candidates
            .iter()
            .map(|candidate| Evaluation {
                candidate: *candidate,
                bank: PredictorBank::new(candidate.ip, config),
                pending: None,
                raw_occurrences_left: candidate.stride,
                scored: 0,
                correct: 0,
                superstep_instructions: 0,
                supersteps: 0,
                last_occurrence_instret: None,
            })
            .collect();

        // Warm-up and training occurrences plus the scored ones, per candidate.
        let needed = config.evaluation_occurrences
            + config.evaluation_training
            + config.excitation_warmup
            + 2;
        // Bound phase 2 so pathological candidates cannot stall recognition.
        let budget = config
            .explore_instructions
            .saturating_mul(8)
            .max(config.min_superstep * (needed as u64) * 4)
            .min(config.instruction_budget);

        let mut spent = 0u64;
        let phase2_start = machine.instret();
        while spent < budget && !halted {
            match machine.step()? {
                asc_tvm::exec::StepOutcome::Continue => {
                    spent += 1;
                    let ip = machine.state().ip();
                    let instret = machine.instret();
                    for evaluation in &mut evaluations {
                        if evaluation.candidate.ip != ip {
                            continue;
                        }
                        evaluation.raw_occurrences_left -= 1;
                        if evaluation.raw_occurrences_left > 0 {
                            continue;
                        }
                        evaluation.raw_occurrences_left = evaluation.candidate.stride;
                        // A strided occurrence of this candidate.
                        if let Some(previous) = evaluation.last_occurrence_instret {
                            evaluation.superstep_instructions += instret - previous;
                            evaluation.supersteps += 1;
                        }
                        evaluation.last_occurrence_instret = Some(instret);
                        let state = machine.state().clone();
                        // Score the speculative entry produced from the previous
                        // occurrence's prediction: a hit means the real state
                        // matches the entry's dependency set.
                        if let Some(entry) = evaluation.pending.take() {
                            evaluation.scored += 1;
                            if entry.matches(&state) {
                                evaluation.correct += 1;
                            }
                        }
                        evaluation.bank.observe(&state);
                        let trained_enough = evaluation.bank.observations()
                            >= (config.excitation_warmup + config.evaluation_training) as u64;
                        if evaluation.bank.is_ready()
                            && trained_enough
                            && evaluation.scored < config.evaluation_occurrences
                        {
                            if let Some(predicted) = evaluation.bank.predict_next(&state) {
                                if let Ok(result) = crate::speculator::execute_superstep(
                                    &predicted.state,
                                    evaluation.candidate.ip,
                                    evaluation.candidate.stride,
                                    config.max_superstep,
                                ) {
                                    if let Some(outcome) = result.completed() {
                                        evaluation.pending = Some(outcome.entry);
                                    }
                                }
                            }
                        }
                    }
                    // A candidate is finished when it has enough scored
                    // supersteps; it is written off as *stalled* when it has not
                    // occurred for many times its expected superstep spacing
                    // (e.g. an initialisation loop that will never run again).
                    // Waiting for stalled candidates would let short programs run
                    // to completion inside the recognizer.
                    let done = evaluations.iter().all(|e| {
                        if e.scored >= config.evaluation_occurrences {
                            return true;
                        }
                        let expected_gap =
                            (e.candidate.mean_gap * e.candidate.stride as f64).max(1.0);
                        // Candidates that have not occurred yet in *this*
                        // attempt are measured from this attempt's phase-2
                        // start, not from the literal exploration budget —
                        // on retry attempts instret is far beyond it and the
                        // old baseline wrote every candidate off as stalled
                        // before evaluation could begin.
                        let since_last =
                            instret - e.last_occurrence_instret.unwrap_or(phase2_start);
                        since_last as f64 > 20.0 * expected_gap
                    });
                    if done {
                        break;
                    }
                }
                asc_tvm::exec::StepOutcome::Halted => {
                    halted = true;
                }
            }
        }

        let mut evaluated: Vec<RecognizedIp> = evaluations
            .iter()
            .filter(|e| e.supersteps > 0)
            .map(|e| {
                let mean_superstep = e.superstep_instructions as f64 / e.supersteps as f64;
                let accuracy = if e.scored == 0 { 0.0 } else { e.correct as f64 / e.scored as f64 };
                RecognizedIp {
                    ip: e.candidate.ip,
                    stride: e.candidate.stride,
                    mean_superstep,
                    accuracy,
                    score: accuracy * mean_superstep,
                }
            })
            .collect();
        evaluated
            .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

        let best = evaluated
            .iter()
            .find(|r| r.mean_superstep >= config.min_superstep as f64 && r.accuracy > 0.0)
            .or_else(|| evaluated.iter().find(|r| r.accuracy > 0.0))
            .copied();

        // Retry from the current position when nothing was predictable — unless
        // the program already halted or this was the last attempt, in which case
        // the least-bad candidate (or an error) is returned.
        let rip = match best {
            Some(rip) => rip,
            None if !halted && attempt < MAX_ATTEMPTS => continue,
            None => evaluated.first().copied().ok_or(AscError::NoRecognizedIp)?,
        };

        return Ok(RecognizerOutcome {
            rip,
            evaluated,
            unique_ips: total_unique_ips,
            instructions_spent: machine.instret(),
            resume_state: machine.state().clone(),
            resume_instret: machine.instret(),
            halted,
        });
    }
    Err(AscError::NoRecognizedIp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_workloads::{collatz, ising};

    #[test]
    fn profiler_statistics() {
        let mut profiler = IpProfiler::new();
        // IP 16 occurs every 4 instructions, IP 64 every 40.
        for i in 1..=200u64 {
            if i % 4 == 0 {
                profiler.record(16, i);
            }
            if i % 40 == 0 {
                profiler.record(64, i);
            }
            profiler.record(1000 + i as u32, i); // unique IPs, never repeat
        }
        assert_eq!(profiler.unique_ips(), 202);
        let candidates = profiler.candidates(20, 4, 200);
        assert!(!candidates.is_empty());
        // The tight loop gets a stride so that a superstep spans >= 20 instructions.
        let tight = candidates.iter().find(|c| c.ip == 16).unwrap();
        assert!(tight.stride >= 5);
        let wide = candidates.iter().find(|c| c.ip == 64).unwrap();
        assert_eq!(wide.stride, 1);
    }

    #[test]
    fn recognizes_the_loop_head_of_a_simple_loop() {
        // A loop whose live-in values evolve affinely (a counter and a linear
        // accumulator), i.e. exactly the structure the paper's linear
        // regression predictor is designed for.
        let program = assemble(
            r#"
            main:
                movi r1, 5000
                movi r2, 0
            loop:
                add  r2, r2, 7
                mul  r3, r1, 3
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#,
        )
        .unwrap();
        let config = AscConfig { min_superstep: 30, ..AscConfig::for_tests() };
        let outcome = recognize(&program.initial_state().unwrap(), &config).unwrap();
        // The loop body is 5 instructions; with min_superstep 30 the stride
        // must cover several loop iterations.
        assert!(outcome.rip.stride >= 5);
        assert!(outcome.rip.accuracy > 0.6, "accuracy {:?}", outcome.rip);
        assert!(outcome.rip.mean_superstep >= 30.0);
        assert!(outcome.unique_ips >= 6);
        assert!(outcome.instructions_spent > 0);
    }

    #[test]
    fn recognizes_collatz_outer_loop_with_stride() {
        let params = collatz::CollatzParams { start: 2, count: 400 };
        let program = collatz::program(&params).unwrap();
        let config = AscConfig { min_superstep: 200, ..AscConfig::for_tests() };
        let outcome = recognize(&program.initial_state().unwrap(), &config).unwrap();
        // The chosen superstep must respect the minimum despite the tight loops.
        assert!(outcome.rip.mean_superstep >= 100.0, "{:?}", outcome.rip);
        assert!(outcome.rip.accuracy >= 0.5, "{:?}", outcome.rip);
    }

    #[test]
    fn recognizes_ising_energy_function() {
        let params = ising::IsingParams { nodes: 48, spins: 24, reps: 4, seed: 11 };
        let program = ising::program(&params).unwrap();
        let config = AscConfig {
            min_superstep: 200,
            explore_instructions: 20_000,
            ..AscConfig::for_tests()
        };
        let outcome = recognize(&program.initial_state().unwrap(), &config).unwrap();
        assert!(outcome.rip.mean_superstep >= 200.0, "{:?}", outcome.rip);
        // Pointer-chasing is predictable here because allocation was sequential.
        assert!(outcome.rip.accuracy >= 0.5, "{:?}", outcome.rip);
    }

    #[test]
    fn straight_line_program_has_no_rip() {
        let program =
            assemble("main:\n movi r1, 1\n movi r2, 2\n add r3, r1, r2\n halt\n").unwrap();
        let err =
            recognize(&program.initial_state().unwrap(), &AscConfig::for_tests()).unwrap_err();
        assert!(matches!(err, AscError::ProgramTooShort { .. } | AscError::NoRecognizedIp));
    }
}
