//! The continuous-speculation planner: speculation cadence decoupled from
//! cache misses.
//!
//! PR 1's worker pool dispatched speculative work only when the main thread
//! took a cache miss, and skipped re-planning while the pool was saturated.
//! The paper's architecture speculates *continuously* ahead of the main
//! thread: idle cores should always be working on the most valuable
//! predicted supersteps, whether or not the main thread just missed. This
//! module provides that cadence as a dedicated planner thread:
//!
//! * The main thread streams recognized-IP occurrences into a bounded
//!   [`OccurrenceChannel`] — every cache miss, plus a sparse sample during
//!   uninterrupted hit streaks (mid-streak, cloning the full state costs
//!   the fast-forwarding main thread more than the planner gains). Sends
//!   never block; when the channel is full the *oldest* occurrence is
//!   dropped — a lagging planner should anchor its predictions on fresh
//!   states, not stale ones.
//! * The planner owns the [`PredictorBank`] and the [`SpeculationPool`]. It
//!   trains the bank on each occurrence (using the cheap
//!   [`observe_incremental`] path most of the time; the full update every
//!   [`full_observe_interval`]-th occurrence keeps excitation discovery and
//!   drift detection alive) and maintains a *plan*: the rollout horizon of
//!   predicted future supersteps, ordered nearest-first.
//! * Each occurrence is matched against the plan. A match at depth `k`
//!   *confirms* the trajectory: the first `k+1` entries are consumed and the
//!   horizon is extended by fresh rollouts from the deepest surviving
//!   prediction. A mismatch *invalidates* the plan; the planner re-rolls
//!   from the live state.
//! * After every event — and on an idle timeout, so worker progress (landed
//!   cache inserts, but also faulted, exhausted or deduplicated jobs that
//!   freed queue slots) triggers re-dispatch even while the main thread
//!   fast-forwards without missing — the planner *tops up* the pool queue:
//!   undispatched plan
//!   entries not already covered by the cache are handed to workers,
//!   nearest-first (cumulative rollout probability decreases with depth, so
//!   nearest-first is highest-expected-utility-first).
//!
//! Determinism is inherited from the cache protocol: the planner only ever
//! decides *which* speculations run, and a cache entry is applied by the
//! main thread only when its full read set matches the live state, so
//! `final_state` is bit-for-bit identical with the planner on or off.
//!
//! [`observe_incremental`]: PredictorBank::observe_incremental
//! [`full_observe_interval`]: crate::config::PlannerConfig::full_observe_interval

use crate::cache::{LookupScratch, TrajectoryCache};
use crate::config::{AscConfig, PlannerConfig};
use crate::economics::{EconomicsStats, SpeculationEconomics};
use crate::predictor_bank::{PredictedState, PredictorBank};
use crate::recognizer::RecognizedIp;
use crate::workers::{PoolStats, SpeculationJob, SpeculationPool};
use asc_tvm::state::StateVector;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One recognized-IP occurrence reported by the main thread: the state
/// vector observed at the occurrence. Everything the planner needs — the
/// training signal, the plan-match target and the re-plan anchor — is the
/// state itself.
#[derive(Debug, Clone)]
pub struct OccurrenceEvent {
    /// The state vector at the occurrence.
    pub state: StateVector,
    /// Whether the immediately preceding occurrence was also reported. The
    /// main thread throttles sends during pure hit streaks, and the channel
    /// drops oldest when full; either way the event after the gap arrives
    /// with `contiguous == false`, and the planner severs the bank's
    /// training stream there — a transition spanning several supersteps
    /// would teach the ensemble a variable-stride successor function.
    pub contiguous: bool,
}

impl OccurrenceEvent {
    /// An event whose immediate predecessor was also reported.
    pub fn new(state: StateVector) -> Self {
        OccurrenceEvent { state, contiguous: true }
    }
}

/// Counters describing what a planner did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Occurrences received from the main thread.
    pub occurrences: u64,
    /// Occurrences dropped because the channel was full (planner lagging).
    pub dropped: u64,
    /// Full re-plans: rollouts from a live state after an empty or
    /// invalidated plan.
    pub replans: u64,
    /// Horizon extensions: rollouts chained from the deepest surviving
    /// prediction after confirmations consumed the front of the plan.
    pub extensions: u64,
    /// Occurrences that matched a planned prediction (trajectory confirmed).
    pub confirmed: u64,
    /// Occurrences that matched no planned prediction (plan discarded).
    pub invalidated: u64,
    /// Jobs the planner handed to the pool that were accepted.
    pub dispatched: u64,
    /// Idle wakeups that found landed cache inserts and re-topped the queue.
    pub insert_wakeups: u64,
}

/// What [`OccurrenceChannel::recv_timeout`] produced.
enum Received {
    /// An occurrence event.
    Event(OccurrenceEvent),
    /// The timeout elapsed with no event queued.
    Timeout,
    /// The channel was closed and fully drained.
    Closed,
}

struct ChannelState {
    queue: VecDeque<OccurrenceEvent>,
    dropped: u64,
    closed: bool,
}

/// The bounded, drop-oldest occurrence channel between the main thread and
/// the planner. Sending never blocks: the main thread must not stall on
/// speculation bookkeeping under any circumstance.
struct OccurrenceChannel {
    capacity: usize,
    state: Mutex<ChannelState>,
    available: Condvar,
}

impl OccurrenceChannel {
    fn new(capacity: usize) -> Self {
        OccurrenceChannel {
            capacity: capacity.max(1),
            state: Mutex::new(ChannelState { queue: VecDeque::new(), dropped: 0, closed: false }),
            available: Condvar::new(),
        }
    }

    /// Queues an event, dropping the oldest queued event when full. Never
    /// blocks. The event that ends up following a dropped one is marked
    /// non-contiguous so the receiver does not train across the gap.
    fn send(&self, mut event: OccurrenceEvent) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.closed {
            return;
        }
        if state.queue.len() >= self.capacity {
            state.queue.pop_front();
            state.dropped += 1;
            match state.queue.front_mut() {
                Some(follower) => follower.contiguous = false,
                // Capacity 1: the event being pushed follows the drop.
                None => event.contiguous = false,
            }
        }
        state.queue.push_back(event);
        drop(state);
        self.available.notify_one();
    }

    /// Pops a queued event without waiting. Used by the planner to drain a
    /// backlog before paying for rollouts: training must see *every*
    /// occurrence (a gappy stream teaches the ensemble a variable-stride
    /// successor function), planning only needs the freshest state.
    fn try_recv(&self) -> Option<OccurrenceEvent> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).queue.pop_front()
    }

    /// Waits up to `timeout` for an event. Drains queued events before
    /// reporting closure so no occurrence is lost at shutdown.
    fn recv_timeout(&self, timeout: Duration) -> Received {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(event) = state.queue.pop_front() {
                return Received::Event(event);
            }
            if state.closed {
                return Received::Closed;
            }
            let (next, wait) = self
                .available
                .wait_timeout(state, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if wait.timed_out() && state.queue.is_empty() {
                return if state.closed { Received::Closed } else { Received::Timeout };
            }
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    fn dropped(&self) -> u64 {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).dropped
    }
}

/// Everything a planner returns when it shuts down.
pub struct PlannerOutcome {
    /// The planner's own counters.
    pub stats: PlannerStats,
    /// Final counters of the pool the planner fed (workers joined).
    pub pool: PoolStats,
    /// The predictor bank, for the run report's learning statistics.
    pub bank: PredictorBank,
    /// Final counters of the planner's dispatch value model.
    pub economics: EconomicsStats,
}

/// Clears the planner's alive flag when the planner thread exits — by
/// normal return *or* by panic (the guard drops during the unwind). The
/// main loop polls the flag to detect a dead planner and fall back to
/// miss-driven dispatch instead of streaming occurrences into a channel
/// nobody drains.
struct AliveGuard(Arc<AtomicBool>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Main-thread handle to a running planner: send occurrences, then
/// [`shutdown`](PlannerHandle::shutdown) to collect the outcome.
pub struct PlannerHandle {
    channel: Arc<OccurrenceChannel>,
    thread: Option<JoinHandle<PlannerOutcome>>,
    alive: Arc<AtomicBool>,
}

impl std::fmt::Debug for PlannerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerHandle").field("running", &self.thread.is_some()).finish()
    }
}

impl PlannerHandle {
    /// Spawns a planner thread owning `pool` and a fresh predictor bank for
    /// `rip`, reading occurrences from a bounded drop-oldest channel.
    ///
    /// # Errors
    /// Returns the spawn error when the OS refuses the thread. The pool is
    /// consumed either way (it travels in the thread closure); on failure
    /// the caller builds a fresh pool and falls back to miss-driven
    /// dispatch — a planner that cannot start must degrade the run, not
    /// abort it.
    pub fn spawn(
        config: &AscConfig,
        rip: RecognizedIp,
        cache: Arc<TrajectoryCache>,
        pool: SpeculationPool,
    ) -> std::io::Result<Self> {
        let channel = Arc::new(OccurrenceChannel::new(config.planner.channel_capacity));
        let thread_channel = Arc::clone(&channel);
        let alive = Arc::new(AtomicBool::new(true));
        let guard = AliveGuard(Arc::clone(&alive));
        let bank = PredictorBank::new(rip.ip, config);
        let planner = Planner {
            config: config.planner.clone(),
            rip,
            max_superstep: config.max_superstep,
            cache,
            pool,
            bank,
            plan: VecDeque::new(),
            live: None,
            inserts_seen: 0,
            lookup: LookupScratch::new(),
            economics: SpeculationEconomics::new(&config.economics),
            stats: PlannerStats::default(),
        };
        let thread = std::thread::Builder::new().name("asc-planner".into()).spawn(move || {
            let _alive = guard;
            planner.run(&thread_channel)
        })?;
        Ok(PlannerHandle { channel, thread: Some(thread), alive })
    }

    /// Reports a recognized-IP occurrence. Never blocks; a full channel
    /// drops the oldest queued occurrence.
    pub fn send(&self, event: OccurrenceEvent) {
        self.channel.send(event);
    }

    /// Whether the planner thread is still running. `false` means it
    /// returned or panicked: occurrences sent now land in a channel nobody
    /// drains, so the main loop should fall back to miss-driven dispatch.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Closes the channel, waits for the planner to drain it and join its
    /// worker pool, and returns the combined outcome — or `None` when the
    /// planner thread panicked (its pool was shut down by the unwind; the
    /// outcome died with it).
    pub fn shutdown(mut self) -> Option<PlannerOutcome> {
        self.channel.close();
        let thread = self.thread.take().expect("planner joined twice");
        thread.join().ok()
    }
}

impl Drop for PlannerHandle {
    fn drop(&mut self) {
        self.channel.close();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// One plan entry: a predicted future superstep plus whether it has already
/// been offered to the pool (faulted or exhausted speculations must not be
/// re-dispatched forever).
struct PlannedStep {
    predicted: PredictedState,
    attempted: bool,
}

/// The planner's thread-local state.
struct Planner {
    config: PlannerConfig,
    rip: RecognizedIp,
    max_superstep: u64,
    cache: Arc<TrajectoryCache>,
    pool: SpeculationPool,
    bank: PredictorBank,
    /// Predicted future supersteps, nearest-first. Front = next occurrence.
    plan: VecDeque<PlannedStep>,
    /// The freshest occurrence state: the anchor for the next re-plan.
    live: Option<StateVector>,
    /// Cache-insert count at the last top-up, for insert-triggered wakeups.
    inserts_seen: u64,
    /// Reusable scratch for the top-up loop's cache-coverage checks.
    lookup: LookupScratch,
    /// The dispatch value model. The planner never sees individual lookup
    /// outcomes (those happen on the main thread), so its realized-rate EMA
    /// is delta-fed from the cache's monotone query/hit totals once per
    /// drained occurrence batch.
    economics: SpeculationEconomics,
    stats: PlannerStats,
}

impl Planner {
    fn run(mut self, channel: &OccurrenceChannel) -> PlannerOutcome {
        let idle = Duration::from_millis(self.config.idle_poll_ms.max(1));
        loop {
            match channel.recv_timeout(idle) {
                Received::Event(event) => {
                    // Train on the *whole* queued backlog before paying for
                    // rollouts: every queued event must reach the bank (gaps
                    // — from send throttling or channel drops — arrive
                    // marked `contiguous == false` and sever the training
                    // stream rather than feeding it a variable-stride
                    // transition), and — just as important — the re-plan
                    // anchor must be the freshest state available, or every
                    // dispatched prediction is stale on arrival. Overload
                    // protection is the channel's job: when the planner
                    // truly cannot keep up, the bounded channel drops oldest
                    // instead of letting the backlog (and the anchor's
                    // staleness) grow without bound.
                    self.on_occurrence(event);
                    while let Some(event) = channel.try_recv() {
                        self.on_occurrence(event);
                    }
                    self.observe_economics();
                    self.extend_plan();
                    self.top_up();
                }
                Received::Timeout => self.on_idle(),
                Received::Closed => break,
            }
        }
        self.stats.dropped = channel.dropped();
        PlannerOutcome {
            stats: self.stats,
            pool: self.pool.shutdown(),
            bank: self.bank,
            economics: self.economics.stats(),
        }
    }

    /// Feeds the value model once per drained batch: the cache's monotone
    /// lookup totals (the main thread's realized hits and misses) and the
    /// bank's windowed whole-state accuracy. Batched rather than
    /// per-occurrence because both reads cross shard/atomic boundaries.
    fn observe_economics(&mut self) {
        let stats = self.cache.stats();
        self.economics.observe_cache_totals(stats.queries, stats.hits);
        self.economics.observe_model(self.bank.recent_error_rate());
    }

    /// Trains on one occurrence and reconciles it with the plan. Does not
    /// roll out or dispatch — the caller does that once per drained batch.
    fn on_occurrence(&mut self, event: OccurrenceEvent) {
        self.stats.occurrences += 1;
        if self.pool.supervision().planner_death(self.stats.occurrences) {
            // The unwind drops `self`, which shuts the pool down cleanly;
            // the alive guard flips the flag so the main loop notices.
            panic!("injected planner death");
        }
        if !event.contiguous {
            self.bank.break_stream();
        }
        if self.stats.occurrences % self.config.full_observe_interval as u64 == 0 {
            self.bank.observe(&event.state);
        } else {
            self.bank.observe_incremental(&event.state);
        }
        if !self.bank.is_ready() {
            return;
        }

        // Match the occurrence against the plan: a hit at depth k confirms
        // the predicted trajectory up to k; a miss invalidates it.
        if !self.plan.is_empty() {
            let matched = self
                .plan
                .iter()
                .position(|step| self.bank.prediction_matches(&step.predicted.state, &event.state));
            match matched {
                Some(depth) => {
                    self.stats.confirmed += 1;
                    self.plan.drain(..=depth);
                }
                None => {
                    self.stats.invalidated += 1;
                    self.plan.clear();
                }
            }
        }
        self.live = Some(event.state);
    }

    /// Idle tick: re-tops the queue when worker progress freed slots since
    /// the last top-up. Landed cache inserts are one signal, but jobs that
    /// fault, exhaust or deduplicate also free slots without inserting — so
    /// a pool that drained below the watermark while undispatched plan
    /// entries remain triggers a top-up too.
    fn on_idle(&mut self) {
        let inserted = self.cache.stats().inserted;
        if inserted > self.inserts_seen {
            self.stats.insert_wakeups += 1;
            self.top_up();
            return;
        }
        let starved =
            self.pool.pending() < self.watermark() && self.plan.iter().any(|step| !step.attempted);
        if starved {
            self.top_up();
        }
    }

    /// Grows the plan back to the rip's *economic* horizon — the configured
    /// horizon shortened by the value model when this rip's predictions are
    /// not landing, so chained rollout work shrinks with the evidence — by
    /// rolling out from the deepest surviving prediction (or from the live
    /// state after an invalidation or at the very start).
    fn extend_plan(&mut self) {
        let target = self.economics.horizon(self.config.horizon);
        if !self.bank.is_ready() || self.plan.len() >= target {
            return;
        }
        let missing = target - self.plan.len();
        let (anchor, extending) = match self.plan.back() {
            Some(deepest) => (deepest.predicted.state.clone(), true),
            None => match &self.live {
                Some(live) => (live.clone(), false),
                None => return,
            },
        };
        let rollouts = self.bank.rollout(&anchor, missing);
        if rollouts.is_empty() {
            return;
        }
        if extending {
            self.stats.extensions += 1;
        } else {
            self.stats.replans += 1;
        }
        self.plan.extend(
            rollouts.into_iter().map(|predicted| PlannedStep { predicted, attempted: false }),
        );
    }

    /// Target queue depth: every worker busy plus one job queued ahead.
    fn watermark(&self) -> usize {
        self.pool.workers() + 1
    }

    /// Hands undispatched, uncovered plan entries to the pool, nearest-first,
    /// until every worker has work plus a little queued ahead. The watermark
    /// is deliberately shallow: deeply queued predictions go stale before a
    /// worker frees up, and on machines where workers timeshare a core with
    /// the main thread, excess speculation actively slows the run down.
    fn top_up(&mut self) {
        self.inserts_seen = self.cache.stats().inserted;
        let watermark = self.watermark();
        for step in self.plan.iter_mut() {
            if self.pool.pending() >= watermark {
                break;
            }
            if step.attempted {
                continue;
            }
            // Marked whether accepted, deduplicated, dropped, suppressed or
            // already covered: this exact prediction is never offered twice.
            step.attempted = true;
            if self.cache.covers_with(self.rip.ip, &step.predicted.state, &mut self.lookup) {
                continue;
            }
            // The value test: a candidate whose calibrated P(hit) cannot pay
            // for the worker's superstep stays in the plan (it still anchors
            // confirmations and extensions) but never reaches the pool.
            if !self.economics.evaluate(
                step.predicted.log_probability,
                step.predicted.depth,
                self.rip.mean_superstep,
            ) {
                continue;
            }
            if self.pool.dispatch(SpeculationJob {
                start: step.predicted.state.clone(),
                rip: self.rip.ip,
                stride: self.rip.stride,
                max_instructions: self.max_superstep,
            }) {
                self.stats.dispatched += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_asm::assemble;
    use asc_tvm::machine::Machine;

    fn looping_program() -> (asc_tvm::program::Program, u32) {
        let program = assemble(
            r#"
            main:
                movi r1, 400
                movi r2, 0
            loop:
                add  r2, r2, r1
                sub  r1, r1, 1
                cmpi r1, 0
                jne  loop
                halt
            "#,
        )
        .unwrap();
        let rip = program.symbol("loop").unwrap();
        (program, rip)
    }

    fn recognized(rip: u32) -> RecognizedIp {
        RecognizedIp { ip: rip, stride: 1, mean_superstep: 4.0, accuracy: 1.0, score: 1.0 }
    }

    fn planner_config() -> AscConfig {
        AscConfig {
            explore_instructions: 5_000,
            min_superstep: 4,
            rollout_depth: 8,
            workers: 2,
            ..AscConfig::for_tests()
        }
    }

    #[test]
    fn channel_drops_oldest_when_full() {
        let channel = OccurrenceChannel::new(2);
        for tag in 1..=5u32 {
            let mut state = StateVector::new(64).unwrap();
            state.set_reg_index(1, tag);
            channel.send(OccurrenceEvent::new(state));
        }
        assert_eq!(channel.dropped(), 3);
        // The two *newest* events survive; the one right after the gap is
        // marked non-contiguous so the receiver won't train across it.
        let Received::Event(first) = channel.recv_timeout(Duration::from_millis(1)) else {
            panic!("expected an event");
        };
        let Received::Event(second) = channel.recv_timeout(Duration::from_millis(1)) else {
            panic!("expected an event");
        };
        assert_eq!(first.state.reg_index(1), 4);
        assert!(!first.contiguous);
        assert_eq!(second.state.reg_index(1), 5);
        assert!(second.contiguous);
        assert!(matches!(channel.recv_timeout(Duration::from_millis(1)), Received::Timeout));
    }

    #[test]
    fn channel_reports_closed_only_after_draining() {
        let channel = OccurrenceChannel::new(4);
        let state = StateVector::new(64).unwrap();
        channel.send(OccurrenceEvent::new(state));
        channel.close();
        assert!(matches!(channel.recv_timeout(Duration::from_millis(1)), Received::Event(_)));
        assert!(matches!(channel.recv_timeout(Duration::from_millis(1)), Received::Closed));
        // Sends after close are discarded, not queued.
        channel.send(OccurrenceEvent::new(StateVector::new(64).unwrap()));
        assert!(matches!(channel.recv_timeout(Duration::from_millis(1)), Received::Closed));
    }

    #[test]
    fn planner_fills_cache_from_occurrence_stream() {
        let (program, rip) = looping_program();
        let config = planner_config();
        let cache = Arc::new(TrajectoryCache::new(1 << 12));
        let pool = SpeculationPool::new(2, Arc::clone(&cache));
        let handle =
            PlannerHandle::spawn(&config, recognized(rip), Arc::clone(&cache), pool).unwrap();

        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 10_000).unwrap();
        for _ in 0..120 {
            handle.send(OccurrenceEvent::new(machine.state().clone()));
            machine.run_until_ip(rip, 10_000).unwrap();
            if machine.is_halted() {
                break;
            }
        }
        // Give in-flight speculation a moment, then shut down cleanly.
        let outcome = handle.shutdown().expect("planner must not panic");
        assert!(outcome.stats.occurrences > 50, "{:?}", outcome.stats);
        assert!(outcome.bank.is_ready());
        assert!(outcome.stats.replans > 0, "{:?}", outcome.stats);
        assert!(outcome.stats.dispatched > 0, "{:?}", outcome.stats);
        // The pool really executed the dispatched predictions and the cache
        // holds their trajectories (the loop is exactly predictable).
        assert_eq!(
            outcome.pool.dispatched,
            outcome.pool.completed + outcome.pool.faulted + outcome.pool.exhausted,
            "pool shutdown lost jobs: {:?}",
            outcome.pool
        );
        assert!(!cache.is_empty());
    }

    #[test]
    fn shutdown_with_jobs_in_flight_is_clean() {
        // An endless spin keeps both workers busy forever (within budget), so
        // shutdown happens with jobs guaranteed in flight.
        let program = assemble("spin:\n jmp spin\n").unwrap();
        let config = AscConfig { workers: 2, max_superstep: 3_000_000, ..planner_config() };
        let cache = Arc::new(TrajectoryCache::new(64));
        let mut pool = SpeculationPool::new(2, Arc::clone(&cache));
        let mut spin_state = program.initial_state().unwrap();
        for i in 0..4u32 {
            spin_state.set_reg_index(2, i); // distinct states defeat dedup
            pool.dispatch(SpeculationJob {
                start: spin_state.clone(),
                rip: 8, // never reached
                stride: 1,
                max_instructions: 3_000_000,
            });
        }
        let handle =
            PlannerHandle::spawn(&config, recognized(0), Arc::clone(&cache), pool).unwrap();
        handle.send(OccurrenceEvent::new(program.initial_state().unwrap()));
        // Shutdown must drain the spinning jobs and join without deadlock.
        let outcome = handle.shutdown().expect("planner must not panic");
        assert_eq!(
            outcome.pool.dispatched,
            outcome.pool.completed + outcome.pool.faulted + outcome.pool.exhausted,
            "{:?}",
            outcome.pool
        );
    }

    #[test]
    fn flooding_a_full_channel_never_blocks_the_sender() {
        let (program, rip) = looping_program();
        // A one-slot channel with a slow planner poll: sends vastly outpace
        // receives, so the drop-oldest path is exercised constantly.
        let config = AscConfig {
            workers: 1,
            planner: crate::config::PlannerConfig {
                channel_capacity: 1,
                idle_poll_ms: 20,
                ..crate::config::PlannerConfig::default()
            },
            ..planner_config()
        };
        let cache = Arc::new(TrajectoryCache::new(64));
        let pool = SpeculationPool::new(1, Arc::clone(&cache));
        let handle =
            PlannerHandle::spawn(&config, recognized(rip), Arc::clone(&cache), pool).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_until_ip(rip, 10_000).unwrap();
        let started = std::time::Instant::now();
        for _ in 0..2_000 {
            handle.send(OccurrenceEvent::new(machine.state().clone()));
        }
        // 2000 sends through a 1-slot channel must be near-instant; blocking
        // would take 2000 × poll interval.
        assert!(started.elapsed() < Duration::from_secs(2), "sender blocked on a full channel");
        let outcome = handle.shutdown().expect("planner must not panic");
        assert!(outcome.stats.dropped > 0, "{:?}", outcome.stats);
        assert!(outcome.stats.occurrences + outcome.stats.dropped >= 2_000, "{:?}", outcome.stats);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_planner_death_is_observable_and_joins_cleanly() {
        use crate::supervisor::Supervision;

        let (program, rip) = looping_program();
        let config = AscConfig {
            fault: Some(crate::fault::FaultPlan {
                planner_death_after: Some(1),
                ..crate::fault::FaultPlan::default()
            }),
            ..planner_config()
        };
        let supervision = Supervision::from_config(&config);
        let cache = Arc::new(TrajectoryCache::new(64));
        let pool = SpeculationPool::with_supervision(2, Arc::clone(&cache), supervision.clone());
        let handle =
            PlannerHandle::spawn(&config, recognized(rip), Arc::clone(&cache), pool).unwrap();
        assert!(handle.is_alive());
        // The first processed occurrence kills the planner; the alive flag
        // flips during the unwind, which also joins the pool.
        handle.send(OccurrenceEvent::new(program.initial_state().unwrap()));
        for _ in 0..2_000 {
            if !handle.is_alive() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!handle.is_alive(), "planner should have died at occurrence 1");
        // A panicked planner has no outcome to hand back.
        assert!(handle.shutdown().is_none());
        assert_eq!(supervision.health.injected_faults(), 1);
    }
}
