//! # asc-asm — assembler and disassembler for the TVM ISA
//!
//! This crate stands in for the standard toolchain (GCC + binutils) the paper
//! compiles its benchmarks with: it turns human-readable assembly into the
//! freestanding [`Program`](asc_tvm::program::Program) images the
//! trajectory-based simulator executes. The benchmark kernels in
//! `asc-workloads` and the code generator in `asc-lang` both lower through
//! this crate.
//!
//! ```
//! use asc_asm::assemble;
//! use asc_tvm::machine::Machine;
//! use asc_tvm::isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "main:\n movi r1, 6\n movi r2, 7\n mul r3, r1, r2\n halt\n",
//! )?;
//! let mut machine = Machine::load(&program)?;
//! machine.run_to_halt(100)?;
//! assert_eq!(machine.reg(Reg::new(3).unwrap()), 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assemble;
pub mod ast;
pub mod disasm;
pub mod error;
pub mod parser;

pub use assemble::{assemble, Assembler};
pub use error::{AsmError, AsmErrorKind, AsmResult};
