//! Disassembler: turn code images back into readable listings.
//!
//! Used by the experiment harnesses to report the benchmarks' unique IP
//! values (Table 1) and by tests that check the assembler round-trips.

use asc_tvm::encode::decode;
use asc_tvm::error::VmResult;
use asc_tvm::isa::{Instruction, INSTRUCTION_BYTES};

/// One disassembled instruction with its address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Address of the instruction in the memory segment.
    pub addr: u32,
    /// The decoded instruction.
    pub instruction: Instruction,
}

/// Disassembles a code image loaded at address 0.
///
/// # Errors
/// Returns a decode error for the first malformed instruction encountered.
///
/// # Examples
/// ```
/// use asc_asm::{assemble, disasm::disassemble};
/// let program = assemble("main:\n movi r1, 3\n halt\n").unwrap();
/// let lines = disassemble(program.code()).unwrap();
/// assert_eq!(lines.len(), 2);
/// assert_eq!(lines[1].addr, 8);
/// ```
pub fn disassemble(code: &[u8]) -> VmResult<Vec<Line>> {
    let mut lines = Vec::with_capacity(code.len() / INSTRUCTION_BYTES as usize);
    let mut addr = 0u32;
    for chunk in code.chunks_exact(INSTRUCTION_BYTES as usize) {
        let mut raw = [0u8; INSTRUCTION_BYTES as usize];
        raw.copy_from_slice(chunk);
        lines.push(Line { addr, instruction: decode(&raw, addr)? });
        addr += INSTRUCTION_BYTES;
    }
    Ok(lines)
}

/// Renders a disassembly as a text listing, one instruction per line.
pub fn listing(code: &[u8]) -> VmResult<String> {
    let lines = disassemble(code)?;
    let mut out = String::new();
    for line in lines {
        out.push_str(&format!("{:#06x}:  {}\n", line.addr, line.instruction));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::assemble;

    #[test]
    fn disassembly_matches_source_structure() {
        let program = assemble(
            "main:\n movi r1, 5\n loop:\n subi r1, r1, 1\n cmpi r1, 0\n jne loop\n halt\n",
        )
        .unwrap();
        let lines = disassemble(program.code()).unwrap();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].instruction.to_string(), "movi r1, 5");
        assert!(lines[1].instruction.to_string().starts_with("addi r1, r1, -1"));
        assert_eq!(lines.last().unwrap().instruction.to_string(), "halt");
    }

    #[test]
    fn listing_contains_addresses() {
        let program = assemble("main:\n nop\n halt\n").unwrap();
        let text = listing(program.code()).unwrap();
        assert!(text.contains("0x0000"));
        assert!(text.contains("0x0008"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn bad_code_reports_error() {
        assert!(disassemble(&[0xff, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
