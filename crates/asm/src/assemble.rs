//! Two-pass assembly of parsed items into a loadable [`Program`].

use crate::ast::{Expr, Item, Operand, SourceItem};
use crate::error::{AsmError, AsmErrorKind, AsmResult};
use crate::parser::parse;
use asc_tvm::encode::encode_all;
use asc_tvm::isa::{Instruction, Opcode, Reg, INSTRUCTION_BYTES};
use asc_tvm::program::Program;
use std::collections::BTreeMap;

/// Default amount of memory reserved beyond the image for heap and stack.
const DEFAULT_HEADROOM: usize = 64 * 1024;

/// Configurable assembler.
///
/// # Examples
/// ```
/// use asc_asm::Assembler;
/// let program = Assembler::new()
///     .mem_size(8192)
///     .assemble("movi r1, 2\n movi r2, 3\n add r3, r1, r2\n halt\n")
///     .unwrap();
/// assert_eq!(program.mem_size(), 8192);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    mem_size: Option<usize>,
    headroom: Option<usize>,
}

impl Assembler {
    /// Creates an assembler with default memory sizing (image + 64 KiB).
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Sets the exact memory segment size of the produced program.
    pub fn mem_size(mut self, bytes: usize) -> Self {
        self.mem_size = Some(bytes);
        self
    }

    /// Sets the heap/stack headroom added beyond the image when no exact
    /// memory size is given.
    pub fn headroom(mut self, bytes: usize) -> Self {
        self.headroom = Some(bytes);
        self
    }

    /// Assembles source text into a program image.
    ///
    /// # Errors
    /// Returns an [`AsmError`] describing the first problem found, tagged
    /// with its source line.
    pub fn assemble(&self, source: &str) -> AsmResult<Program> {
        let items = parse(source)?;
        if items.is_empty() {
            return Err(AsmError::at(0, AsmErrorKind::Malformed("empty program".into())));
        }
        let layout = Layout::build(&items)?;
        let code = emit_text(&items, &layout)?;
        let data = emit_data(&items, &layout)?;

        let image_end = layout.data_base as usize + layout.data_size;
        let mem_size = match self.mem_size {
            Some(size) => {
                if size < image_end {
                    return Err(AsmError::at(
                        0,
                        AsmErrorKind::TooLarge { required: image_end, mem_size: size },
                    ));
                }
                size
            }
            None => image_end + self.headroom.unwrap_or(DEFAULT_HEADROOM),
        };

        let entry = layout.symbols.get("main").copied().unwrap_or(0);
        let mut program = Program::new(code, entry, mem_size).map_err(|_| {
            AsmError::at(0, AsmErrorKind::TooLarge { required: image_end, mem_size })
        })?;
        if !data.is_empty() {
            program = program.with_data(layout.data_base, data).map_err(|_| {
                AsmError::at(0, AsmErrorKind::TooLarge { required: image_end, mem_size })
            })?;
        }
        for (name, addr) in &layout.symbols {
            program = program.with_symbol(name.clone(), *addr);
        }
        let source_lines = source
            .lines()
            .filter(|l| {
                let l = l.trim();
                !l.is_empty() && !l.starts_with(';') && !l.starts_with('#')
            })
            .count();
        Ok(program.with_source_lines(source_lines))
    }
}

/// Assembles with default options. See [`Assembler::assemble`].
///
/// # Errors
/// Returns an [`AsmError`] when the source does not assemble.
pub fn assemble(source: &str) -> AsmResult<Program> {
    Assembler::new().assemble(source)
}

/// Which section an item belongs to during layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Result of the first pass: symbol addresses and section geometry.
struct Layout {
    symbols: BTreeMap<String, u32>,
    data_base: u32,
    data_size: usize,
}

impl Layout {
    fn build(items: &[SourceItem]) -> AsmResult<Self> {
        // First sub-pass: measure the text section.
        let mut text_size = 0u32;
        for source_item in items {
            if let Item::Instruction { .. } = source_item.item {
                if section_of(items, source_item) == Section::Text {
                    text_size += INSTRUCTION_BYTES;
                }
            }
        }
        // Data starts after the code, aligned generously so that `.align`
        // directives inside the data section behave as absolute alignment.
        let data_base = (text_size + 63) & !63;

        // Second sub-pass: assign addresses.
        let mut symbols = BTreeMap::new();
        let mut section = Section::Text;
        let mut text_cursor = 0u32;
        let mut data_cursor = 0u32;
        for source_item in items {
            match &source_item.item {
                Item::SectionText => section = Section::Text,
                Item::SectionData => section = Section::Data,
                Item::Label(name) => {
                    let addr = match section {
                        Section::Text => text_cursor,
                        Section::Data => data_base + data_cursor,
                    };
                    if symbols.insert(name.clone(), addr).is_some() {
                        return Err(AsmError::at(
                            source_item.line,
                            AsmErrorKind::DuplicateLabel(name.clone()),
                        ));
                    }
                }
                Item::Instruction { .. } => match section {
                    Section::Text => text_cursor += INSTRUCTION_BYTES,
                    Section::Data => {
                        return Err(AsmError::at(
                            source_item.line,
                            AsmErrorKind::Malformed("instruction in .data section".into()),
                        ))
                    }
                },
                Item::Word(values) => {
                    data_cursor = align_to(data_cursor, 4);
                    data_cursor += 4 * values.len() as u32;
                    require_data(section, source_item.line)?;
                }
                Item::Byte(values) => {
                    data_cursor += values.len() as u32;
                    require_data(section, source_item.line)?;
                }
                Item::Space(n) => {
                    data_cursor += n;
                    require_data(section, source_item.line)?;
                }
                Item::Align(n) => {
                    data_cursor = align_to(data_cursor, *n);
                    require_data(section, source_item.line)?;
                }
            }
        }
        Ok(Layout { symbols, data_base, data_size: data_cursor as usize })
    }

    fn resolve(&self, expr: &Expr, line: usize) -> AsmResult<i64> {
        match expr {
            Expr::Number(n) => Ok(*n),
            Expr::Symbol { name, offset } => self
                .symbols
                .get(name)
                .map(|addr| *addr as i64 + offset)
                .ok_or_else(|| AsmError::at(line, AsmErrorKind::UndefinedSymbol(name.clone()))),
        }
    }

    fn resolve_i32(&self, expr: &Expr, line: usize) -> AsmResult<i32> {
        let value = self.resolve(expr, line)?;
        i32::try_from(value)
            .or_else(|_| u32::try_from(value).map(|v| v as i32))
            .map_err(|_| AsmError::at(line, AsmErrorKind::BadNumber(value.to_string())))
    }
}

fn require_data(section: Section, line: usize) -> AsmResult<()> {
    if section == Section::Data {
        Ok(())
    } else {
        Err(AsmError::at(line, AsmErrorKind::Malformed("data directive in .text section".into())))
    }
}

fn align_to(value: u32, alignment: u32) -> u32 {
    debug_assert!(alignment.is_power_of_two());
    (value + alignment - 1) & !(alignment - 1)
}

/// Tracks which section an item falls in by replaying section switches up to
/// that item. Only used for the text-size pre-pass, where quadratic cost is
/// irrelevant because programs are small; the main pass tracks sections
/// incrementally.
fn section_of(items: &[SourceItem], target: &SourceItem) -> Section {
    let mut section = Section::Text;
    for item in items {
        if std::ptr::eq(item, target) {
            return section;
        }
        match item.item {
            Item::SectionText => section = Section::Text,
            Item::SectionData => section = Section::Data,
            _ => {}
        }
    }
    section
}

fn emit_text(items: &[SourceItem], layout: &Layout) -> AsmResult<Vec<u8>> {
    let mut instructions = Vec::new();
    let mut section = Section::Text;
    for source_item in items {
        match &source_item.item {
            Item::SectionText => section = Section::Text,
            Item::SectionData => section = Section::Data,
            Item::Instruction { mnemonic, operands } if section == Section::Text => {
                instructions.push(lower_instruction(mnemonic, operands, source_item.line, layout)?);
            }
            _ => {}
        }
    }
    Ok(encode_all(&instructions))
}

fn emit_data(items: &[SourceItem], layout: &Layout) -> AsmResult<Vec<u8>> {
    let mut bytes: Vec<u8> = Vec::with_capacity(layout.data_size);
    let mut section = Section::Text;
    for source_item in items {
        match &source_item.item {
            Item::SectionText => section = Section::Text,
            Item::SectionData => section = Section::Data,
            Item::Word(values) if section == Section::Data => {
                while bytes.len() % 4 != 0 {
                    bytes.push(0);
                }
                for value in values {
                    let v = layout.resolve_i32(value, source_item.line)?;
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
            Item::Byte(values) if section == Section::Data => {
                for value in values {
                    let v = layout.resolve(value, source_item.line)?;
                    bytes.push(v as u8);
                }
            }
            Item::Space(n) if section == Section::Data => {
                bytes.extend(std::iter::repeat_n(0u8, *n as usize));
            }
            Item::Align(n) if section == Section::Data => {
                while bytes.len() % *n as usize != 0 {
                    bytes.push(0);
                }
            }
            _ => {}
        }
    }
    Ok(bytes)
}

/// Lowers one mnemonic + operand list into a machine instruction, handling
/// pseudo-instructions and the register/immediate ALU duality.
fn lower_instruction(
    mnemonic: &str,
    operands: &[Operand],
    line: usize,
    layout: &Layout,
) -> AsmResult<Instruction> {
    let mismatch = |expected: &'static str| {
        AsmError::at(
            line,
            AsmErrorKind::OperandMismatch { mnemonic: mnemonic.to_string(), expected },
        )
    };
    let reg = |operand: &Operand, expected: &'static str| -> AsmResult<Reg> {
        match operand {
            Operand::Reg(r) => Ok(*r),
            _ => Err(mismatch(expected)),
        }
    };
    let imm = |operand: &Operand, expected: &'static str| -> AsmResult<i32> {
        match operand {
            Operand::Imm(e) => layout.resolve_i32(e, line),
            _ => Err(mismatch(expected)),
        }
    };

    // Pseudo-instruction: subi rd, rs, imm  =>  addi rd, rs, -imm
    if mnemonic == "subi" {
        if operands.len() != 3 {
            return Err(mismatch("rd, rs, imm"));
        }
        let rd = reg(&operands[0], "rd, rs, imm")?;
        let rs = reg(&operands[1], "rd, rs, imm")?;
        let value = imm(&operands[2], "rd, rs, imm")?;
        return Ok(Instruction::rri(Opcode::AddI, rd, rs, value.wrapping_neg()));
    }

    let opcode = Opcode::from_mnemonic(mnemonic)
        .ok_or_else(|| AsmError::at(line, AsmErrorKind::UnknownMnemonic(mnemonic.to_string())))?;

    use Opcode::*;
    match opcode {
        Halt | Nop | Ret => {
            if !operands.is_empty() {
                return Err(mismatch("no operands"));
            }
            Ok(Instruction::bare(opcode))
        }
        MovI => {
            if operands.len() != 2 {
                return Err(mismatch("rd, imm"));
            }
            Ok(Instruction::ri(
                opcode,
                reg(&operands[0], "rd, imm")?,
                imm(&operands[1], "rd, imm")?,
            ))
        }
        Mov | Neg | Not => {
            if operands.len() != 2 {
                return Err(mismatch("rd, rs"));
            }
            Ok(Instruction::rr(opcode, reg(&operands[0], "rd, rs")?, reg(&operands[1], "rd, rs")?))
        }
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
            if operands.len() != 3 {
                return Err(mismatch("rd, rs1, rs2|imm"));
            }
            let rd = reg(&operands[0], "rd, rs1, rs2|imm")?;
            let rs1 = reg(&operands[1], "rd, rs1, rs2|imm")?;
            match &operands[2] {
                Operand::Reg(rs2) => Ok(Instruction::rrr(opcode, rd, rs1, *rs2)),
                Operand::Imm(e) => {
                    let value = layout.resolve_i32(e, line)?;
                    let immediate_form = match opcode {
                        Add => AddI,
                        Sub => AddI,
                        Mul => MulI,
                        Div => DivI,
                        Rem => RemI,
                        And => AndI,
                        Or => OrI,
                        Xor => XorI,
                        Shl => ShlI,
                        Shr => ShrI,
                        Sar => SarI,
                        _ => unreachable!(),
                    };
                    let value = if opcode == Sub { value.wrapping_neg() } else { value };
                    Ok(Instruction::rri(immediate_form, rd, rs1, value))
                }
                Operand::Mem { .. } => Err(mismatch("rd, rs1, rs2|imm")),
            }
        }
        AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
            if operands.len() != 3 {
                return Err(mismatch("rd, rs1, imm"));
            }
            Ok(Instruction::rri(
                opcode,
                reg(&operands[0], "rd, rs1, imm")?,
                reg(&operands[1], "rd, rs1, imm")?,
                imm(&operands[2], "rd, rs1, imm")?,
            ))
        }
        LdW | LdB => {
            if operands.len() != 2 {
                return Err(mismatch("rd, [base+imm]"));
            }
            let rd = reg(&operands[0], "rd, [base+imm]")?;
            match &operands[1] {
                Operand::Mem { base, offset } => {
                    Ok(Instruction::rri(opcode, rd, *base, layout.resolve_i32(offset, line)?))
                }
                _ => Err(mismatch("rd, [base+imm]")),
            }
        }
        StW | StB => {
            if operands.len() != 2 {
                return Err(mismatch("[base+imm], rs"));
            }
            let rs = reg(&operands[1], "[base+imm], rs")?;
            match &operands[0] {
                Operand::Mem { base, offset } => Ok(Instruction {
                    opcode,
                    a: base.index() as u8,
                    b: rs.index() as u8,
                    c: 0,
                    imm: layout.resolve_i32(offset, line)?,
                }),
                _ => Err(mismatch("[base+imm], rs")),
            }
        }
        Cmp => {
            if operands.len() != 2 {
                return Err(mismatch("rs1, rs2"));
            }
            Ok(Instruction::rr(
                opcode,
                reg(&operands[0], "rs1, rs2")?,
                reg(&operands[1], "rs1, rs2")?,
            ))
        }
        CmpI => {
            if operands.len() != 2 {
                return Err(mismatch("rs1, imm"));
            }
            Ok(Instruction::ri(
                opcode,
                reg(&operands[0], "rs1, imm")?,
                imm(&operands[1], "rs1, imm")?,
            ))
        }
        Jmp | Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu | Call => {
            if operands.len() != 1 {
                return Err(mismatch("target"));
            }
            Ok(Instruction::i(opcode, imm(&operands[0], "target")?))
        }
        JmpR | Push | Pop => {
            if operands.len() != 1 {
                return Err(mismatch("reg"));
            }
            Ok(Instruction::r(opcode, reg(&operands[0], "reg")?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_tvm::isa::Reg;
    use asc_tvm::machine::Machine;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn assembles_and_runs_a_loop() {
        let source = r#"
        .text
        main:
            movi r1, 10
            movi r2, 0
        loop:
            add  r2, r2, r1
            subi r1, r1, 1
            cmpi r1, 0
            jne  loop
            halt
        "#;
        let program = assemble(source).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(10_000).unwrap();
        assert_eq!(machine.reg(r(2)), 55);
    }

    #[test]
    fn data_labels_and_loads() {
        let source = r#"
        .text
        main:
            movi r1, table
            ldw  r2, [r1+4]
            ldw  r3, [r1+8]
            add  r4, r2, r3
            movi r5, answer
            stw  [r5], r4
            halt
        .data
        table:
            .word 100, 200, 300
        answer:
            .word 0
        "#;
        let program = assemble(source).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(1_000).unwrap();
        assert_eq!(machine.reg(r(4)), 500);
        let answer_addr = program.symbol("answer").unwrap();
        assert_eq!(machine.state().load_word(answer_addr).unwrap(), 500);
    }

    #[test]
    fn functions_with_call_and_ret() {
        let source = r#"
        main:
            movi r1, 7
            call square
            halt
        square:
            mul r0, r1, r1
            ret
        "#;
        let program = assemble(source).unwrap();
        assert_eq!(program.entry(), program.symbol("main").unwrap());
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(1_000).unwrap();
        assert_eq!(machine.reg(r(0)), 49);
    }

    #[test]
    fn entry_defaults_to_zero_without_main() {
        let program = assemble("start:\n nop\n halt\n").unwrap();
        assert_eq!(program.entry(), 0);
    }

    #[test]
    fn register_alu_with_immediate_third_operand() {
        let source = "main:\n movi r1, 9\n sub r2, r1, 4\n mul r3, r1, 3\n halt\n";
        let program = assemble(source).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(100).unwrap();
        assert_eq!(machine.reg(r(2)), 5);
        assert_eq!(machine.reg(r(3)), 27);
    }

    #[test]
    fn undefined_symbol_reported_with_line() {
        let err = assemble("main:\n jmp nowhere\n halt\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UndefinedSymbol(_)));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\n nop\na:\n halt\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn data_directive_in_text_rejected() {
        let err = assemble("main:\n .word 3\n halt\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::Malformed(_)));
    }

    #[test]
    fn explicit_mem_size_checked() {
        let source = "main:\n halt\n.data\nbig:\n .space 1024\n";
        assert!(Assembler::new().mem_size(128).assemble(source).is_err());
        assert!(Assembler::new().mem_size(8192).assemble(source).is_ok());
    }

    #[test]
    fn source_lines_counted_without_comments() {
        let source = "; header\nmain:\n nop\n halt\n";
        let program = assemble(source).unwrap();
        assert_eq!(program.source_lines(), 3);
    }

    #[test]
    fn stack_operations_through_aliases() {
        let source = r#"
        main:
            movi r1, 11
            push r1
            movi r1, 0
            pop  r2
            stw  [sp-4], r2
            ldw  r3, [sp-4]
            halt
        "#;
        let program = assemble(source).unwrap();
        let mut machine = Machine::load(&program).unwrap();
        machine.run_to_halt(100).unwrap();
        assert_eq!(machine.reg(r(2)), 11);
        assert_eq!(machine.reg(r(3)), 11);
    }
}
