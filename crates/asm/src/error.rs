//! Assembler error types.

use std::fmt;

/// An error produced while assembling TVM source text.
///
/// Every variant carries the 1-based source line number so failures in the
/// benchmark programs can be located immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending source line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The specific failure encountered by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A mnemonic that is neither an opcode nor a recognised pseudo-instruction.
    UnknownMnemonic(String),
    /// A directive (token starting with `.`) the assembler does not support.
    UnknownDirective(String),
    /// An operand could not be parsed (bad register, malformed memory operand, …).
    BadOperand(String),
    /// The wrong number or kinds of operands for the given mnemonic.
    OperandMismatch {
        /// The mnemonic as written in the source.
        mnemonic: String,
        /// A human-readable description of the expected operand shape.
        expected: &'static str,
    },
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A label was referenced but never defined.
    UndefinedSymbol(String),
    /// A numeric literal did not parse or does not fit in 32 bits.
    BadNumber(String),
    /// A structural problem with the file (e.g. missing `halt`, empty program).
    Malformed(String),
    /// The assembled image does not fit in the requested memory size.
    TooLarge {
        /// Bytes needed by the code and data image.
        required: usize,
        /// Bytes available in the requested memory segment.
        mem_size: usize,
    },
}

impl AsmError {
    /// Creates an error at the given 1-based source line.
    pub fn at(line: usize, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::BadOperand(o) => write!(f, "cannot parse operand `{o}`"),
            AsmErrorKind::OperandMismatch { mnemonic, expected } => {
                write!(f, "`{mnemonic}` expects operands: {expected}")
            }
            AsmErrorKind::DuplicateLabel(l) => write!(f, "label `{l}` defined more than once"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::BadNumber(n) => write!(f, "bad numeric literal `{n}`"),
            AsmErrorKind::Malformed(msg) => write!(f, "{msg}"),
            AsmErrorKind::TooLarge { required, mem_size } => {
                write!(f, "image needs {required} bytes but memory is {mem_size} bytes")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// Convenience alias for assembler results.
pub type AsmResult<T> = Result<T, AsmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_detail() {
        let err = AsmError::at(12, AsmErrorKind::UndefinedSymbol("loop_head".into()));
        let text = err.to_string();
        assert!(text.contains("line 12"));
        assert!(text.contains("loop_head"));
    }

    #[test]
    fn is_std_error() {
        let err: Box<dyn std::error::Error> =
            Box::new(AsmError::at(1, AsmErrorKind::Malformed("empty program".into())));
        assert!(err.to_string().contains("empty program"));
    }
}
