//! Syntactic items produced by the assembler's parser.

use asc_tvm::isa::Reg;

/// A symbolic or literal 32-bit value appearing where an immediate is expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal number (decimal, hex `0x…`, or negative).
    Number(i64),
    /// A label reference, optionally with an additive byte offset
    /// (`table`, `table+8`, `table-4`).
    Symbol {
        /// The referenced label name.
        name: String,
        /// Additive byte offset applied to the label's address.
        offset: i64,
    },
}

impl Expr {
    /// A plain symbol with no offset.
    pub fn symbol(name: impl Into<String>) -> Self {
        Expr::Symbol { name: name.into(), offset: 0 }
    }
}

/// One operand of an instruction as written in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// A register such as `r3` or the aliases `sp` / `fp`.
    Reg(Reg),
    /// An immediate expression.
    Imm(Expr),
    /// A memory operand `[base+offset]` where the offset may be symbolic.
    Mem {
        /// Base address register.
        base: Reg,
        /// Byte offset added to the base register.
        offset: Expr,
    },
}

/// One parsed source item in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `name:` — attaches an address to a symbol.
    Label(String),
    /// Switch the current section to `.text`.
    SectionText,
    /// Switch the current section to `.data`.
    SectionData,
    /// A machine instruction or pseudo-instruction with its operands.
    Instruction {
        /// Lower-cased mnemonic as written in the source.
        mnemonic: String,
        /// Operands in source order.
        operands: Vec<Operand>,
    },
    /// `.word e, e, …` — 32-bit little-endian data values.
    Word(Vec<Expr>),
    /// `.byte e, e, …` — 8-bit data values.
    Byte(Vec<Expr>),
    /// `.space n` — `n` zero bytes.
    Space(u32),
    /// `.align n` — pad with zero bytes to an `n`-byte boundary.
    Align(u32),
}

/// A parsed item together with the 1-based source line it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceItem {
    /// 1-based line number.
    pub line: usize,
    /// The parsed item.
    pub item: Item,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_symbol_helper_defaults_offset() {
        assert_eq!(Expr::symbol("loop"), Expr::Symbol { name: "loop".to_string(), offset: 0 });
    }
}
