//! Line-oriented parser for TVM assembly source.
//!
//! The surface syntax is deliberately small — enough to express the paper's
//! benchmark kernels comfortably:
//!
//! ```text
//! ; comments run to end of line (also `#`)
//! .text
//! main:
//!     movi  r1, 100          ; register, immediate
//!     movi  r2, table        ; labels are immediates
//! loop:
//!     ldw   r3, [r2+4]       ; memory operands are [base+offset]
//!     stw   [r2+8], r3
//!     subi  r1, r1, 1        ; pseudo-instruction (addi with negated imm)
//!     cmpi  r1, 0
//!     jne   loop
//!     halt
//! .data
//! table:
//!     .word 1, 2, 3, -4, 0x10
//!     .byte 7
//!     .space 64
//!     .align 4
//! ```

use crate::ast::{Expr, Item, Operand, SourceItem};
use crate::error::{AsmError, AsmErrorKind, AsmResult};
use asc_tvm::isa::{Reg, FP, SP};

/// Parses an entire source file into items in order of appearance.
///
/// # Errors
/// Returns the first syntactic error encountered, tagged with its line.
pub fn parse(source: &str) -> AsmResult<Vec<SourceItem>> {
    let mut items = Vec::new();
    for (index, raw_line) in source.lines().enumerate() {
        let line_no = index + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(line, line_no, &mut items)?;
    }
    Ok(items)
}

/// Removes `;` and `#` comments.
fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    &line[..cut]
}

fn parse_line(line: &str, line_no: usize, items: &mut Vec<SourceItem>) -> AsmResult<()> {
    let mut rest = line;
    // Leading labels (possibly several, e.g. `a: b: movi r1, 0`).
    while let Some(colon) = find_label_colon(rest) {
        let (label, tail) = rest.split_at(colon);
        let label = label.trim();
        if !is_identifier(label) {
            return Err(AsmError::at(line_no, AsmErrorKind::BadOperand(label.to_string())));
        }
        items.push(SourceItem { line: line_no, item: Item::Label(label.to_string()) });
        rest = tail[1..].trim();
        if rest.is_empty() {
            return Ok(());
        }
    }

    if let Some(directive) = rest.strip_prefix('.') {
        items.push(SourceItem { line: line_no, item: parse_directive(directive, line_no)? });
        return Ok(());
    }

    let (mnemonic, operand_text) = match rest.find(char::is_whitespace) {
        Some(split) => (&rest[..split], rest[split..].trim()),
        None => (rest, ""),
    };
    let operands = parse_operands(operand_text, line_no)?;
    items.push(SourceItem {
        line: line_no,
        item: Item::Instruction { mnemonic: mnemonic.to_lowercase(), operands },
    });
    Ok(())
}

/// Finds the colon terminating a leading label, ignoring colons that appear
/// after the mnemonic has started (there are none in this grammar, so any
/// colon before whitespace-delimited operands counts).
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    if is_identifier(head.trim()) {
        Some(colon)
    } else {
        None
    }
}

fn is_identifier(text: &str) -> bool {
    !text.is_empty()
        && text
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

fn parse_directive(directive: &str, line_no: usize) -> AsmResult<Item> {
    let (name, args) = match directive.find(char::is_whitespace) {
        Some(split) => (&directive[..split], directive[split..].trim()),
        None => (directive, ""),
    };
    match name {
        "text" => Ok(Item::SectionText),
        "data" => Ok(Item::SectionData),
        "word" => Ok(Item::Word(parse_expr_list(args, line_no)?)),
        "byte" => Ok(Item::Byte(parse_expr_list(args, line_no)?)),
        "space" => {
            let n = parse_number(args)
                .ok_or_else(|| AsmError::at(line_no, AsmErrorKind::BadNumber(args.to_string())))?;
            u32::try_from(n)
                .map(Item::Space)
                .map_err(|_| AsmError::at(line_no, AsmErrorKind::BadNumber(args.to_string())))
        }
        "align" => {
            let n = parse_number(args)
                .ok_or_else(|| AsmError::at(line_no, AsmErrorKind::BadNumber(args.to_string())))?;
            let n = u32::try_from(n)
                .map_err(|_| AsmError::at(line_no, AsmErrorKind::BadNumber(args.to_string())))?;
            if n == 0 || !n.is_power_of_two() {
                return Err(AsmError::at(line_no, AsmErrorKind::BadNumber(args.to_string())));
            }
            Ok(Item::Align(n))
        }
        other => Err(AsmError::at(line_no, AsmErrorKind::UnknownDirective(other.to_string()))),
    }
}

fn parse_expr_list(text: &str, line_no: usize) -> AsmResult<Vec<Expr>> {
    if text.trim().is_empty() {
        return Err(AsmError::at(line_no, AsmErrorKind::Malformed("empty value list".into())));
    }
    text.split(',').map(|piece| parse_expr(piece.trim(), line_no)).collect()
}

/// Splits operand text on top-level commas (commas inside `[...]` do not occur
/// in this grammar, so a plain split suffices) and parses each piece.
fn parse_operands(text: &str, line_no: usize) -> AsmResult<Vec<Operand>> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',').map(|piece| parse_operand(piece.trim(), line_no)).collect()
}

fn parse_operand(text: &str, line_no: usize) -> AsmResult<Operand> {
    if text.is_empty() {
        return Err(AsmError::at(line_no, AsmErrorKind::BadOperand(text.to_string())));
    }
    if let Some(reg) = parse_register(text) {
        return Ok(Operand::Reg(reg));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        return parse_mem_operand(inner.trim(), line_no);
    }
    Ok(Operand::Imm(parse_expr(text, line_no)?))
}

fn parse_mem_operand(inner: &str, line_no: usize) -> AsmResult<Operand> {
    // Grammar: base register optionally followed by +expr or -number.
    let (base_text, offset_text) = match inner.find(['+', '-']) {
        Some(pos) => (&inner[..pos], &inner[pos..]),
        None => (inner, ""),
    };
    let base = parse_register(base_text.trim())
        .ok_or_else(|| AsmError::at(line_no, AsmErrorKind::BadOperand(inner.to_string())))?;
    let offset = if offset_text.is_empty() {
        Expr::Number(0)
    } else if let Some(stripped) = offset_text.strip_prefix('+') {
        parse_expr(stripped.trim(), line_no)?
    } else {
        // Negative literal offset.
        Expr::Number(parse_number(offset_text.trim()).ok_or_else(|| {
            AsmError::at(line_no, AsmErrorKind::BadNumber(offset_text.to_string()))
        })?)
    };
    Ok(Operand::Mem { base, offset })
}

/// Parses `r0`…`r15` and the `sp`/`fp` aliases.
pub fn parse_register(text: &str) -> Option<Reg> {
    let lower = text.to_ascii_lowercase();
    match lower.as_str() {
        "sp" => return Some(SP),
        "fp" => return Some(FP),
        _ => {}
    }
    let digits = lower.strip_prefix('r')?;
    let index: u8 = digits.parse().ok()?;
    Reg::new(index)
}

fn parse_expr(text: &str, line_no: usize) -> AsmResult<Expr> {
    if let Some(value) = parse_number(text) {
        return Ok(Expr::Number(value));
    }
    // symbol, symbol+number or symbol-number
    let split = text[1..].find(['+', '-']).map(|i| i + 1);
    let (name, offset) = match split {
        Some(pos) => {
            let name = &text[..pos];
            let offset = parse_number(&text[pos..]).ok_or_else(|| {
                AsmError::at(line_no, AsmErrorKind::BadNumber(text[pos..].to_string()))
            })?;
            (name, offset)
        }
        None => (text, 0),
    };
    if !is_identifier(name) {
        return Err(AsmError::at(line_no, AsmErrorKind::BadOperand(text.to_string())));
    }
    Ok(Expr::Symbol { name: name.to_string(), offset })
}

/// Parses a decimal or `0x` hexadecimal literal with optional sign.
pub fn parse_number(text: &str) -> Option<i64> {
    let text = text.trim();
    let (negative, digits) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text.strip_prefix('+').unwrap_or(text)),
    };
    let value = if let Some(hex) = digits.strip_prefix("0x").or_else(|| digits.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        digits.parse::<i64>().ok()?
    };
    Some(if negative { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_labels_instructions_and_directives() {
        let source = r#"
        ; a tiny program
        .text
        main:
            movi r1, 10
        loop: addi r1, r1, -1
            jne loop
            halt
        .data
        table: .word 1, 0x10, -3
            .byte 7, 8
            .space 16
            .align 8
        "#;
        let items = parse(source).unwrap();
        let labels: Vec<_> = items
            .iter()
            .filter_map(|s| match &s.item {
                Item::Label(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["main", "loop", "table"]);
        let instruction_count =
            items.iter().filter(|s| matches!(s.item, Item::Instruction { .. })).count();
        assert_eq!(instruction_count, 4);
        assert!(items.iter().any(|s| matches!(&s.item, Item::Word(w) if w.len() == 3)));
        assert!(items.iter().any(|s| matches!(&s.item, Item::Space(16))));
        assert!(items.iter().any(|s| matches!(&s.item, Item::Align(8))));
    }

    #[test]
    fn memory_operands_parse_base_and_offset() {
        let items = parse("ldw r1, [r2+12]\nstw [sp-4], r3\nldw r4, [r5]").unwrap();
        match &items[0].item {
            Item::Instruction { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Mem { base: Reg::new(2).unwrap(), offset: Expr::Number(12) }
                );
            }
            other => panic!("unexpected item {other:?}"),
        }
        match &items[1].item {
            Item::Instruction { operands, .. } => {
                assert_eq!(operands[0], Operand::Mem { base: SP, offset: Expr::Number(-4) });
            }
            other => panic!("unexpected item {other:?}"),
        }
        match &items[2].item {
            Item::Instruction { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Mem { base: Reg::new(5).unwrap(), offset: Expr::Number(0) }
                );
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn symbolic_immediates_with_offsets() {
        let items = parse("movi r1, table+8\nmovi r2, table-4").unwrap();
        match &items[0].item {
            Item::Instruction { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Imm(Expr::Symbol { name: "table".into(), offset: 8 })
                );
            }
            other => panic!("unexpected item {other:?}"),
        }
        match &items[1].item {
            Item::Instruction { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Imm(Expr::Symbol { name: "table".into(), offset: -4 })
                );
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let items = parse("# only comments\n\n   ; nothing\n").unwrap();
        assert!(items.is_empty());
    }

    #[test]
    fn register_aliases() {
        assert_eq!(parse_register("sp"), Some(SP));
        assert_eq!(parse_register("FP"), Some(FP));
        assert_eq!(parse_register("r7"), Reg::new(7));
        assert_eq!(parse_register("r16"), None);
        assert_eq!(parse_register("x1"), None);
    }

    #[test]
    fn bad_directive_and_bad_number_report_lines() {
        let err = parse("nop\n.bogus 3").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownDirective(_)));
        let err = parse(".space lots").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::BadNumber(_)));
    }

    #[test]
    fn number_formats() {
        assert_eq!(parse_number("42"), Some(42));
        assert_eq!(parse_number("-7"), Some(-7));
        assert_eq!(parse_number("0x10"), Some(16));
        assert_eq!(parse_number("0Xff"), Some(255));
        assert_eq!(parse_number("ten"), None);
    }

    #[test]
    fn align_must_be_power_of_two() {
        assert!(parse(".align 3").is_err());
        assert!(parse(".align 4").is_ok());
    }
}
