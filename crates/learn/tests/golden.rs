//! Golden equivalence: the packed columnar ensemble must reproduce the
//! retained per-bit reference implementation *exactly* — identical
//! maximum-likelihood predictions, identical normalised weight matrices and
//! identical `EnsembleErrors` — over a recorded excitation trace shaped like
//! the real workloads (induction variable, strided pointer, chaotic word,
//! toggling flags). The trace is longer than the mistake-history capacity so
//! the bounded ring's wrap-around is part of the comparison.

use asc_learn::features::{ExcitationSchema, PackedObservation};
use asc_learn::reference::{packed_default_ensemble, ReferenceEnsemble};
use asc_learn::rng::{Rng, XorShiftRng};

/// Full-word schema over `words` tracked 32-bit words, the shape the
/// runtime's excitation map always produces.
fn full_word_schema(words: usize) -> ExcitationSchema {
    let mut homes = Vec::new();
    for w in 0..words {
        for bit in 0..32u8 {
            homes.push((w, bit));
        }
    }
    ExcitationSchema::new(words, homes)
}

/// Records an excitation trace of `length` observations over four words:
/// a unit-stride counter, a 132-byte-stride pointer, a chaotic word and a
/// toggling flag word.
fn record_trace(schema: &ExcitationSchema, length: usize) -> Vec<PackedObservation> {
    let mut rng = XorShiftRng::new(0xA5C_0FFEE);
    let mut chaotic = rng.next_u64() as u32 | 1;
    let mut trace = Vec::with_capacity(length);
    for i in 0..length as u32 {
        chaotic = (rng.next_u64() as u32) ^ chaotic.rotate_left(7);
        let mut words = vec![
            i,
            0x1_0000 + i * 132,
            chaotic,
            if i % 2 == 0 { 0x0F0F_0F0F } else { 0xF0F0_F0F0 },
        ];
        words.truncate(schema.word_count);
        trace.push(PackedObservation::from_words(schema, words));
    }
    trace
}

#[test]
fn packed_matches_reference_on_recorded_trace() {
    let schema = full_word_schema(4);
    let trace = record_trace(&schema, 400);
    let capacity = 128; // < trace length: the ring wraps mid-trace
    let mut packed = packed_default_ensemble(&schema, 0.5, capacity);
    let mut reference = ReferenceEnsemble::with_default_complement(&schema, 0.5, capacity);

    for (step, pair) in trace.windows(2).enumerate() {
        packed.observe(&pair[0], &pair[1]);
        reference.observe(&pair[0], &pair[1]);

        // Predictions must agree at every step, not just at convergence.
        let (packed_bits, packed_logp) = packed.predict_ml(&pair[1]);
        let (reference_bits, reference_logp) = reference.predict_ml(&pair[1]);
        assert_eq!(
            packed_bits,
            PackedObservation::from_bits(&reference_bits, vec![]).packed(),
            "ML prediction diverged at step {step}"
        );
        assert!(
            (packed_logp - reference_logp).abs() < 1e-9,
            "log-probability diverged at step {step}: {packed_logp} vs {reference_logp}"
        );
        if step % 37 == 0 {
            let packed_distribution = packed.predict_distribution(&pair[1]);
            let reference_distribution = reference.predict_distribution(&pair[1]);
            assert_eq!(
                packed_distribution, reference_distribution,
                "per-bit distribution diverged at step {step}"
            );
        }
    }

    // The Figure-3 weight matrices are identical.
    assert_eq!(packed.weight_matrix(), reference.weight_matrix());

    // And the Table-2 error statistics — including windowed hindsight over
    // the wrapped mistake ring — are identical.
    let packed_errors = packed.errors();
    let reference_errors = reference.errors();
    assert_eq!(packed_errors, reference_errors);
    assert_eq!(packed_errors.total_predictions, 399);
    // Sanity: the chaotic word keeps the trace genuinely hard (every
    // whole-state prediction misses some chaotic bit), so the comparison
    // exercised a busy mistake ring rather than an empty one.
    assert!(packed_errors.actual_error_rate > 0.0);
    assert!(packed_errors.incorrect_predictions > 0);
    // The windowed recent rate is populated and agrees with the O(1)
    // hot-path accessor the runtime's dispatch economics consult.
    assert!(packed_errors.recent_error_rate > 0.0);
    assert_eq!(packed_errors.recent_error_rate, packed.recent_error_rate());
}

#[test]
fn packed_matches_reference_with_unbounded_window() {
    // With a capacity larger than the trace nothing is evicted; this pins
    // the pre-refactor full-history semantics.
    let schema = full_word_schema(2);
    let trace = record_trace(&schema, 120);
    let mut packed = packed_default_ensemble(&schema, 0.5, 4096);
    let mut reference = ReferenceEnsemble::with_default_complement(&schema, 0.5, 4096);
    for pair in trace.windows(2) {
        packed.observe(&pair[0], &pair[1]);
        reference.observe(&pair[0], &pair[1]);
    }
    assert_eq!(packed.errors(), reference.errors());
    assert_eq!(packed.weight_matrix(), reference.weight_matrix());
}
