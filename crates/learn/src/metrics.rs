//! Small online accuracy-tracking helpers used across the runtime.

/// Tracks hit/miss counts and exposes rates; used for cache statistics and
//  per-predictor accuracy summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitRate {
    hits: u64,
    total: u64,
}

impl HitRate {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        HitRate::default()
    }

    /// Records one trial.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of successful trials.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of failed trials.
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// Total number of trials.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of successful trials (0 when nothing was recorded).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Fraction of failed trials (0 when nothing was recorded).
    pub fn miss_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.rate()
        }
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &HitRate) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// An exponentially weighted moving average, used for adaptive thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { value: None, alpha }
    }

    /// Folds in a new sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            Some(current) => current + self.alpha * (sample - current),
            None => sample,
        });
    }

    /// The current average, or `None` before any sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_basic() {
        let mut rate = HitRate::new();
        assert_eq!(rate.rate(), 0.0);
        rate.record(true);
        rate.record(true);
        rate.record(false);
        assert_eq!(rate.hits(), 2);
        assert_eq!(rate.misses(), 1);
        assert!((rate.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rate.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_merge() {
        let mut a = HitRate::new();
        a.record(true);
        let mut b = HitRate::new();
        b.record(false);
        b.record(true);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits(), 2);
    }

    #[test]
    fn ewma_converges() {
        let mut avg = Ewma::new(0.5);
        assert!(avg.value().is_none());
        for _ in 0..20 {
            avg.update(10.0);
        }
        assert!((avg.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
