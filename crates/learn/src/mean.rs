//! The `mean` predictor: predicts each bit's running mean (§4.4.2).
//!
//! "The mean predictor simply learns the mean value of each bit and issues
//! predictions by rounding." It is trivially simple, yet the paper's Figure 3
//! shows it carrying real weight on the Ising benchmark — bits that are
//! almost always 0 (or 1) are predicted essentially for free.

use crate::features::Observation;
use crate::traits::BitPredictor;

/// Per-bit running mean with rounding.
#[derive(Debug, Clone)]
pub struct MeanPredictor {
    ones: Vec<u64>,
    total: Vec<u64>,
}

impl MeanPredictor {
    /// Creates a mean predictor for `bit_count` tracked bits.
    pub fn new(bit_count: usize) -> Self {
        MeanPredictor { ones: vec![0; bit_count], total: vec![0; bit_count] }
    }

    /// The empirical mean of bit `j`, or 0.5 before any observation.
    pub fn mean(&self, j: usize) -> f64 {
        if j >= self.total.len() || self.total[j] == 0 {
            0.5
        } else {
            self.ones[j] as f64 / self.total[j] as f64
        }
    }
}

impl BitPredictor for MeanPredictor {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn update(&mut self, _prev: &Observation, j: usize, actual: bool) {
        if j >= self.total.len() {
            // Excitation sets only ever grow when the recognizer resets the
            // whole bank, but be robust to a larger index.
            self.ones.resize(j + 1, 0);
            self.total.resize(j + 1, 0);
        }
        self.total[j] += 1;
        if actual {
            self.ones[j] += 1;
        }
    }

    fn predict(&self, _current: &Observation, j: usize) -> f64 {
        self.mean(j)
    }

    fn reset(&mut self) {
        self.ones.fill(0);
        self.total.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bits: &[bool]) -> Observation {
        Observation::new(bits.to_vec(), vec![])
    }

    #[test]
    fn converges_to_empirical_mean() {
        let mut p = MeanPredictor::new(1);
        let x = obs(&[false]);
        for i in 0..10 {
            p.update(&x, 0, i % 4 == 0); // 1 in 4 observations are 1
        }
        assert!((p.predict(&x, 0) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn unseen_bit_is_uncertain() {
        let p = MeanPredictor::new(2);
        assert_eq!(p.predict(&obs(&[false, false]), 1), 0.5);
    }

    #[test]
    fn reset_forgets() {
        let mut p = MeanPredictor::new(1);
        let x = obs(&[true]);
        p.update(&x, 0, true);
        assert!(p.predict(&x, 0) > 0.9);
        p.reset();
        assert_eq!(p.predict(&x, 0), 0.5);
    }

    #[test]
    fn tolerates_out_of_range_updates() {
        let mut p = MeanPredictor::new(1);
        p.update(&obs(&[true]), 5, true);
        assert!(p.predict(&obs(&[true]), 5) > 0.9);
    }
}
