//! The `mean` predictor: predicts each bit's running mean (§4.4.2).
//!
//! "The mean predictor simply learns the mean value of each bit and issues
//! predictions by rounding." It is trivially simple, yet the paper's Figure 3
//! shows it carrying real weight on the Ising benchmark — bits that are
//! almost always 0 (or 1) are predicted essentially for free.
//!
//! The block port keeps one flat `u32` counter per bit plus a single shared
//! observation count (every block update touches every bit once); training
//! increments only the counters of the *set* bits of the realised
//! observation, found by packed set-bit iteration.

use crate::features::{pack_probabilities, PackedObservation};
use crate::persist::{self, Reader};
use crate::traits::BlockPredictor;

/// Per-bit running mean with rounding.
#[derive(Debug, Clone)]
pub struct MeanPredictor {
    /// How many observed blocks had each bit set.
    ones: Vec<u32>,
    /// Observed block count, shared by every bit.
    total: u32,
}

impl MeanPredictor {
    /// Creates a mean predictor for `bit_count` tracked bits.
    pub fn new(bit_count: usize) -> Self {
        MeanPredictor { ones: vec![0; bit_count], total: 0 }
    }

    /// The empirical mean of bit `j`, or 0.5 before any observation.
    pub fn mean(&self, j: usize) -> f32 {
        match self.ones.get(j) {
            Some(&ones) if self.total > 0 => ones as f32 / self.total as f32,
            _ => 0.5,
        }
    }
}

impl BlockPredictor for MeanPredictor {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn observe_transition(&mut self, _prev: &PackedObservation, next: &PackedObservation) {
        if next.bit_count() > self.ones.len() {
            // Excitation sets only ever grow when the recognizer resets the
            // whole bank, but be robust to a wider observation.
            self.ones.resize(next.bit_count(), 0);
        }
        self.total += 1;
        for (w, &word) in next.packed().iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let j = w * 64 + remaining.trailing_zeros() as usize;
                self.ones[j] += 1;
                remaining &= remaining - 1;
            }
        }
    }

    fn predict_block(&self, current: &PackedObservation, bits: &mut [u64], confidence: &mut [f32]) {
        for (j, slot) in confidence.iter_mut().enumerate().take(current.bit_count()) {
            *slot = self.mean(j);
        }
        pack_probabilities(confidence, bits);
    }

    fn reset(&mut self) {
        self.ones.fill(0);
        self.total = 0;
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_u32(out, self.total);
        persist::put_u32_slice(out, &self.ones);
    }

    fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        let total = reader.u32()?;
        let ones = persist::u32_slice_exact(reader, self.ones.len())?;
        self.total = total;
        self.ones = ones;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::packed_len;

    fn obs(bits: &[bool]) -> PackedObservation {
        PackedObservation::from_bits(bits, vec![])
    }

    fn predict(p: &MeanPredictor, x: &PackedObservation) -> (Vec<u64>, Vec<f32>) {
        let mut bits = vec![0u64; packed_len(x.bit_count())];
        let mut confidence = vec![0.0f32; x.bit_count()];
        p.predict_block(x, &mut bits, &mut confidence);
        (bits, confidence)
    }

    #[test]
    fn converges_to_empirical_mean() {
        let mut p = MeanPredictor::new(1);
        let x = obs(&[false]);
        for i in 0..10 {
            p.observe_transition(&x, &obs(&[i % 4 == 0])); // 1 in 4 are 1
        }
        let (bits, confidence) = predict(&p, &x);
        assert!((confidence[0] - 0.3).abs() < 1e-6);
        assert_eq!(bits[0], 0);
    }

    #[test]
    fn unseen_bit_is_uncertain() {
        let p = MeanPredictor::new(2);
        let (bits, confidence) = predict(&p, &obs(&[false, false]));
        assert_eq!(confidence, vec![0.5, 0.5]);
        // 0.5 rounds up, matching the packed contract p >= 0.5.
        assert_eq!(bits[0], 0b11);
    }

    #[test]
    fn reset_forgets() {
        let mut p = MeanPredictor::new(1);
        let x = obs(&[true]);
        p.observe_transition(&x, &x);
        assert!(p.mean(0) > 0.9);
        p.reset();
        assert_eq!(p.mean(0), 0.5);
    }

    #[test]
    fn tolerates_wider_observations() {
        let mut p = MeanPredictor::new(1);
        let wide = obs(&[true, false, true]);
        p.observe_transition(&wide, &wide);
        assert!(p.mean(2) > 0.9);
        assert!(p.mean(1) < 0.1);
    }
}
