//! Little-endian byte serialization helpers for checkpointable model state.
//!
//! The crash-durability layer in `asc-core` snapshots learned state —
//! predictor weights, ensemble mistake history, excitation counters — into
//! checksummed checkpoint sections. This module is the shared wire
//! vocabulary: fixed-width little-endian scalars plus length-prefixed byte
//! runs, written into a growing `Vec<u8>` and read back through a bounds-
//! checked [`Reader`] that returns `None` instead of panicking on any
//! truncated, oversized or otherwise malformed input. Floating-point values
//! round-trip as raw IEEE-754 bits, so restored models are *bit-identical*
//! to the saved ones (including NaN payloads and the `f64::INFINITY`
//! sentinels some models use).
//!
//! Reads never allocate proportionally to untrusted length fields: byte runs
//! are returned as borrowed slices, and element-count loops fail fast at the
//! end of input, so a corrupted length can cost at most the bytes actually
//! present.

/// Appends a `u32` in little-endian order.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, value: usize) {
    put_u64(out, value as u64);
}

/// Appends an `f32` as its raw IEEE-754 bits.
pub fn put_f32(out: &mut Vec<u8>, value: f32) {
    put_u32(out, value.to_bits());
}

/// Appends an `f64` as its raw IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Appends a length-prefixed byte run.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed short string (used for model names).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked cursor over serialized bytes. Every accessor returns
/// `None` once the input is exhausted or a length prefix overruns it; no
/// accessor panics or allocates based on untrusted lengths.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    /// How many bytes remain unread.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Whether every byte has been consumed — loaders require this so
    /// trailing garbage is rejected rather than silently ignored.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at.checked_add(n)?)?;
        self.at += n;
        Some(slice)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values that do not fit.
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// Reads an `f32` from its raw bits.
    pub fn f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte run as a borrowed slice. The length is
    /// validated against the remaining input *before* anything is sliced, so
    /// a corrupted prefix cannot trigger a large allocation.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.usize()?;
        if len > self.remaining() {
            return None;
        }
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }
}

/// Writes a slice of `f32`s with a length prefix.
pub fn put_f32_slice(out: &mut Vec<u8>, values: &[f32]) {
    put_usize(out, values.len());
    for &v in values {
        put_f32(out, v);
    }
}

/// Reads a length-prefixed `f32` slice, requiring exactly `expected` values.
pub fn f32_slice_exact(reader: &mut Reader<'_>, expected: usize) -> Option<Vec<f32>> {
    let len = reader.usize()?;
    if len != expected || len.checked_mul(4)? > reader.remaining() {
        return None;
    }
    (0..len).map(|_| reader.f32()).collect()
}

/// Writes a slice of `f64`s with a length prefix.
pub fn put_f64_slice(out: &mut Vec<u8>, values: &[f64]) {
    put_usize(out, values.len());
    for &v in values {
        put_f64(out, v);
    }
}

/// Reads a length-prefixed `f64` slice, requiring exactly `expected` values.
pub fn f64_slice_exact(reader: &mut Reader<'_>, expected: usize) -> Option<Vec<f64>> {
    let len = reader.usize()?;
    if len != expected || len.checked_mul(8)? > reader.remaining() {
        return None;
    }
    (0..len).map(|_| reader.f64()).collect()
}

/// Writes a slice of `u64`s with a length prefix.
pub fn put_u64_slice(out: &mut Vec<u8>, values: &[u64]) {
    put_usize(out, values.len());
    for &v in values {
        put_u64(out, v);
    }
}

/// Reads a length-prefixed `u64` slice of at most `max` values (the caller's
/// structural bound). Allocation is additionally capped by the bytes
/// actually present.
pub fn u64_slice_bounded(reader: &mut Reader<'_>, max: usize) -> Option<Vec<u64>> {
    let len = reader.usize()?;
    if len > max || len.checked_mul(8)? > reader.remaining() {
        return None;
    }
    (0..len).map(|_| reader.u64()).collect()
}

/// Writes a slice of `u32`s with a length prefix.
pub fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    put_usize(out, values.len());
    for &v in values {
        put_u32(out, v);
    }
}

/// Reads a length-prefixed `u32` slice, requiring exactly `expected` values.
pub fn u32_slice_exact(reader: &mut Reader<'_>, expected: usize) -> Option<Vec<u32>> {
    let len = reader.usize()?;
    if len != expected || len.checked_mul(4)? > reader.remaining() {
        return None;
    }
    (0..len).map(|_| reader.u32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip_bit_exactly() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 7);
        put_f32(&mut out, -0.0f32);
        put_f64(&mut out, f64::INFINITY);
        put_f64(&mut out, f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        let mut r = Reader::new(&out);
        assert_eq!(r.u32(), Some(0xDEAD_BEEF));
        assert_eq!(r.u64(), Some(u64::MAX - 7));
        assert_eq!(r.f32().map(f32::to_bits), Some((-0.0f32).to_bits()));
        assert_eq!(r.f64(), Some(f64::INFINITY));
        assert_eq!(r.f64().map(f64::to_bits), Some(0x7FF8_0000_0000_1234));
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_returns_none_not_panic() {
        let mut out = Vec::new();
        put_u64(&mut out, 42);
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            assert_eq!(r.u64(), None, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX); // absurd length prefix
        out.extend_from_slice(b"xy");
        let mut r = Reader::new(&out);
        assert_eq!(r.bytes(), None);
        let mut r = Reader::new(&out);
        assert_eq!(u64_slice_bounded(&mut r, usize::MAX), None);
    }

    #[test]
    fn byte_runs_and_strings_roundtrip() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        put_str(&mut out, "weatherman");
        let mut r = Reader::new(&out);
        assert_eq!(r.bytes(), Some(&b"hello"[..]));
        assert_eq!(r.str(), Some("weatherman"));
    }

    #[test]
    fn exact_slices_reject_wrong_lengths() {
        let mut out = Vec::new();
        put_f32_slice(&mut out, &[1.0, 2.0, 3.0]);
        let mut r = Reader::new(&out);
        assert_eq!(f32_slice_exact(&mut r, 2), None);
        let mut r = Reader::new(&out);
        assert_eq!(f32_slice_exact(&mut r, 3), Some(vec![1.0, 2.0, 3.0]));
        assert!(r.is_empty());
    }
}
