//! # asc-learn — on-line learning for the ASC runtime
//!
//! LASC "turns the problem of automatically scaling sequential computation
//! into a set of machine learning problems" (§4). This crate contains those
//! learning pieces, independent of any simulator details, built around a
//! *packed columnar* data model: the runtime extracts a program's excitation
//! bits into `u64`-packed [`features::PackedObservation`]s and every learner
//! trains and predicts whole blocks of bits per call —
//!
//! ```text
//! StateVector ──extract──▶ PackedObservation ──observe_transition──▶ models
//!                                   │
//!                                   └──predict_block──▶ packed ML prediction
//!                                                        (+ per-bit confidence)
//! ```
//!
//! * the packed feature representation over a program's *excitations*
//!   ([`features`]): bits as `u64` words plus the raw 32-bit values of the
//!   words containing them,
//! * the block predictor interface every learner implements ([`traits`]):
//!   one virtual call trains or predicts *all* bits, with flat `f32` weight
//!   arrays underneath instead of per-bit nested vectors,
//! * the paper's four prediction algorithms: [`mean`], [`weatherman`],
//!   [`logistic`] regression (sparse set-bit SGD) and word-level [`linear`]
//!   regression,
//! * the Randomized Weighted Majority ensemble that combines them with
//!   bounded regret ([`ensemble`]): a flat `f32` weight matrix, XOR mistake
//!   masks on packed words, and a bounded mistake-history ring,
//! * the retained per-bit golden model the packed stack is tested against
//!   ([`reference`]),
//! * small accuracy-tracking utilities ([`metrics`]).
//!
//! The `asc-core` crate extracts observations from state vectors and feeds
//! them to an [`ensemble::Ensemble`]; everything here operates purely on
//! those observations, which keeps the learners unit-testable in isolation.
//!
//! ```
//! use asc_learn::features::{ExcitationSchema, PackedObservation};
//! use asc_learn::traits::default_predictors;
//! use asc_learn::ensemble::Ensemble;
//!
//! // One tracked 32-bit word, all of whose bits are excitations.
//! let schema = ExcitationSchema::new(1, (0..32).map(|b| (0, b)).collect());
//! let mut ensemble = Ensemble::new(default_predictors(&schema), 32, 0.5, 1024);
//!
//! // Train on a counter that increments by one per superstep…
//! let obs = |v: u32| PackedObservation::from_words(&schema, vec![v]);
//! for i in 0..32u32 {
//!     ensemble.observe(&obs(i), &obs(i + 1));
//! }
//! // …and the ensemble predicts the next value as a packed block.
//! let (bits, _) = ensemble.predict_ml(&obs(32));
//! assert_eq!(bits[0] as u32, 33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod features;
pub mod linear;
pub mod logistic;
pub mod mean;
pub mod metrics;
pub mod persist;
pub mod reference;
pub mod rng;
pub mod traits;
pub mod weatherman;

pub use ensemble::{Ensemble, EnsembleErrors};
pub use features::{packed_len, ExcitationSchema, PackedObservation};
pub use traits::{default_predictors, extended_predictors, BlockPredictor};
