//! # asc-learn — on-line learning for the ASC runtime
//!
//! LASC "turns the problem of automatically scaling sequential computation
//! into a set of machine learning problems" (§4). This crate contains those
//! learning pieces, independent of any simulator details:
//!
//! * the feature representation over a program's *excitations*
//!   ([`features`]),
//! * the predictor interface every learner implements ([`traits`]),
//! * the paper's four prediction algorithms: [`mean`], [`weatherman`],
//!   per-bit [`logistic`] regression and word-level [`linear`] regression,
//! * the Randomized Weighted Majority ensemble that combines them with
//!   bounded regret ([`ensemble`]),
//! * small accuracy-tracking utilities ([`metrics`]).
//!
//! The `asc-core` crate extracts observations from state vectors and feeds
//! them to an [`ensemble::Ensemble`]; everything here operates purely on
//! those observations, which keeps the learners unit-testable in isolation.
//!
//! ```
//! use asc_learn::features::{ExcitationSchema, Observation};
//! use asc_learn::traits::default_predictors;
//! use asc_learn::ensemble::Ensemble;
//!
//! // One tracked 32-bit word, all of whose bits are excitations.
//! let schema = ExcitationSchema::new(1, (0..32).map(|b| (0, b)).collect());
//! let mut ensemble = Ensemble::new(default_predictors(&schema), 32, 0.5);
//!
//! // Train on a counter that increments by one per superstep…
//! let obs = |v: u32| Observation::new((0..32).map(|b| (v >> b) & 1 == 1).collect(), vec![v]);
//! for i in 0..32u32 {
//!     ensemble.observe(&obs(i), &obs(i + 1));
//! }
//! // …and the ensemble predicts the next value.
//! let (bits, _) = ensemble.predict_ml(&obs(32));
//! let predicted: u32 = bits.iter().enumerate().map(|(b, &set)| (set as u32) << b).sum();
//! assert_eq!(predicted, 33);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod features;
pub mod linear;
pub mod logistic;
pub mod mean;
pub mod metrics;
pub mod rng;
pub mod traits;
pub mod weatherman;

pub use ensemble::{Ensemble, EnsembleErrors};
pub use features::{ExcitationSchema, Observation};
pub use traits::{default_predictors, extended_predictors, BitPredictor};
