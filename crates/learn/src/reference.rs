//! The retained per-bit reference implementation of the prediction stack.
//!
//! Before the columnar refactor, every predictor exposed a per-bit
//! `update`/`predict` contract and the ensemble looped over `(bit,
//! predictor)` pairs through virtual dispatch. This module keeps that
//! formulation alive — same algorithms, same arithmetic, per-bit structure —
//! as the *golden model* for the packed block implementation: the
//! `packed_matches_reference` test drives both over a recorded excitation
//! trace and asserts identical maximum-likelihood predictions, weight
//! matrices and [`EnsembleErrors`].
//!
//! It is deliberately slow (this shape is what the refactor removed from the
//! hot path) and exists only for equivalence testing; nothing in the runtime
//! depends on it.

use crate::ensemble::EnsembleErrors;
use crate::features::{ExcitationSchema, PackedObservation};
use crate::linear::LinearRegression;
use crate::logistic::sigmoid;
use crate::traits::BlockPredictor;
use std::collections::VecDeque;

/// The per-bit predictor contract the packed [`BlockPredictor`] replaced.
///
/// [`BlockPredictor`]: crate::traits::BlockPredictor
trait PerBitPredictor {
    /// Trains on one observed transition (per-bit models loop internally).
    fn train(&mut self, prev: &PackedObservation, next: &PackedObservation);
    /// Probability that bit `j` of the observation following `current` is 1.
    fn predict(&self, current: &PackedObservation, j: usize) -> f32;
}

/// Per-bit running mean (the reference twin of [`crate::mean`]).
struct RefMean {
    ones: Vec<u32>,
    total: u32,
}

impl PerBitPredictor for RefMean {
    fn train(&mut self, _prev: &PackedObservation, next: &PackedObservation) {
        if next.bit_count() > self.ones.len() {
            self.ones.resize(next.bit_count(), 0);
        }
        self.total += 1;
        for j in 0..next.bit_count() {
            if next.bit(j) {
                self.ones[j] += 1;
            }
        }
    }

    fn predict(&self, _current: &PackedObservation, j: usize) -> f32 {
        match self.ones.get(j) {
            Some(&ones) if self.total > 0 => ones as f32 / self.total as f32,
            _ => 0.5,
        }
    }
}

/// Persistence prediction (the reference twin of [`crate::weatherman`]).
struct RefWeatherman {
    confidence: f32,
}

impl PerBitPredictor for RefWeatherman {
    fn train(&mut self, _prev: &PackedObservation, _next: &PackedObservation) {}

    fn predict(&self, current: &PackedObservation, j: usize) -> f32 {
        if j < current.bit_count() && current.bit(j) {
            self.confidence
        } else {
            1.0 - self.confidence
        }
    }
}

/// Per-bit logistic regression over dense `{0, 1}` features with a leading
/// bias term (the reference twin of [`crate::logistic`]; the packed port
/// sums only the set-bit weights, which is arithmetically identical).
struct RefLogistic {
    /// `rows[j]` is the weight vector for bit `j`, bias first.
    rows: Vec<Vec<f32>>,
    learning_rate: f32,
    bit_count: usize,
}

impl RefLogistic {
    fn features(observation: &PackedObservation) -> Vec<f32> {
        let mut x = Vec::with_capacity(observation.bit_count() + 1);
        x.push(1.0);
        x.extend((0..observation.bit_count()).map(|j| if observation.bit(j) { 1.0 } else { 0.0 }));
        x
    }

    fn score(&self, x: &[f32], j: usize) -> f32 {
        let mut score = 0.0f32;
        // Bias first, then ascending feature bits — the packed port's
        // accumulation order.
        for (w, xi) in self.rows[j].iter().zip(x.iter()) {
            score += w * xi;
        }
        score
    }
}

impl PerBitPredictor for RefLogistic {
    fn train(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        if prev.bit_count() != self.bit_count {
            self.bit_count = prev.bit_count();
            self.rows = vec![vec![0.0; self.bit_count + 1]; self.bit_count];
        }
        let x = Self::features(prev);
        for j in 0..self.bit_count.min(next.bit_count()) {
            let prediction = sigmoid(self.score(&x, j));
            let target = if next.bit(j) { 1.0 } else { 0.0 };
            let gradient_scale = self.learning_rate * (target - prediction);
            for (w, xi) in self.rows[j].iter_mut().zip(x.iter()) {
                *w += gradient_scale * xi;
            }
        }
    }

    fn predict(&self, current: &PackedObservation, j: usize) -> f32 {
        if current.bit_count() != self.bit_count || j >= self.bit_count {
            return 0.5;
        }
        sigmoid(self.score(&Self::features(current), j))
    }
}

/// Word-level linear regression fanned out per bit (the reference twin of
/// the packed port's block fan-out; the word models themselves are shared —
/// they were never per-bit to begin with).
struct RefLinear {
    schema: ExcitationSchema,
    model: LinearRegression,
}

impl PerBitPredictor for RefLinear {
    fn train(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        self.model.observe_transition(prev, next);
    }

    fn predict(&self, current: &PackedObservation, j: usize) -> f32 {
        if j >= self.schema.bit_count {
            return 0.5;
        }
        let (word, offset) = self.schema.home(j);
        match self.model.predict_word(current, word) {
            Some(value) => {
                let bit = (value as u64 >> offset) & 1 == 1;
                let residual = self.model.residual(word);
                let confidence = if residual < 0.5 {
                    0.97
                } else if residual < 4.0 {
                    0.75
                } else {
                    0.55
                };
                if bit {
                    confidence
                } else {
                    1.0 - confidence
                }
            }
            None => 0.5,
        }
    }
}

/// The per-bit RWMA ensemble over the reference predictor complement.
pub struct ReferenceEnsemble {
    predictors: Vec<Box<dyn PerBitPredictor>>,
    /// `weights[j][p]`, per-bit nested — the layout the packed ensemble
    /// flattened.
    weights: Vec<Vec<f32>>,
    beta: f32,
    /// Per retained observation, per bit: bitmask of predictors that got the
    /// bit wrong, bounded to the most recent `capacity` observations.
    mistake_log: VecDeque<Vec<u16>>,
    capacity: usize,
    /// Full-history per-`(bit, predictor)` mistake counts.
    cumulative_mistakes: Vec<Vec<u32>>,
    ensemble_mistakes: u64,
    equal_weight_mistakes: u64,
    /// Shift register of the last [`RECENT_WINDOW`] whole-state outcomes,
    /// mirroring the packed ensemble's O(1) recent-rate history.
    ///
    /// [`RECENT_WINDOW`]: crate::ensemble::RECENT_WINDOW
    recent_outcomes: u64,
    observations: u64,
}

impl ReferenceEnsemble {
    /// Builds the reference ensemble with the paper's default complement
    /// (mean, weatherman, logistic at rate 0.5, linear at adaptivity 0.1) —
    /// the per-bit twin of
    /// [`default_predictors`](crate::traits::default_predictors).
    pub fn with_default_complement(schema: &ExcitationSchema, beta: f64, capacity: usize) -> Self {
        let bit_count = schema.bit_count;
        let predictors: Vec<Box<dyn PerBitPredictor>> = vec![
            Box::new(RefMean { ones: vec![0; bit_count], total: 0 }),
            Box::new(RefWeatherman { confidence: 0.9 }),
            Box::new(RefLogistic {
                rows: vec![vec![0.0; bit_count + 1]; bit_count],
                learning_rate: 0.5,
                bit_count,
            }),
            Box::new(RefLinear {
                schema: schema.clone(),
                model: LinearRegression::new(schema.clone(), 0.1),
            }),
        ];
        let predictor_count = predictors.len();
        ReferenceEnsemble {
            predictors,
            weights: vec![vec![1.0; predictor_count]; bit_count],
            beta: beta as f32,
            mistake_log: VecDeque::new(),
            capacity: capacity.max(1),
            cumulative_mistakes: vec![vec![0; predictor_count]; bit_count],
            ensemble_mistakes: 0,
            equal_weight_mistakes: 0,
            recent_outcomes: 0,
            observations: 0,
        }
    }

    fn predict_bit(&self, current: &PackedObservation, j: usize) -> f32 {
        let weights = &self.weights[j];
        let mut numerator = 0.0f32;
        let mut denominator = 0.0f32;
        for (p, predictor) in self.predictors.iter().enumerate() {
            let probability = predictor.predict(current, j).clamp(0.0, 1.0);
            numerator += weights[p] * probability;
            denominator += weights[p];
        }
        if denominator <= 0.0 {
            0.5
        } else {
            numerator / denominator
        }
    }

    /// Per-bit probabilities for the next observation.
    pub fn predict_distribution(&self, current: &PackedObservation) -> Vec<f32> {
        (0..self.weights.len()).map(|j| self.predict_bit(current, j)).collect()
    }

    /// The maximum-likelihood prediction and its joint log-probability.
    pub fn predict_ml(&self, current: &PackedObservation) -> (Vec<bool>, f64) {
        let distribution = self.predict_distribution(current);
        let mut bits = Vec::with_capacity(distribution.len());
        let mut log_probability = 0.0f64;
        for p in distribution {
            let bit = p >= 0.5;
            bits.push(bit);
            let bit_probability = if bit { p as f64 } else { 1.0 - p as f64 };
            log_probability += bit_probability.max(1e-12).ln();
        }
        (bits, log_probability)
    }

    /// Observes one transition with the original per-bit scoring loop.
    pub fn observe(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        let bit_count = self.weights.len().min(next.bit_count());
        let mut mistakes_this_observation = vec![0u16; bit_count];
        let mut ensemble_wrong = false;
        let mut equal_weight_wrong = false;

        for (j, mistakes) in mistakes_this_observation.iter_mut().enumerate() {
            let actual = next.bit(j);
            // Score the weighted ensemble before updating anything.
            if (self.predict_bit(prev, j) >= 0.5) != actual {
                ensemble_wrong = true;
            }
            // Equal-weight vote: average the probabilities.
            let mut equal = 0.0f32;
            for predictor in &self.predictors {
                equal += predictor.predict(prev, j).clamp(0.0, 1.0);
            }
            if (equal / self.predictors.len() as f32 >= 0.5) != actual {
                equal_weight_wrong = true;
            }
            // Score individual predictors and apply the multiplicative update.
            for (p, predictor) in self.predictors.iter().enumerate() {
                let predicted = predictor.predict(prev, j) >= 0.5;
                if predicted != actual {
                    *mistakes |= 1 << p;
                    self.weights[j][p] *= self.beta;
                    self.cumulative_mistakes[j][p] += 1;
                }
            }
            // Keep weights from underflowing to zero for every predictor.
            let max = self.weights[j].iter().cloned().fold(0.0f32, f32::max);
            if max < 1e-9 {
                for w in &mut self.weights[j] {
                    *w /= max.max(1e-30);
                }
            }
        }

        self.mistake_log.push_back(mistakes_this_observation);
        if self.mistake_log.len() > self.capacity {
            self.mistake_log.pop_front();
        }
        self.observations += 1;
        self.recent_outcomes = (self.recent_outcomes << 1) | u64::from(ensemble_wrong);
        if ensemble_wrong {
            self.ensemble_mistakes += 1;
        }
        if equal_weight_wrong {
            self.equal_weight_mistakes += 1;
        }

        // Finally train the member predictors on the new example.
        for predictor in &mut self.predictors {
            predictor.train(prev, next);
        }
    }

    /// The normalised Figure-3 weight matrix.
    pub fn weight_matrix(&self) -> Vec<Vec<f64>> {
        self.weights
            .iter()
            .map(|row| {
                let total: f64 = row.iter().map(|&w| w as f64).sum();
                if total <= 0.0 {
                    vec![1.0 / row.len() as f64; row.len()]
                } else {
                    row.iter().map(|&w| w as f64 / total).collect()
                }
            })
            .collect()
    }

    /// Error statistics in the shape of Table 2 (hindsight selection over the
    /// full cumulative counts, whole-state hindsight misses over the retained
    /// window — mirroring the packed ensemble exactly).
    pub fn errors(&self) -> EnsembleErrors {
        let total = self.observations;
        if total == 0 {
            return EnsembleErrors::default();
        }
        let best_per_bit: Vec<usize> = self
            .cumulative_mistakes
            .iter()
            .map(|errors| {
                errors
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, count)| **count)
                    .map(|(p, _)| p)
                    .unwrap_or(0)
            })
            .collect();
        let mut hindsight_mistakes = 0u64;
        for observation in &self.mistake_log {
            let wrong =
                observation.iter().enumerate().any(|(j, mask)| mask & (1 << best_per_bit[j]) != 0);
            if wrong {
                hindsight_mistakes += 1;
            }
        }
        let window = self.mistake_log.len().max(1) as f64;
        let recent = total.min(crate::ensemble::RECENT_WINDOW as u64);
        let recent_mask = if recent == 64 { u64::MAX } else { (1u64 << recent) - 1 };
        EnsembleErrors {
            equal_weight_error_rate: self.equal_weight_mistakes as f64 / total as f64,
            hindsight_optimal_error_rate: hindsight_mistakes as f64 / window,
            actual_error_rate: self.ensemble_mistakes as f64 / total as f64,
            recent_error_rate: (self.recent_outcomes & recent_mask).count_ones() as f64
                / recent.max(1) as f64,
            total_predictions: total,
            incorrect_predictions: self.ensemble_mistakes,
        }
    }
}

/// Builds the packed ensemble with the same complement, bit count, beta and
/// mistake capacity as [`ReferenceEnsemble::with_default_complement`] — the
/// two sides of the golden comparison.
pub fn packed_default_ensemble(
    schema: &ExcitationSchema,
    beta: f64,
    capacity: usize,
) -> crate::ensemble::Ensemble {
    let predictors: Vec<Box<dyn BlockPredictor>> = crate::traits::default_predictors(schema);
    crate::ensemble::Ensemble::new(predictors, schema.bit_count, beta, capacity)
}
