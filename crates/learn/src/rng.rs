//! A small deterministic pseudo-random number generator.
//!
//! The build environment is offline, so the `rand` crate is unavailable; the
//! only consumer of randomness in this workspace is the RWMA ensemble's
//! randomized prediction draw, for which a seedable xorshift generator is
//! entirely sufficient — and determinism is a feature: runs reproduce.

/// Source of uniform random numbers, the subset of `rand::Rng` this
/// workspace needs.
pub trait Rng {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A Bernoulli draw that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from `[low, high)`.
    fn gen_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + self.gen_f64() * (high - low)
    }
}

/// Marsaglia's xorshift64* generator: tiny, fast and good enough for
/// weighted sampling.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed (zero is remapped to a fixed odd
    /// constant, since the all-zero state is a fixed point of xorshift).
    pub fn new(seed: u64) -> Self {
        XorShiftRng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }
}

impl Rng for XorShiftRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = XorShiftRng::new(7);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShiftRng::new(11);
        let ones = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_900..3_100).contains(&ones), "got {ones}");
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = XorShiftRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
