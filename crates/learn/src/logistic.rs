//! On-line logistic regression, one binary classifier per tracked bit (§4.4.2).
//!
//! For each excited bit `j` the model keeps a weight vector `w_j` over the
//! `{bias} ∪ {excited bits}` feature representation of the conditioning
//! state, predicts `σ(w_j · x)`, and performs one stochastic-gradient-descent
//! step per new observation — exactly the fast on-line form described in the
//! paper. Logistic regression is the general-purpose member of the predictor
//! complement: it can latch onto *any* linearly separable relationship
//! between the current excitations and a future bit (the paper highlights the
//! flags-register bits where it is "absolutely crucial").

use crate::features::Observation;
use crate::traits::BitPredictor;

/// Per-bit logistic regression trained by SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `weights[j]` is the weight vector (bias first) for tracked bit `j`.
    weights: Vec<Vec<f64>>,
    learning_rate: f64,
    feature_dim: usize,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Creates a model for `bit_count` tracked bits with the given SGD
    /// learning rate.
    ///
    /// # Panics
    /// Panics when the learning rate is not positive and finite.
    pub fn new(bit_count: usize, learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0 && learning_rate.is_finite(), "learning rate must be positive");
        LogisticRegression {
            weights: vec![Vec::new(); bit_count],
            learning_rate,
            feature_dim: bit_count + 1,
        }
    }

    fn ensure_bit(&mut self, j: usize) {
        if j >= self.weights.len() {
            self.weights.resize(j + 1, Vec::new());
        }
        if self.weights[j].is_empty() {
            self.weights[j] = vec![0.0; self.feature_dim];
        }
    }

    fn raw_score(&self, x: &[f64], j: usize) -> f64 {
        match self.weights.get(j) {
            Some(w) if !w.is_empty() => w.iter().zip(x.iter()).map(|(wi, xi)| wi * xi).sum::<f64>(),
            _ => 0.0,
        }
    }
}

impl BitPredictor for LogisticRegression {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn update(&mut self, prev: &Observation, j: usize, actual: bool) {
        let x = prev.features_with_bias();
        // The feature dimension is fixed by the excitation schema; if an
        // observation with a different arity appears the bank is being
        // rebuilt, so skip rather than corrupt the weights.
        if x.len() != self.feature_dim {
            self.feature_dim = x.len();
            for w in &mut self.weights {
                w.clear();
            }
        }
        self.ensure_bit(j);
        let prediction = sigmoid(self.raw_score(&x, j));
        let target = if actual { 1.0 } else { 0.0 };
        let gradient_scale = self.learning_rate * (target - prediction);
        for (wi, xi) in self.weights[j].iter_mut().zip(x.iter()) {
            *wi += gradient_scale * xi;
        }
    }

    fn predict(&self, current: &Observation, j: usize) -> f64 {
        let x = current.features_with_bias();
        if x.len() != self.feature_dim {
            return 0.5;
        }
        sigmoid(self.raw_score(&x, j))
    }

    fn reset(&mut self) {
        for w in &mut self.weights {
            w.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bits: &[bool]) -> Observation {
        Observation::new(bits.to_vec(), vec![])
    }

    #[test]
    fn sigmoid_is_stable_and_monotone() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999);
        assert!(sigmoid(-40.0) < 0.001);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
        // No overflow at extremes.
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
    }

    #[test]
    fn learns_identity_relationship() {
        // Bit 0 of the next observation equals bit 1 of the current one.
        let mut p = LogisticRegression::new(2, 0.5);
        for i in 0..200 {
            let b = i % 2 == 0;
            let current = obs(&[i % 3 == 0, b]);
            p.update(&current, 0, b);
        }
        assert!(p.predict(&obs(&[false, true]), 0) > 0.85);
        assert!(p.predict(&obs(&[false, false]), 0) < 0.15);
    }

    #[test]
    fn learns_negation_relationship() {
        // Next bit 0 is the complement of current bit 0 (a toggling flag).
        let mut p = LogisticRegression::new(1, 0.5);
        let mut value = false;
        for _ in 0..300 {
            let current = obs(&[value]);
            value = !value;
            p.update(&current, 0, value);
        }
        assert!(p.predict(&obs(&[false]), 0) > 0.8);
        assert!(p.predict(&obs(&[true]), 0) < 0.2);
    }

    #[test]
    fn learns_constant_bias() {
        let mut p = LogisticRegression::new(1, 0.5);
        for i in 0..100 {
            p.update(&obs(&[i % 2 == 0]), 0, true);
        }
        assert!(p.predict(&obs(&[true]), 0) > 0.9);
        assert!(p.predict(&obs(&[false]), 0) > 0.9);
    }

    #[test]
    fn unseen_model_is_uncertain_and_reset_forgets() {
        let mut p = LogisticRegression::new(1, 0.5);
        assert!((p.predict(&obs(&[true]), 0) - 0.5).abs() < 1e-12);
        for _ in 0..50 {
            p.update(&obs(&[true]), 0, true);
        }
        assert!(p.predict(&obs(&[true]), 0) > 0.8);
        p.reset();
        assert!((p.predict(&obs(&[true]), 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        LogisticRegression::new(4, 0.0);
    }
}
