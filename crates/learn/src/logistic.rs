//! On-line logistic regression, one binary classifier per tracked bit (§4.4.2).
//!
//! For each excited bit `j` the model keeps a weight vector `w_j` over the
//! `{bias} ∪ {excited bits}` feature representation of the conditioning
//! state, predicts `σ(w_j · x)`, and performs one stochastic-gradient-descent
//! step per new observation — exactly the fast on-line form described in the
//! paper. Logistic regression is the general-purpose member of the predictor
//! complement: it can latch onto *any* linearly separable relationship
//! between the current excitations and a future bit (the paper highlights the
//! flags-register bits where it is "absolutely crucial").
//!
//! The block port stores all weight vectors in one flat `f32` matrix and
//! exploits that the features are `{0, 1}`: a dot product is the bias plus
//! the sum of the weights at the *set* bits of the conditioning observation,
//! and an SGD step touches exactly those weights. Training every bit is one
//! pass over `bit_count` rows, each doing `popcount(prev)` flat additions —
//! no per-bit allocation, no virtual dispatch.

use crate::features::{pack_probabilities, PackedObservation};
use crate::persist::{self, Reader};
use crate::traits::BlockPredictor;

/// Per-bit logistic regression trained by SGD over a flat `f32` weight
/// matrix.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Row `j` is the weight vector for tracked bit `j`: bias first, then one
    /// weight per feature bit (`stride = bit_count + 1`).
    weights: Vec<f32>,
    bit_count: usize,
    learning_rate: f32,
    /// Scratch list of the conditioning observation's set bits, reused across
    /// training calls.
    active: Vec<u32>,
}

pub(crate) fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Creates a model for `bit_count` tracked bits with the given SGD
    /// learning rate.
    ///
    /// # Panics
    /// Panics when the learning rate is not positive and finite.
    pub fn new(bit_count: usize, learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0 && learning_rate.is_finite(), "learning rate must be positive");
        LogisticRegression {
            weights: vec![0.0; bit_count * (bit_count + 1)],
            bit_count,
            learning_rate,
            active: Vec::new(),
        }
    }

    fn stride(&self) -> usize {
        self.bit_count + 1
    }

    /// `w_j · x` for the conditioning set-bit list `active`: the bias weight
    /// plus the weights at the set feature bits, summed in ascending bit
    /// order.
    fn raw_score(row: &[f32], active: &[u32]) -> f32 {
        let mut score = row[0];
        for &i in active {
            score += row[1 + i as usize];
        }
        score
    }
}

impl BlockPredictor for LogisticRegression {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn observe_transition(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        // The feature dimension is fixed by the excitation schema; if an
        // observation with a different arity appears the bank is being
        // rebuilt, so restart rather than corrupt the weights.
        if prev.bit_count() != self.bit_count {
            self.bit_count = prev.bit_count();
            self.weights.clear();
            self.weights.resize(self.bit_count * (self.bit_count + 1), 0.0);
        }
        let mut active = std::mem::take(&mut self.active);
        prev.set_bit_indices_into(&mut active);
        let stride = self.stride();
        let rate = self.learning_rate;
        for j in 0..self.bit_count.min(next.bit_count()) {
            let row = &mut self.weights[j * stride..(j + 1) * stride];
            let prediction = sigmoid(Self::raw_score(row, &active));
            let target = if next.bit(j) { 1.0 } else { 0.0 };
            let gradient_scale = rate * (target - prediction);
            row[0] += gradient_scale;
            for &i in &active {
                row[1 + i as usize] += gradient_scale;
            }
        }
        self.active = active;
    }

    fn predict_block(&self, current: &PackedObservation, bits: &mut [u64], confidence: &mut [f32]) {
        if current.bit_count() != self.bit_count {
            confidence[..current.bit_count()].fill(0.5);
            pack_probabilities(&confidence[..current.bit_count()], bits);
            return;
        }
        let mut active = Vec::with_capacity(64);
        current.set_bit_indices_into(&mut active);
        let stride = self.stride();
        for (j, slot) in confidence.iter_mut().enumerate().take(self.bit_count) {
            let row = &self.weights[j * stride..(j + 1) * stride];
            *slot = sigmoid(Self::raw_score(row, &active));
        }
        pack_probabilities(&confidence[..self.bit_count], bits);
    }

    fn reset(&mut self) {
        self.weights.fill(0.0);
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_usize(out, self.bit_count);
        persist::put_f32_slice(out, &self.weights);
    }

    fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        let bit_count = reader.usize()?;
        if bit_count != self.bit_count {
            return None;
        }
        self.weights = persist::f32_slice_exact(reader, self.weights.len())?;
        Some(())
    }
}

/// Test helper shared with the golden-model comparison: per-bit probability.
#[cfg(test)]
pub(crate) fn predict_probs(model: &LogisticRegression, x: &PackedObservation) -> Vec<f32> {
    use crate::features::packed_len;
    let mut bits = vec![0u64; packed_len(x.bit_count())];
    let mut confidence = vec![0.0f32; x.bit_count()];
    model.predict_block(x, &mut bits, &mut confidence);
    confidence
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(bits: &[bool]) -> PackedObservation {
        PackedObservation::from_bits(bits, vec![])
    }

    #[test]
    fn sigmoid_is_stable_and_monotone() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(40.0) > 0.999);
        assert!(sigmoid(-40.0) < 0.001);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
        // No overflow at extremes.
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
    }

    #[test]
    fn learns_identity_relationship() {
        // Bit 0 of the next observation equals bit 1 of the current one.
        let mut p = LogisticRegression::new(2, 0.5);
        for i in 0..200 {
            let b = i % 2 == 0;
            let current = obs(&[i % 3 == 0, b]);
            p.observe_transition(&current, &obs(&[b, false]));
        }
        assert!(predict_probs(&p, &obs(&[false, true]))[0] > 0.85);
        assert!(predict_probs(&p, &obs(&[false, false]))[0] < 0.15);
    }

    #[test]
    fn learns_negation_relationship() {
        // Next bit 0 is the complement of current bit 0 (a toggling flag).
        let mut p = LogisticRegression::new(1, 0.5);
        let mut value = false;
        for _ in 0..300 {
            let current = obs(&[value]);
            value = !value;
            p.observe_transition(&current, &obs(&[value]));
        }
        assert!(predict_probs(&p, &obs(&[false]))[0] > 0.8);
        assert!(predict_probs(&p, &obs(&[true]))[0] < 0.2);
    }

    #[test]
    fn learns_constant_bias() {
        let mut p = LogisticRegression::new(1, 0.5);
        for i in 0..100 {
            p.observe_transition(&obs(&[i % 2 == 0]), &obs(&[true]));
        }
        assert!(predict_probs(&p, &obs(&[true]))[0] > 0.9);
        assert!(predict_probs(&p, &obs(&[false]))[0] > 0.9);
    }

    #[test]
    fn unseen_model_is_uncertain_and_reset_forgets() {
        let mut p = LogisticRegression::new(1, 0.5);
        assert!((predict_probs(&p, &obs(&[true]))[0] - 0.5).abs() < 1e-6);
        for _ in 0..50 {
            p.observe_transition(&obs(&[true]), &obs(&[true]));
        }
        assert!(predict_probs(&p, &obs(&[true]))[0] > 0.8);
        p.reset();
        assert!((predict_probs(&p, &obs(&[true]))[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn arity_change_restarts_the_model() {
        let mut p = LogisticRegression::new(1, 0.5);
        for _ in 0..50 {
            p.observe_transition(&obs(&[true]), &obs(&[true]));
        }
        // A wider observation resets and resizes.
        p.observe_transition(&obs(&[true, false, true]), &obs(&[true, true, false]));
        assert_eq!(predict_probs(&p, &obs(&[true, false, true])).len(), 3);
        // Predicting with the stale arity reports pure uncertainty.
        assert_eq!(predict_probs(&p, &obs(&[true])), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        LogisticRegression::new(4, 0.0);
    }
}
