//! The predictor interface (paper §4.4.1).
//!
//! Each predictor must implement `observe_transition`, `predict_block` and
//! `reset`. Predictors are free to extract whatever features they want from
//! the conditioning observation but must express their predictions at the
//! bit level — a packed rounded prediction plus one confidence per bit — so
//! the allocator can mix and match predictors per bit with the
//! regret-minimizing ensemble.
//!
//! The contract is *block-oriented*: one virtual call trains (or predicts)
//! every tracked bit, and the per-bit work inside the call runs over flat
//! `f32` arrays and packed `u64` words. The previous design made three to
//! twelve virtual calls per bit per occurrence, which dominated
//! `PredictorBank::observe` (~100µs/occurrence at 128 excitation bits).

use crate::features::{ExcitationSchema, PackedObservation};
use crate::persist::Reader;

/// An online learner that predicts every bit of the next observation in one
/// block call.
///
/// The contract mirrors §4.4.1 of the paper, lifted to block granularity:
/// [`observe_transition`] folds one observed transition into the model
/// (training every bit), [`predict_block`] fills a packed rounded prediction
/// and a per-bit confidence buffer for the observation following `current`,
/// and [`reset`] discards the model (used when the recognizer abandons an
/// instruction pointer).
///
/// [`observe_transition`]: BlockPredictor::observe_transition
/// [`predict_block`]: BlockPredictor::predict_block
/// [`reset`]: BlockPredictor::reset
pub trait BlockPredictor: Send {
    /// Short name used in weight-matrix reports (Figure 3).
    fn name(&self) -> &'static str;

    /// Trains the model on one observed transition: every bit (and word) of
    /// `next` is a training target conditioned on `prev`.
    fn observe_transition(&mut self, prev: &PackedObservation, next: &PackedObservation);

    /// Predicts the observation following `current`.
    ///
    /// `bits` receives the packed rounded prediction
    /// ([`packed_len`](crate::features::packed_len)`(bit_count)` words; tail
    /// bits must be left zero) and `confidence[j]` the probability in
    /// `[0, 1]` that tracked bit `j` will be 1. The rounded prediction must
    /// equal `confidence[j] >= 0.5` for every bit, so the ensemble can score
    /// mistakes by XOR-ing `bits` against the realised observation.
    fn predict_block(&self, current: &PackedObservation, bits: &mut [u64], confidence: &mut [f32]);

    /// Discards the learned model and starts from scratch.
    fn reset(&mut self);

    /// Appends the model's learned state to `out` (see
    /// [`persist`](crate::persist) for the wire vocabulary). Stateless
    /// predictors — and predictors cheap enough to simply re-warm after a
    /// crash — keep the default no-op; restoring then yields a freshly
    /// constructed model.
    ///
    /// The ensemble wraps whatever is written here in a length-prefixed run,
    /// so implementations need no terminator and may write nothing.
    fn save_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores state written by [`save_state`](BlockPredictor::save_state)
    /// into a model constructed with the *same* configuration. Returns
    /// `None` when the bytes do not describe this model (wrong arity, wrong
    /// lengths, truncation) — the caller then discards the whole restore and
    /// re-warms instead; the model must be left in a usable (possibly
    /// partially overwritten, but never out-of-contract) state.
    fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        let _ = reader;
        Some(())
    }
}

/// Constructs the paper's default predictor complement for a given schema:
/// `mean`, `weatherman`, logistic regression and linear regression, the
/// latter two at several learning rates (the paper runs multiple instances
/// of each and lets the ensemble pick, §4.4.2).
pub fn default_predictors(schema: &ExcitationSchema) -> Vec<Box<dyn BlockPredictor>> {
    use crate::linear::LinearRegression;
    use crate::logistic::LogisticRegression;
    use crate::mean::MeanPredictor;
    use crate::weatherman::Weatherman;

    vec![
        Box::new(MeanPredictor::new(schema.bit_count)),
        Box::new(Weatherman::new()),
        Box::new(LogisticRegression::new(schema.bit_count, 0.5)),
        Box::new(LinearRegression::new(schema.clone(), 0.1)),
    ]
}

/// Constructs a wider complement with multiple learning rates per algorithm,
/// used when more cores are available for hyper-parameter exploration
/// (this is how the paper explains cache miss rates dropping below the
/// single-core error rate, §5.2).
pub fn extended_predictors(schema: &ExcitationSchema) -> Vec<Box<dyn BlockPredictor>> {
    use crate::linear::LinearRegression;
    use crate::logistic::LogisticRegression;
    use crate::mean::MeanPredictor;
    use crate::weatherman::Weatherman;

    vec![
        Box::new(MeanPredictor::new(schema.bit_count)),
        Box::new(Weatherman::new()),
        Box::new(LogisticRegression::new(schema.bit_count, 0.1)),
        Box::new(LogisticRegression::new(schema.bit_count, 0.5)),
        Box::new(LogisticRegression::new(schema.bit_count, 2.0)),
        Box::new(LinearRegression::new(schema.clone(), 0.02)),
        Box::new(LinearRegression::new(schema.clone(), 0.1)),
        Box::new(LinearRegression::new(schema.clone(), 0.5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_complement_has_four_predictors() {
        let schema = ExcitationSchema::new(1, vec![(0, 0), (0, 1)]);
        let predictors = default_predictors(&schema);
        let names: Vec<_> = predictors.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["mean", "weatherman", "logistic", "linear"]);
    }

    #[test]
    fn extended_complement_is_larger() {
        let schema = ExcitationSchema::new(1, vec![(0, 0)]);
        assert!(extended_predictors(&schema).len() > default_predictors(&schema).len());
    }
}
