//! The predictor interface (paper §4.4.1).
//!
//! Each predictor must implement `update`, `predict` and `reset`; predictors
//! are free to extract whatever features they want from the conditioning
//! observation but must express their predictions at the bit level, so the
//! allocator can mix and match predictors per bit with the regret-minimizing
//! ensemble.

use crate::features::{ExcitationSchema, Observation};

/// An online learner that predicts individual bits of the next observation.
///
/// The contract mirrors §4.4.1 of the paper: `update(x, j)` folds in the
/// newly observed value of bit `j` given the previous conditioning state,
/// `predict(x, j)` returns the probability that bit `j` of the *next*
/// observation will be 1 given the current state `x`, and `reset()` discards
/// the model (used when the recognizer abandons an instruction pointer).
pub trait BitPredictor: Send {
    /// Short name used in weight-matrix reports (Figure 3).
    fn name(&self) -> &'static str;

    /// Called once per observed transition, before the per-bit updates, with
    /// both endpoints. Word-level predictors (linear regression) use this to
    /// run their word-granularity updates; bit-level predictors can ignore it.
    fn observe_transition(&mut self, prev: &Observation, next: &Observation) {
        let _ = (prev, next);
    }

    /// Updates the model for bit `j`, given that the observation following
    /// `prev` had value `actual` for that bit.
    fn update(&mut self, prev: &Observation, j: usize, actual: bool);

    /// Probability in `[0, 1]` that bit `j` of the observation following
    /// `current` will be 1.
    fn predict(&self, current: &Observation, j: usize) -> f64;

    /// Discards the learned model and starts from scratch.
    fn reset(&mut self);
}

/// Constructs the paper's default predictor complement for a given schema:
/// `mean`, `weatherman`, logistic regression and linear regression, the
/// latter two at several learning rates (the paper runs multiple instances
/// of each and lets the ensemble pick, §4.4.2).
pub fn default_predictors(schema: &ExcitationSchema) -> Vec<Box<dyn BitPredictor>> {
    use crate::linear::LinearRegression;
    use crate::logistic::LogisticRegression;
    use crate::mean::MeanPredictor;
    use crate::weatherman::Weatherman;

    vec![
        Box::new(MeanPredictor::new(schema.bit_count)),
        Box::new(Weatherman::new()),
        Box::new(LogisticRegression::new(schema.bit_count, 0.5)),
        Box::new(LinearRegression::new(schema.clone(), 0.1)),
    ]
}

/// Constructs a wider complement with multiple learning rates per algorithm,
/// used when more cores are available for hyper-parameter exploration
/// (this is how the paper explains cache miss rates dropping below the
/// single-core error rate, §5.2).
pub fn extended_predictors(schema: &ExcitationSchema) -> Vec<Box<dyn BitPredictor>> {
    use crate::linear::LinearRegression;
    use crate::logistic::LogisticRegression;
    use crate::mean::MeanPredictor;
    use crate::weatherman::Weatherman;

    vec![
        Box::new(MeanPredictor::new(schema.bit_count)),
        Box::new(Weatherman::new()),
        Box::new(LogisticRegression::new(schema.bit_count, 0.1)),
        Box::new(LogisticRegression::new(schema.bit_count, 0.5)),
        Box::new(LogisticRegression::new(schema.bit_count, 2.0)),
        Box::new(LinearRegression::new(schema.clone(), 0.02)),
        Box::new(LinearRegression::new(schema.clone(), 0.1)),
        Box::new(LinearRegression::new(schema.clone(), 0.5)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_complement_has_four_predictors() {
        let schema = ExcitationSchema::new(1, vec![(0, 0), (0, 1)]);
        let predictors = default_predictors(&schema);
        let names: Vec<_> = predictors.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["mean", "weatherman", "logistic", "linear"]);
    }

    #[test]
    fn extended_complement_is_larger() {
        let schema = ExcitationSchema::new(1, vec![(0, 0)]);
        assert!(extended_predictors(&schema).len() > default_predictors(&schema).len());
    }
}
