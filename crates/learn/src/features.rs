//! Feature representation shared by all predictors.
//!
//! The paper's predictors never see the whole 10⁵–10⁷-bit state vector: they
//! are trained only on the program's *excitations* — the bits that actually
//! change between successive occurrences of the recognized instruction
//! pointer (§4.4). The ASC runtime extracts those bits (and the 32-bit words
//! that contain them) into a [`PackedObservation`]; the [`ExcitationSchema`]
//! records how the two views line up so bit-level and word-level predictors
//! can cooperate.
//!
//! Observations are *columnar*: the tracked bits live packed in `u64` words
//! (64 bits per machine word, LSB first, in tracked-bit order) instead of one
//! `bool` per bit. Excitation sets are a tiny, fixed subset of state bits,
//! which is exactly the shape that rewards a packed layout — predictors train
//! and predict whole blocks of bits with word-level operations (XOR mistake
//! masks, set-bit iteration, popcounts) rather than per-bit virtual calls.

/// Describes the shape of observations: how many excited bits there are and
/// which excited word each bit belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExcitationSchema {
    /// Number of tracked (excited) bits.
    pub bit_count: usize,
    /// Number of tracked 32-bit words (each containing at least one excited bit).
    pub word_count: usize,
    /// For every tracked bit: `(word_index, bit_offset_within_word)`.
    pub bit_homes: Vec<(usize, u8)>,
}

impl ExcitationSchema {
    /// Creates a schema, validating that every bit home refers to a valid word.
    ///
    /// # Panics
    /// Panics when a bit's home word index is out of range; schemas are built
    /// by the excitation tracker, so this indicates an internal bug.
    pub fn new(word_count: usize, bit_homes: Vec<(usize, u8)>) -> Self {
        for &(word, offset) in &bit_homes {
            assert!(word < word_count, "bit home word {word} out of range");
            assert!(offset < 32, "bit offset {offset} out of range");
        }
        ExcitationSchema { bit_count: bit_homes.len(), word_count, bit_homes }
    }

    /// The `(word, offset)` home of tracked bit `j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn home(&self, j: usize) -> (usize, u8) {
        self.bit_homes[j]
    }
}

/// Number of `u64` words needed to pack `bit_count` bits.
pub fn packed_len(bit_count: usize) -> usize {
    bit_count.div_ceil(64)
}

/// Masks the unused tail bits of the last packed word to zero, preserving
/// the invariant that packed buffers agree beyond `bit_count` (so XOR-based
/// mistake masks can never manufacture ghost mistakes).
pub fn mask_tail(packed: &mut [u64], bit_count: usize) {
    if bit_count % 64 != 0 {
        if let Some(last) = packed.last_mut() {
            *last &= (1u64 << (bit_count % 64)) - 1;
        }
    }
}

/// Rounds per-bit probabilities into a packed bit buffer (`p >= 0.5` → 1).
///
/// # Panics
/// Panics when `bits` is shorter than `packed_len(confidence.len())`.
pub fn pack_probabilities(confidence: &[f32], bits: &mut [u64]) {
    let needed = packed_len(confidence.len());
    assert!(bits.len() >= needed, "packed prediction buffer too short");
    for word in bits.iter_mut().take(needed) {
        *word = 0;
    }
    for (j, &p) in confidence.iter().enumerate() {
        if p >= 0.5 {
            bits[j / 64] |= 1u64 << (j % 64);
        }
    }
}

/// The values of the excited bits and words of one state-vector snapshot.
///
/// The bit view is packed into `u64` words; the word view keeps the raw
/// 32-bit values of the tracked words for word-granularity predictors
/// (linear regression). Unused tail bits of the last packed word are always
/// zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedObservation {
    /// Tracked bits, 64 per word, LSB first, in tracked-bit order.
    packed: Vec<u64>,
    /// Number of tracked bits.
    bit_count: usize,
    /// Value of each tracked 32-bit word.
    words: Vec<u32>,
}

impl PackedObservation {
    /// Creates an observation from a packed bit buffer and raw word values.
    ///
    /// # Panics
    /// Panics when `packed` does not hold exactly `packed_len(bit_count)`
    /// words.
    pub fn new(mut packed: Vec<u64>, bit_count: usize, words: Vec<u32>) -> Self {
        assert_eq!(packed.len(), packed_len(bit_count), "packed buffer has wrong arity");
        mask_tail(&mut packed, bit_count);
        PackedObservation { packed, bit_count, words }
    }

    /// Creates an observation from per-bit values (test and conversion
    /// convenience; hot paths build the packed buffer directly).
    pub fn from_bits(bits: &[bool], words: Vec<u32>) -> Self {
        let mut packed = vec![0u64; packed_len(bits.len())];
        for (j, &bit) in bits.iter().enumerate() {
            if bit {
                packed[j / 64] |= 1u64 << (j % 64);
            }
        }
        PackedObservation { packed, bit_count: bits.len(), words }
    }

    /// Derives the packed bit view from raw word values via the schema's bit
    /// homes (bit `j` of the observation is bit `home(j)` of the words).
    pub fn from_words(schema: &ExcitationSchema, words: Vec<u32>) -> Self {
        let mut packed = vec![0u64; packed_len(schema.bit_count)];
        for (j, &(word, offset)) in schema.bit_homes.iter().enumerate() {
            if words.get(word).is_some_and(|w| (w >> offset) & 1 == 1) {
                packed[j / 64] |= 1u64 << (j % 64);
            }
        }
        PackedObservation { packed, bit_count: schema.bit_count, words }
    }

    /// Number of tracked bits.
    pub fn bit_count(&self) -> usize {
        self.bit_count
    }

    /// The packed bit words (tail bits beyond [`bit_count`] are zero).
    ///
    /// [`bit_count`]: PackedObservation::bit_count
    pub fn packed(&self) -> &[u64] {
        &self.packed
    }

    /// The tracked bit `j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn bit(&self, j: usize) -> bool {
        assert!(j < self.bit_count, "bit {j} out of range");
        (self.packed[j / 64] >> (j % 64)) & 1 == 1
    }

    /// The tracked bits unpacked into one `bool` per bit (reporting and test
    /// convenience).
    pub fn bits(&self) -> Vec<bool> {
        (0..self.bit_count).map(|j| self.bit(j)).collect()
    }

    /// The tracked 32-bit word values.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The tracked word `w`.
    ///
    /// # Panics
    /// Panics when `w` is out of range.
    pub fn word(&self, w: usize) -> u32 {
        self.words[w]
    }

    /// Appends the indices of the set tracked bits to `indices` (ascending).
    /// This is the iteration order every sparse predictor uses, so packed and
    /// reference implementations accumulate in the same order.
    pub fn set_bit_indices_into(&self, indices: &mut Vec<u32>) {
        indices.clear();
        for (w, &word) in self.packed.iter().enumerate() {
            let mut remaining = word;
            while remaining != 0 {
                let bit = remaining.trailing_zeros();
                indices.push((w * 64) as u32 + bit);
                remaining &= remaining - 1;
            }
        }
    }

    /// Builds the observation that follows from a packed bit prediction: the
    /// predicted bits become the bit view, and the word view is `template`'s
    /// words patched at every tracked bit's home. Used when rolling
    /// predictions forward: the predicted block is turned back into a full
    /// observation so it can condition the next prediction.
    ///
    /// # Panics
    /// Panics when `bits` does not hold `packed_len(schema.bit_count)` words.
    pub fn from_predicted(
        schema: &ExcitationSchema,
        template: &PackedObservation,
        bits: &[u64],
    ) -> Self {
        assert_eq!(bits.len(), packed_len(schema.bit_count), "predicted block has wrong arity");
        let mut words = template.words.clone();
        for (j, &(word, offset)) in schema.bit_homes.iter().enumerate() {
            if (bits[j / 64] >> (j % 64)) & 1 == 1 {
                words[word] |= 1 << offset;
            } else {
                words[word] &= !(1 << offset);
            }
        }
        let mut packed = bits.to_vec();
        mask_tail(&mut packed, schema.bit_count);
        PackedObservation { packed, bit_count: schema.bit_count, words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_two_words() -> ExcitationSchema {
        // Track bits 0 and 5 of word 0, bit 31 of word 1.
        ExcitationSchema::new(2, vec![(0, 0), (0, 5), (1, 31)])
    }

    #[test]
    fn schema_homes() {
        let schema = schema_two_words();
        assert_eq!(schema.bit_count, 3);
        assert_eq!(schema.home(1), (0, 5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn schema_rejects_bad_word() {
        ExcitationSchema::new(1, vec![(1, 0)]);
    }

    #[test]
    fn packing_roundtrips_bits() {
        let bits: Vec<bool> = (0..100).map(|j| j % 3 == 0).collect();
        let obs = PackedObservation::from_bits(&bits, vec![]);
        assert_eq!(obs.bit_count(), 100);
        assert_eq!(obs.packed().len(), 2);
        assert_eq!(obs.bits(), bits);
        for (j, &bit) in bits.iter().enumerate() {
            assert_eq!(obs.bit(j), bit);
        }
        // Tail bits beyond bit 100 are zero.
        assert_eq!(obs.packed()[1] >> (100 - 64), 0);
    }

    #[test]
    fn from_words_follows_schema_homes() {
        let schema = schema_two_words();
        let obs = PackedObservation::from_words(&schema, vec![0b10_0001, 1 << 31]);
        assert_eq!(obs.bits(), vec![true, true, true]);
        let obs = PackedObservation::from_words(&schema, vec![0b10_0000, 0]);
        assert_eq!(obs.bits(), vec![false, true, false]);
    }

    #[test]
    fn set_bit_indices_are_ascending() {
        let bits: Vec<bool> = (0..70).map(|j| j == 0 || j == 63 || j == 65).collect();
        let obs = PackedObservation::from_bits(&bits, vec![]);
        let mut indices = Vec::new();
        obs.set_bit_indices_into(&mut indices);
        assert_eq!(indices, vec![0, 63, 65]);
    }

    #[test]
    fn predicted_blocks_patch_words() {
        let schema = schema_two_words();
        let template = PackedObservation::from_bits(&[false, false, false], vec![0, 0]);
        let obs = PackedObservation::from_predicted(&schema, &template, &[0b111]);
        assert_eq!(obs.word(0), 0b10_0001);
        assert_eq!(obs.word(1), 1 << 31);
        assert_eq!(obs.bits(), vec![true, true, true]);
        // Clearing bits works too.
        let cleared = PackedObservation::from_predicted(&schema, &obs, &[0b010]);
        assert_eq!(cleared.word(0), 0b10_0000);
        assert_eq!(cleared.word(1), 0);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn predicted_blocks_require_full_vector() {
        let schema = schema_two_words();
        let template = PackedObservation::from_bits(&[false; 3], vec![0, 0]);
        PackedObservation::from_predicted(&schema, &template, &[]);
    }

    #[test]
    fn pack_probabilities_rounds_at_half() {
        let mut bits = vec![u64::MAX; 1];
        pack_probabilities(&[0.49, 0.5, 0.51, 0.0], &mut bits);
        assert_eq!(bits[0], 0b110);
    }
}
