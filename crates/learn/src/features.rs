//! Feature representation shared by all predictors.
//!
//! The paper's predictors never see the whole 10⁵–10⁷-bit state vector: they
//! are trained only on the program's *excitations* — the bits that actually
//! change between successive occurrences of the recognized instruction
//! pointer (§4.4). The ASC runtime extracts those bits (and the 32-bit words
//! that contain them) into an [`Observation`]; the [`ExcitationSchema`]
//! records how the two views line up so bit-level and word-level predictors
//! can cooperate.

/// Describes the shape of observations: how many excited bits there are and
/// which excited word each bit belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExcitationSchema {
    /// Number of tracked (excited) bits.
    pub bit_count: usize,
    /// Number of tracked 32-bit words (each containing at least one excited bit).
    pub word_count: usize,
    /// For every tracked bit: `(word_index, bit_offset_within_word)`.
    pub bit_homes: Vec<(usize, u8)>,
}

impl ExcitationSchema {
    /// Creates a schema, validating that every bit home refers to a valid word.
    ///
    /// # Panics
    /// Panics when a bit's home word index is out of range; schemas are built
    /// by the excitation tracker, so this indicates an internal bug.
    pub fn new(word_count: usize, bit_homes: Vec<(usize, u8)>) -> Self {
        for &(word, offset) in &bit_homes {
            assert!(word < word_count, "bit home word {word} out of range");
            assert!(offset < 32, "bit offset {offset} out of range");
        }
        ExcitationSchema { bit_count: bit_homes.len(), word_count, bit_homes }
    }

    /// The `(word, offset)` home of tracked bit `j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn home(&self, j: usize) -> (usize, u8) {
        self.bit_homes[j]
    }
}

/// The values of the excited bits and words of one state-vector snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observation {
    /// Value of each tracked bit.
    pub bits: Vec<bool>,
    /// Value of each tracked 32-bit word.
    pub words: Vec<u32>,
}

impl Observation {
    /// Creates an observation from raw bit and word values.
    pub fn new(bits: Vec<bool>, words: Vec<u32>) -> Self {
        Observation { bits, words }
    }

    /// Number of tracked bits.
    pub fn bit_count(&self) -> usize {
        self.bits.len()
    }

    /// The tracked bit `j`.
    ///
    /// # Panics
    /// Panics when `j` is out of range.
    pub fn bit(&self, j: usize) -> bool {
        self.bits[j]
    }

    /// The tracked word `w`.
    ///
    /// # Panics
    /// Panics when `w` is out of range.
    pub fn word(&self, w: usize) -> u32 {
        self.words[w]
    }

    /// Dense `{0, 1}` feature vector with a leading bias term, the input
    /// representation used by the logistic-regression predictor.
    pub fn features_with_bias(&self) -> Vec<f64> {
        let mut x = Vec::with_capacity(self.bits.len() + 1);
        x.push(1.0);
        x.extend(self.bits.iter().map(|b| if *b { 1.0 } else { 0.0 }));
        x
    }

    /// Builds an observation whose word values are patched with predicted
    /// bits. Used by the allocator when rolling predictions forward: the
    /// predicted bit vector is turned back into a full observation so it can
    /// be fed to the predictors as the next conditioning state.
    pub fn from_predicted_bits(
        schema: &ExcitationSchema,
        template: &Observation,
        bits: &[bool],
    ) -> Self {
        assert_eq!(bits.len(), schema.bit_count, "predicted bit vector has wrong arity");
        let mut words = template.words.clone();
        for (j, &bit) in bits.iter().enumerate() {
            let (word, offset) = schema.home(j);
            if bit {
                words[word] |= 1 << offset;
            } else {
                words[word] &= !(1 << offset);
            }
        }
        Observation { bits: bits.to_vec(), words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_two_words() -> ExcitationSchema {
        // Track bits 0 and 5 of word 0, bit 31 of word 1.
        ExcitationSchema::new(2, vec![(0, 0), (0, 5), (1, 31)])
    }

    #[test]
    fn schema_homes() {
        let schema = schema_two_words();
        assert_eq!(schema.bit_count, 3);
        assert_eq!(schema.home(1), (0, 5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn schema_rejects_bad_word() {
        ExcitationSchema::new(1, vec![(1, 0)]);
    }

    #[test]
    fn features_with_bias_has_leading_one() {
        let obs = Observation::new(vec![true, false, true], vec![0, 0]);
        assert_eq!(obs.features_with_bias(), vec![1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn predicted_bits_patch_words() {
        let schema = schema_two_words();
        let template = Observation::new(vec![false, false, false], vec![0, 0]);
        let obs = Observation::from_predicted_bits(&schema, &template, &[true, true, true]);
        assert_eq!(obs.words[0], 0b10_0001);
        assert_eq!(obs.words[1], 1 << 31);
        assert_eq!(obs.bits, vec![true, true, true]);
        // Clearing bits works too.
        let cleared = Observation::from_predicted_bits(&schema, &obs, &[false, true, false]);
        assert_eq!(cleared.words[0], 0b10_0000);
        assert_eq!(cleared.words[1], 0);
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn predicted_bits_require_full_vector() {
        let schema = schema_two_words();
        let template = Observation::new(vec![false; 3], vec![0, 0]);
        Observation::from_predicted_bits(&schema, &template, &[true]);
    }
}
