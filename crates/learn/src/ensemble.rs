//! Regret-minimizing combination of predictors (§4.5.1).
//!
//! The allocator combines the per-bit predictions of wildly different
//! learners with the Randomized Weighted Majority Algorithm (RWMA): every
//! `(bit, predictor)` pair carries a weight, weights of predictors that get a
//! bit wrong are multiplied by `beta < 1`, and the ensemble's prediction for
//! a bit is the weight-normalised vote. The classic regret bound guarantees
//! that, per bit, the ensemble's mistake count stays within a constant factor
//! (plus a logarithmic term) of the best single predictor chosen in
//! hindsight — which is exactly the comparison Table 2 of the paper reports.

use crate::features::Observation;
use crate::rng::Rng;
use crate::traits::BitPredictor;

/// Aggregate error statistics in the shape of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnsembleErrors {
    /// Fraction of whole-state predictions that would have been wrong with
    /// every predictor weighted equally.
    pub equal_weight_error_rate: f64,
    /// Fraction wrong when clairvoyantly using the single best predictor for
    /// each bit (chosen in hindsight).
    pub hindsight_optimal_error_rate: f64,
    /// Fraction wrong using the actual regret-minimised weights.
    pub actual_error_rate: f64,
    /// Total number of whole-state predictions scored.
    pub total_predictions: u64,
    /// Number of whole-state predictions the ensemble got wrong.
    pub incorrect_predictions: u64,
}

/// The per-bit weighted ensemble.
pub struct Ensemble {
    predictors: Vec<Box<dyn BitPredictor>>,
    /// `weights[j][p]` is the weight of predictor `p` on bit `j`.
    weights: Vec<Vec<f64>>,
    beta: f64,
    /// Per observation, per bit: bitmask of predictors that got the bit wrong.
    mistake_log: Vec<Vec<u16>>,
    /// Whole-state mistakes of the weighted ensemble.
    ensemble_mistakes: u64,
    /// Whole-state mistakes of the equal-weight vote.
    equal_weight_mistakes: u64,
    observations: u64,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("predictors", &self.predictor_names())
            .field("bits", &self.weights.len())
            .field("beta", &self.beta)
            .field("observations", &self.observations)
            .finish()
    }
}

impl Ensemble {
    /// Creates an ensemble over `bit_count` tracked bits.
    ///
    /// # Panics
    /// Panics when there are no predictors, more than 16 predictors (the
    /// mistake log packs per-predictor flags into a `u16`), or `beta` is not
    /// in `(0, 1)`.
    pub fn new(predictors: Vec<Box<dyn BitPredictor>>, bit_count: usize, beta: f64) -> Self {
        assert!(!predictors.is_empty(), "ensemble needs at least one predictor");
        assert!(predictors.len() <= 16, "at most 16 predictors are supported");
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
        let weights = vec![vec![1.0; predictors.len()]; bit_count];
        Ensemble {
            predictors,
            weights,
            beta,
            mistake_log: Vec::new(),
            ensemble_mistakes: 0,
            equal_weight_mistakes: 0,
            observations: 0,
        }
    }

    /// Names of the member predictors, in weight-matrix row order.
    pub fn predictor_names(&self) -> Vec<&'static str> {
        self.predictors.iter().map(|p| p.name()).collect()
    }

    /// Number of tracked bits.
    pub fn bit_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of observed transitions.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Probability that bit `j` of the next observation is 1, combining every
    /// predictor by its current weight.
    pub fn predict_bit(&self, current: &Observation, j: usize) -> f64 {
        let weights = match self.weights.get(j) {
            Some(w) => w,
            None => return 0.5,
        };
        let mut numerator = 0.0;
        let mut denominator = 0.0;
        for (p, predictor) in self.predictors.iter().enumerate() {
            let probability = predictor.predict(current, j).clamp(0.0, 1.0);
            numerator += weights[p] * probability;
            denominator += weights[p];
        }
        if denominator <= 0.0 {
            0.5
        } else {
            numerator / denominator
        }
    }

    /// Per-bit probabilities for the whole next observation (the paper's
    /// Eq. 2 factors).
    pub fn predict_distribution(&self, current: &Observation) -> Vec<f64> {
        (0..self.bit_count()).map(|j| self.predict_bit(current, j)).collect()
    }

    /// The maximum-likelihood prediction: every bit rounded to its most
    /// probable value, together with the joint log-probability under Eq. 2.
    pub fn predict_ml(&self, current: &Observation) -> (Vec<bool>, f64) {
        let distribution = self.predict_distribution(current);
        let mut bits = Vec::with_capacity(distribution.len());
        let mut log_probability = 0.0;
        for p in distribution {
            let bit = p >= 0.5;
            bits.push(bit);
            let bit_probability = if bit { p } else { 1.0 - p };
            log_probability += bit_probability.max(1e-12).ln();
        }
        (bits, log_probability)
    }

    /// Alternate predictions generated by flipping the most uncertain bits of
    /// the maximum-likelihood prediction (§4.4: "the second and third most
    /// likely predictions, and so on"). Returns up to `count` predictions in
    /// decreasing probability order, starting with the ML prediction.
    pub fn predict_top(&self, current: &Observation, count: usize) -> Vec<(Vec<bool>, f64)> {
        let distribution = self.predict_distribution(current);
        let (ml_bits, ml_log_probability) = self.predict_ml(current);
        let mut results = vec![(ml_bits.clone(), ml_log_probability)];
        if count <= 1 || distribution.is_empty() {
            results.truncate(count.max(1));
            return results;
        }
        // Rank bits by how uncertain they are (probability closest to 0.5).
        let mut by_uncertainty: Vec<usize> = (0..distribution.len()).collect();
        by_uncertainty.sort_by(|&a, &b| {
            (distribution[a] - 0.5)
                .abs()
                .partial_cmp(&(distribution[b] - 0.5).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &j in by_uncertainty.iter().take(count.saturating_sub(1)) {
            let mut flipped = ml_bits.clone();
            flipped[j] = !flipped[j];
            let p = distribution[j];
            let old = if ml_bits[j] { p } else { 1.0 - p };
            let new = 1.0 - old;
            let log_probability = ml_log_probability - old.max(1e-12).ln() + new.max(1e-12).ln();
            results.push((flipped, log_probability));
        }
        results
    }

    /// Draws a prediction for bit `j` randomly, proportionally to the current
    /// weights (the "randomized" in RWMA). Exposed for completeness; the
    /// allocator uses the deterministic weighted vote.
    pub fn predict_bit_randomized<R: Rng>(
        &self,
        current: &Observation,
        j: usize,
        rng: &mut R,
    ) -> bool {
        let weights = match self.weights.get(j) {
            Some(w) => w,
            None => return rng.gen_bool(0.5),
        };
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return rng.gen_bool(0.5);
        }
        let mut pick = rng.gen_range_f64(0.0, total);
        for (p, predictor) in self.predictors.iter().enumerate() {
            pick -= weights[p];
            if pick <= 0.0 {
                return predictor.predict(current, j) >= 0.5;
            }
        }
        self.predictors.last().map(|p| p.predict(current, j) >= 0.5).unwrap_or(false)
    }

    /// Observes one transition: scores every predictor (and the ensemble
    /// itself) on the realised `next` observation, updates the RWMA weights,
    /// and then lets every predictor train on the new example.
    pub fn observe(&mut self, prev: &Observation, next: &Observation) {
        let bit_count = self.bit_count().min(next.bits.len());
        let mut mistakes_this_observation = vec![0u16; bit_count];
        let mut ensemble_wrong = false;
        let mut equal_weight_wrong = false;

        for (j, mistakes) in mistakes_this_observation.iter_mut().enumerate() {
            let actual = next.bits[j];
            // Score the weighted ensemble before updating anything.
            if (self.predict_bit(prev, j) >= 0.5) != actual {
                ensemble_wrong = true;
            }
            // Equal-weight vote: average the probabilities.
            let mut equal = 0.0;
            for predictor in &self.predictors {
                equal += predictor.predict(prev, j).clamp(0.0, 1.0);
            }
            if (equal / self.predictors.len() as f64 >= 0.5) != actual {
                equal_weight_wrong = true;
            }
            // Score individual predictors and apply the multiplicative update.
            for (p, predictor) in self.predictors.iter().enumerate() {
                let predicted = predictor.predict(prev, j) >= 0.5;
                if predicted != actual {
                    *mistakes |= 1 << p;
                    self.weights[j][p] *= self.beta;
                }
            }
            // Keep weights from underflowing to zero for every predictor.
            let max = self.weights[j].iter().cloned().fold(0.0, f64::max);
            if max < 1e-9 {
                for w in &mut self.weights[j] {
                    *w /= max.max(1e-300);
                }
            }
        }

        self.mistake_log.push(mistakes_this_observation);
        self.observations += 1;
        if ensemble_wrong {
            self.ensemble_mistakes += 1;
        }
        if equal_weight_wrong {
            self.equal_weight_mistakes += 1;
        }

        // Finally train the member predictors on the new example.
        for predictor in &mut self.predictors {
            predictor.observe_transition(prev, next);
        }
        for (j, &actual) in next.bits.iter().enumerate().take(bit_count) {
            for predictor in &mut self.predictors {
                predictor.update(prev, j, actual);
            }
        }
    }

    /// The current weight matrix: `weights[bit][predictor]`, normalised per
    /// bit so each row sums to 1 (the shading of the paper's Figure 3).
    pub fn weight_matrix(&self) -> Vec<Vec<f64>> {
        self.weights
            .iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                if total <= 0.0 {
                    vec![1.0 / row.len() as f64; row.len()]
                } else {
                    row.iter().map(|w| w / total).collect()
                }
            })
            .collect()
    }

    /// Error statistics in the shape of Table 2.
    pub fn errors(&self) -> EnsembleErrors {
        let total = self.observations;
        if total == 0 {
            return EnsembleErrors::default();
        }
        // Hindsight-optimal: pick, per bit, the predictor with the fewest
        // mistakes over the whole log, then count the observations where that
        // assignment still got at least one bit wrong.
        let bit_count = self.bit_count();
        let predictor_count = self.predictors.len();
        let mut per_bit_errors = vec![vec![0u64; predictor_count]; bit_count];
        for observation in &self.mistake_log {
            for (j, mask) in observation.iter().enumerate() {
                for (p, errors) in per_bit_errors[j].iter_mut().enumerate() {
                    if mask & (1 << p) != 0 {
                        *errors += 1;
                    }
                }
            }
        }
        let best_per_bit: Vec<usize> = per_bit_errors
            .iter()
            .map(|errors| {
                errors
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, count)| **count)
                    .map(|(p, _)| p)
                    .unwrap_or(0)
            })
            .collect();
        let mut hindsight_mistakes = 0u64;
        for observation in &self.mistake_log {
            let wrong =
                observation.iter().enumerate().any(|(j, mask)| mask & (1 << best_per_bit[j]) != 0);
            if wrong {
                hindsight_mistakes += 1;
            }
        }
        EnsembleErrors {
            equal_weight_error_rate: self.equal_weight_mistakes as f64 / total as f64,
            hindsight_optimal_error_rate: hindsight_mistakes as f64 / total as f64,
            actual_error_rate: self.ensemble_mistakes as f64 / total as f64,
            total_predictions: total,
            incorrect_predictions: self.ensemble_mistakes,
        }
    }

    /// Resets every predictor and all weights (used when the recognizer
    /// abandons the current RIP).
    pub fn reset(&mut self) {
        for predictor in &mut self.predictors {
            predictor.reset();
        }
        for row in &mut self.weights {
            row.fill(1.0);
        }
        self.mistake_log.clear();
        self.ensemble_mistakes = 0;
        self.equal_weight_mistakes = 0;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ExcitationSchema;
    use crate::traits::default_predictors;

    /// A deliberately terrible predictor: always predicts the complement of
    /// the weatherman, to give the ensemble something to down-weight.
    struct Contrarian;
    impl BitPredictor for Contrarian {
        fn name(&self) -> &'static str {
            "contrarian"
        }
        fn update(&mut self, _prev: &Observation, _j: usize, _actual: bool) {}
        fn predict(&self, current: &Observation, j: usize) -> f64 {
            if j < current.bit_count() && current.bit(j) {
                0.05
            } else {
                0.95
            }
        }
        fn reset(&mut self) {}
    }

    fn constant_schema(bits: usize) -> ExcitationSchema {
        ExcitationSchema::new(1, (0..bits).map(|b| (0, b as u8)).collect())
    }

    fn obs_of(word: u32, bits: usize) -> Observation {
        Observation::new((0..bits).map(|b| (word >> b) & 1 == 1).collect(), vec![word])
    }

    #[test]
    fn downweights_the_bad_predictor() {
        let schema = constant_schema(4);
        let mut predictors = default_predictors(&schema);
        predictors.push(Box::new(Contrarian));
        let contrarian_index = predictors.len() - 1;
        let mut ensemble = Ensemble::new(predictors, 4, 0.5);
        // A constant sequence: weatherman and mean are perfect, contrarian is
        // always wrong.
        let value = obs_of(0b1010, 4);
        for _ in 0..20 {
            ensemble.observe(&value, &value);
        }
        let matrix = ensemble.weight_matrix();
        for row in &matrix {
            assert!(row[contrarian_index] < 0.05, "contrarian still has weight {row:?}");
        }
        // And the ensemble's own predictions are correct.
        let (bits, _) = ensemble.predict_ml(&value);
        assert_eq!(bits, value.bits);
    }

    #[test]
    fn errors_track_equal_weight_vs_actual() {
        let schema = constant_schema(4);
        let mut predictors = default_predictors(&schema);
        // Enough contrarians to outvote the good predictors under equal
        // weighting (their confident wrong probabilities dominate the mean).
        for _ in 0..6 {
            predictors.push(Box::new(Contrarian));
        }
        let mut ensemble = Ensemble::new(predictors, 4, 0.5);
        let value = obs_of(0b0110, 4);
        for _ in 0..40 {
            ensemble.observe(&value, &value);
        }
        let errors = ensemble.errors();
        assert_eq!(errors.total_predictions, 40);
        // Equal weighting keeps being wrong; the weighted ensemble recovers.
        assert!(errors.equal_weight_error_rate > 0.6, "{errors:?}");
        assert!(errors.actual_error_rate < 0.35, "{errors:?}");
        assert!(errors.hindsight_optimal_error_rate <= errors.actual_error_rate + 1e-9);
    }

    #[test]
    fn regret_is_bounded_relative_to_best_predictor() {
        // A toggling bit: weatherman is always wrong, logistic learns it,
        // mean hovers at 0.5. The ensemble must end up close to hindsight
        // optimal, which is the RWMA guarantee Table 2 relies on.
        let schema = constant_schema(1);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 1, 0.5);
        let mut value = false;
        for _ in 0..300 {
            let prev = Observation::new(vec![value], vec![value as u32]);
            value = !value;
            let next = Observation::new(vec![value], vec![value as u32]);
            ensemble.observe(&prev, &next);
        }
        let errors = ensemble.errors();
        assert!(
            errors.actual_error_rate < errors.hindsight_optimal_error_rate + 0.15,
            "actual {:.3} vs hindsight {:.3}",
            errors.actual_error_rate,
            errors.hindsight_optimal_error_rate
        );
    }

    #[test]
    fn predict_top_orders_by_probability() {
        let schema = constant_schema(4);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 4, 0.5);
        let value = obs_of(0b1100, 4);
        for _ in 0..10 {
            ensemble.observe(&value, &value);
        }
        let top = ensemble.predict_top(&value, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1);
        assert!(top[0].1 >= top[2].1);
        assert_eq!(top[0].0, value.bits);
        // Alternates differ from the ML prediction in exactly one bit.
        let differences: usize =
            top[1].0.iter().zip(top[0].0.iter()).filter(|(a, b)| a != b).count();
        assert_eq!(differences, 1);
    }

    #[test]
    fn randomized_prediction_is_well_formed() {
        let schema = constant_schema(2);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 2, 0.5);
        let value = obs_of(0b11, 2);
        for _ in 0..10 {
            ensemble.observe(&value, &value);
        }
        let mut rng = crate::rng::XorShiftRng::new(0xA5C_5EED);
        let mut ones = 0;
        for _ in 0..50 {
            if ensemble.predict_bit_randomized(&value, 0, &mut rng) {
                ones += 1;
            }
        }
        // After ten consistent observations nearly every draw should be 1.
        assert!(ones > 40);
    }

    #[test]
    fn reset_clears_history() {
        let schema = constant_schema(2);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 2, 0.5);
        let value = obs_of(0b01, 2);
        ensemble.observe(&value, &value);
        assert_eq!(ensemble.observations(), 1);
        ensemble.reset();
        assert_eq!(ensemble.observations(), 0);
        assert_eq!(ensemble.errors(), EnsembleErrors::default());
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let schema = constant_schema(1);
        Ensemble::new(default_predictors(&schema), 1, 1.5);
    }
}
