//! Regret-minimizing combination of predictors (§4.5.1).
//!
//! The allocator combines the per-bit predictions of wildly different
//! learners with the Randomized Weighted Majority Algorithm (RWMA): every
//! `(bit, predictor)` pair carries a weight, weights of predictors that get a
//! bit wrong are multiplied by `beta < 1`, and the ensemble's prediction for
//! a bit is the weight-normalised vote. The classic regret bound guarantees
//! that, per bit, the ensemble's mistake count stays within a constant factor
//! (plus a logarithmic term) of the best single predictor chosen in
//! hindsight — which is exactly the comparison Table 2 of the paper reports.
//!
//! The implementation is columnar: the weight matrix is one flat `f32`
//! buffer, each member predictor trains and predicts whole blocks through
//! the [`BlockPredictor`] API, and scoring computes *mistake masks* — the
//! XOR of a predictor's packed rounded prediction with the realised packed
//! observation — so the multiplicative update only ever touches the weights
//! of bits that were actually wrong. Mistake history lives in a bounded ring
//! buffer of packed masks plus cumulative per-`(bit, predictor)` counts, so
//! memory stays constant no matter how long the occurrence stream runs.

use crate::features::{mask_tail, packed_len, PackedObservation};
use crate::persist::{self, Reader};
use crate::traits::BlockPredictor;

/// Aggregate error statistics in the shape of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnsembleErrors {
    /// Fraction of whole-state predictions that would have been wrong with
    /// every predictor weighted equally.
    pub equal_weight_error_rate: f64,
    /// Fraction wrong when clairvoyantly using the single best predictor for
    /// each bit (chosen in hindsight over the full mistake history; the
    /// whole-state miss count is measured over the retained mistake window).
    pub hindsight_optimal_error_rate: f64,
    /// Fraction wrong using the actual regret-minimised weights.
    pub actual_error_rate: f64,
    /// Fraction wrong using the actual weights over only the most recent
    /// [`RECENT_WINDOW`] whole-state predictions — the windowed twin of
    /// [`actual_error_rate`](EnsembleErrors::actual_error_rate). Where the
    /// full-history rate answers "how good has this model ever been", the
    /// recent rate answers "how good is it *now*", which is what the
    /// runtime's dispatch economics need: a model that was hopeless for the
    /// first thousand occurrences but has locked on since deserves
    /// speculation again, and vice versa.
    pub recent_error_rate: f64,
    /// Total number of whole-state predictions scored.
    pub total_predictions: u64,
    /// Number of whole-state predictions the ensemble got wrong.
    pub incorrect_predictions: u64,
}

/// Number of most-recent whole-state predictions
/// [`EnsembleErrors::recent_error_rate`] is measured over. A power of two
/// sized to one shift-register word: the outcome history is a 64-bit mask
/// updated in O(1) per observation, unlike the mistake ring the hindsight
/// rate walks.
pub const RECENT_WINDOW: usize = 64;

/// A bounded ring of per-observation mistake masks: each slot holds one
/// packed mask per predictor (`predictor_count × packed_len` words). When
/// full, the oldest observation's masks are overwritten — Table-2 style
/// whole-state hindsight scoring then runs over the retained window.
#[derive(Debug, Clone)]
struct MistakeRing {
    capacity: usize,
    slot_words: usize,
    buf: Vec<u64>,
    len: usize,
    next: usize,
}

impl MistakeRing {
    fn new(capacity: usize, slot_words: usize) -> Self {
        MistakeRing { capacity: capacity.max(1), slot_words, buf: Vec::new(), len: 0, next: 0 }
    }

    fn push(&mut self, masks: &[u64]) {
        debug_assert_eq!(masks.len(), self.slot_words);
        if self.buf.len() < self.capacity * self.slot_words {
            self.buf.extend_from_slice(masks);
            self.len += 1;
        } else {
            let at = self.next * self.slot_words;
            self.buf[at..at + self.slot_words].copy_from_slice(masks);
        }
        self.next = (self.next + 1) % self.capacity;
    }

    fn len(&self) -> usize {
        self.len.min(self.capacity)
    }

    fn slots(&self) -> impl Iterator<Item = &[u64]> {
        self.buf.chunks_exact(self.slot_words.max(1))
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.len = 0;
        self.next = 0;
    }

    fn save(&self, out: &mut Vec<u8>) {
        persist::put_usize(out, self.capacity);
        persist::put_usize(out, self.slot_words);
        persist::put_usize(out, self.len);
        persist::put_usize(out, self.next);
        persist::put_u64_slice(out, &self.buf);
    }

    /// Restores a ring saved with the same capacity/slot geometry, rejecting
    /// bytes whose structural invariants (buffer length matches the retained
    /// slot count, write cursor inside the ring) do not hold.
    fn load(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        if reader.usize()? != self.capacity || reader.usize()? != self.slot_words {
            return None;
        }
        let len = reader.usize()?;
        let next = reader.usize()?;
        let buf = persist::u64_slice_bounded(reader, self.capacity * self.slot_words)?;
        if buf.len() != len.min(self.capacity) * self.slot_words || next >= self.capacity {
            return None;
        }
        self.len = len;
        self.next = next;
        self.buf = buf;
        Some(())
    }
}

/// The per-bit weighted ensemble over block predictors.
pub struct Ensemble {
    predictors: Vec<Box<dyn BlockPredictor>>,
    /// Flat weight matrix, bit-major: `weights[j * predictor_count + p]`.
    weights: Vec<f32>,
    beta: f32,
    bit_count: usize,
    /// Bounded history of packed mistake masks.
    mistakes: MistakeRing,
    /// Cumulative mistake counts, bit-major: `[j * predictor_count + p]`.
    /// Full-history (never evicted); drives hindsight predictor selection.
    cumulative_mistakes: Vec<u32>,
    /// Whole-state mistakes of the weighted ensemble.
    ensemble_mistakes: u64,
    /// Whole-state mistakes of the equal-weight vote.
    equal_weight_mistakes: u64,
    /// Shift register of the last [`RECENT_WINDOW`] whole-state outcomes
    /// (bit set = the weighted ensemble was wrong), newest in bit 0.
    recent_outcomes: u64,
    observations: u64,
    /// Scratch prediction blocks, predictor-major, reused across `observe`
    /// calls: `predictor_count × packed_len` rounded bits.
    scratch_bits: Vec<u64>,
    /// Scratch confidences, predictor-major: `predictor_count × bit_count`.
    scratch_confidence: Vec<f32>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("predictors", &self.predictor_names())
            .field("bits", &self.bit_count)
            .field("beta", &self.beta)
            .field("observations", &self.observations)
            .finish()
    }
}

impl Ensemble {
    /// Creates an ensemble over `bit_count` tracked bits whose mistake
    /// history retains at most `mistake_capacity` observations.
    ///
    /// # Panics
    /// Panics when there are no predictors, more than 16 predictors, or
    /// `beta` is not in `(0, 1)`.
    pub fn new(
        predictors: Vec<Box<dyn BlockPredictor>>,
        bit_count: usize,
        beta: f64,
        mistake_capacity: usize,
    ) -> Self {
        assert!(!predictors.is_empty(), "ensemble needs at least one predictor");
        assert!(predictors.len() <= 16, "at most 16 predictors are supported");
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
        let predictor_count = predictors.len();
        let packed = packed_len(bit_count);
        Ensemble {
            weights: vec![1.0; bit_count * predictor_count],
            beta: beta as f32,
            bit_count,
            mistakes: MistakeRing::new(mistake_capacity, predictor_count * packed),
            cumulative_mistakes: vec![0; bit_count * predictor_count],
            ensemble_mistakes: 0,
            equal_weight_mistakes: 0,
            recent_outcomes: 0,
            observations: 0,
            scratch_bits: vec![0; predictor_count * packed],
            scratch_confidence: vec![0.0; predictor_count * bit_count],
            predictors,
        }
    }

    /// Names of the member predictors, in weight-matrix row order.
    pub fn predictor_names(&self) -> Vec<&'static str> {
        self.predictors.iter().map(|p| p.name()).collect()
    }

    /// Number of tracked bits.
    pub fn bit_count(&self) -> usize {
        self.bit_count
    }

    /// Number of observed transitions.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// How many observations of mistake history are currently retained.
    pub fn mistake_window(&self) -> usize {
        self.mistakes.len()
    }

    /// Fills `confidence` with the per-bit probabilities for the whole next
    /// observation (the paper's Eq. 2 factors), combining every predictor by
    /// its current weight. Prediction blocks are computed into caller-local
    /// buffers, so this is `&self` and safe to call during rollouts.
    fn predict_into(&self, current: &PackedObservation, confidence: &mut [f32]) {
        let p_count = self.predictors.len();
        let packed = packed_len(self.bit_count);
        let mut block_bits = vec![0u64; packed];
        let mut block_confidence = vec![0.0f32; self.bit_count * p_count];
        for (p, predictor) in self.predictors.iter().enumerate() {
            block_bits.fill(0);
            predictor.predict_block(
                current,
                &mut block_bits,
                &mut block_confidence[p * self.bit_count..(p + 1) * self.bit_count],
            );
        }
        combine_weighted(&self.weights, &block_confidence, self.bit_count, p_count, confidence);
    }

    /// Per-bit probabilities for the whole next observation.
    pub fn predict_distribution(&self, current: &PackedObservation) -> Vec<f32> {
        let mut confidence = vec![0.0f32; self.bit_count];
        self.predict_into(current, &mut confidence);
        confidence
    }

    /// The maximum-likelihood prediction: every bit rounded to its most
    /// probable value (as a packed block), together with the joint
    /// log-probability under Eq. 2.
    pub fn predict_ml(&self, current: &PackedObservation) -> (Vec<u64>, f64) {
        let distribution = self.predict_distribution(current);
        let mut bits = vec![0u64; packed_len(self.bit_count)];
        let mut log_probability = 0.0f64;
        for (j, &p) in distribution.iter().enumerate() {
            let bit = p >= 0.5;
            if bit {
                bits[j / 64] |= 1u64 << (j % 64);
            }
            let bit_probability = if bit { p as f64 } else { 1.0 - p as f64 };
            log_probability += bit_probability.max(1e-12).ln();
        }
        (bits, log_probability)
    }

    /// Alternate predictions generated by flipping the most uncertain bits of
    /// the maximum-likelihood prediction (§4.4: "the second and third most
    /// likely predictions, and so on"). Returns up to `count` predictions in
    /// decreasing probability order, starting with the ML prediction.
    pub fn predict_top(&self, current: &PackedObservation, count: usize) -> Vec<(Vec<u64>, f64)> {
        let distribution = self.predict_distribution(current);
        let (ml_bits, ml_log_probability) = self.predict_ml(current);
        let mut results = vec![(ml_bits.clone(), ml_log_probability)];
        if count <= 1 || distribution.is_empty() {
            results.truncate(count.max(1));
            return results;
        }
        // Rank bits by how uncertain they are (probability closest to 0.5).
        let mut by_uncertainty: Vec<usize> = (0..distribution.len()).collect();
        by_uncertainty.sort_by(|&a, &b| {
            (distribution[a] - 0.5)
                .abs()
                .partial_cmp(&(distribution[b] - 0.5).abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &j in by_uncertainty.iter().take(count.saturating_sub(1)) {
            let mut flipped = ml_bits.clone();
            flipped[j / 64] ^= 1u64 << (j % 64);
            let p = distribution[j] as f64;
            let was_set = (ml_bits[j / 64] >> (j % 64)) & 1 == 1;
            let old = if was_set { p } else { 1.0 - p };
            let new = 1.0 - old;
            let log_probability = ml_log_probability - old.max(1e-12).ln() + new.max(1e-12).ln();
            results.push((flipped, log_probability));
        }
        results
    }

    /// Observes one transition: scores every predictor (and the ensemble
    /// itself) on the realised `next` observation via packed mistake masks,
    /// applies the RWMA multiplicative update to exactly the mistaken
    /// `(bit, predictor)` weights, and then lets every predictor train on the
    /// new example.
    pub fn observe(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        let p_count = self.predictors.len();
        let bit_count = self.bit_count.min(next.bit_count());
        let packed = packed_len(self.bit_count);
        let scored_words = packed_len(bit_count);

        // 1. Every predictor fills its block prediction (rounded bits +
        //    confidence) before anything trains or reweights.
        for (p, predictor) in self.predictors.iter().enumerate() {
            let bits = &mut self.scratch_bits[p * packed..(p + 1) * packed];
            bits.fill(0);
            predictor.predict_block(
                prev,
                bits,
                &mut self.scratch_confidence[p * self.bit_count..(p + 1) * self.bit_count],
            );
        }

        // 2. Whole-state scoring of the weighted and equal-weight votes.
        let mut ensemble_wrong = false;
        let mut equal_weight_wrong = false;
        for j in 0..bit_count {
            let actual = next.bit(j);
            let mut numerator = 0.0f32;
            let mut denominator = 0.0f32;
            let mut equal = 0.0f32;
            for p in 0..p_count {
                let probability = self.scratch_confidence[p * self.bit_count + j].clamp(0.0, 1.0);
                let weight = self.weights[j * p_count + p];
                numerator += weight * probability;
                denominator += weight;
                equal += probability;
            }
            let vote = if denominator <= 0.0 { 0.5 } else { numerator / denominator };
            if (vote >= 0.5) != actual {
                ensemble_wrong = true;
            }
            if (equal / p_count as f32 >= 0.5) != actual {
                equal_weight_wrong = true;
            }
        }

        // 3. Mistake masks: XOR each packed rounded prediction against the
        //    realised bits, then walk the set bits to apply the
        //    multiplicative update and bump the cumulative counts.
        for p in 0..p_count {
            let row = &mut self.scratch_bits[p * packed..(p + 1) * packed];
            for (w, mask) in row.iter_mut().enumerate().take(scored_words) {
                *mask ^= next.packed()[w];
            }
            mask_tail(&mut row[..scored_words], bit_count);
            for word in row[scored_words..].iter_mut() {
                *word = 0;
            }
            for (w, &mask) in row.iter().enumerate().take(scored_words) {
                let mut remaining = mask;
                while remaining != 0 {
                    let j = w * 64 + remaining.trailing_zeros() as usize;
                    self.weights[j * p_count + p] *= self.beta;
                    self.cumulative_mistakes[j * p_count + p] += 1;
                    remaining &= remaining - 1;
                }
            }
        }
        // Keep weights from underflowing to zero for every predictor. Only
        // bits that just took a multiplicative hit can newly underflow, so
        // the scan walks the union of the mistake masks.
        for w in 0..scored_words {
            let mut union = 0u64;
            for p in 0..p_count {
                union |= self.scratch_bits[p * packed + w];
            }
            let mut remaining = union;
            while remaining != 0 {
                let j = w * 64 + remaining.trailing_zeros() as usize;
                let row = &mut self.weights[j * p_count..(j + 1) * p_count];
                let max = row.iter().cloned().fold(0.0f32, f32::max);
                if max < 1e-9 {
                    for weight in row {
                        *weight /= max.max(1e-30);
                    }
                }
                remaining &= remaining - 1;
            }
        }

        self.mistakes.push(&self.scratch_bits);
        self.observations += 1;
        self.recent_outcomes = (self.recent_outcomes << 1) | u64::from(ensemble_wrong);
        if ensemble_wrong {
            self.ensemble_mistakes += 1;
        }
        if equal_weight_wrong {
            self.equal_weight_mistakes += 1;
        }

        // 4. Finally train the member predictors on the new example.
        for predictor in &mut self.predictors {
            predictor.observe_transition(prev, next);
        }
    }

    /// The current weight matrix: `weights[bit][predictor]`, normalised per
    /// bit so each row sums to 1 (the shading of the paper's Figure 3).
    pub fn weight_matrix(&self) -> Vec<Vec<f64>> {
        let p_count = self.predictors.len();
        self.weights
            .chunks_exact(p_count)
            .map(|row| {
                let total: f64 = row.iter().map(|&w| w as f64).sum();
                if total <= 0.0 {
                    vec![1.0 / p_count as f64; p_count]
                } else {
                    row.iter().map(|&w| w as f64 / total).collect()
                }
            })
            .collect()
    }

    /// Fraction of the last [`RECENT_WINDOW`] whole-state predictions the
    /// weighted ensemble got wrong (over however many exist while the
    /// history is still shorter than the window). O(1) — one popcount over
    /// the outcome shift register — so it is safe to consult on the
    /// runtime's per-occurrence hot path, unlike [`errors`](Ensemble::errors)
    /// which walks the whole mistake ring.
    pub fn recent_error_rate(&self) -> f64 {
        let window = (self.observations).min(RECENT_WINDOW as u64);
        if window == 0 {
            return 0.0;
        }
        let mask = if window == 64 { u64::MAX } else { (1u64 << window) - 1 };
        (self.recent_outcomes & mask).count_ones() as f64 / window as f64
    }

    /// Error statistics in the shape of Table 2. The hindsight-optimal
    /// per-bit predictor assignment uses the full-history cumulative mistake
    /// counts; its whole-state miss rate is measured over the retained
    /// mistake window (the ring holds the most recent
    /// `mistake_capacity` observations).
    pub fn errors(&self) -> EnsembleErrors {
        let total = self.observations;
        if total == 0 {
            return EnsembleErrors::default();
        }
        let p_count = self.predictors.len();
        let packed = packed_len(self.bit_count);
        // Per-predictor selection masks: bit j is set in mask p when p is the
        // hindsight-best predictor for bit j.
        let mut selection = vec![0u64; p_count * packed];
        for j in 0..self.bit_count {
            let row = &self.cumulative_mistakes[j * p_count..(j + 1) * p_count];
            let best = row
                .iter()
                .enumerate()
                .min_by_key(|(_, count)| **count)
                .map(|(p, _)| p)
                .unwrap_or(0);
            selection[best * packed + j / 64] |= 1u64 << (j % 64);
        }
        // An observation is a hindsight miss when the best-per-bit assignment
        // still got at least one bit wrong: any predictor's mistake mask
        // intersects its selection mask.
        let mut hindsight_mistakes = 0u64;
        for slot in self.mistakes.slots() {
            let wrong = (0..p_count).any(|p| {
                slot[p * packed..(p + 1) * packed]
                    .iter()
                    .zip(&selection[p * packed..(p + 1) * packed])
                    .any(|(mask, sel)| mask & sel != 0)
            });
            if wrong {
                hindsight_mistakes += 1;
            }
        }
        let window = self.mistakes.len().max(1) as f64;
        EnsembleErrors {
            equal_weight_error_rate: self.equal_weight_mistakes as f64 / total as f64,
            hindsight_optimal_error_rate: hindsight_mistakes as f64 / window,
            actual_error_rate: self.ensemble_mistakes as f64 / total as f64,
            recent_error_rate: self.recent_error_rate(),
            total_predictions: total,
            incorrect_predictions: self.ensemble_mistakes,
        }
    }

    /// Appends the full learned state — member predictor states, the RWMA
    /// weight matrix, mistake history and scoring counters — to `out` using
    /// the [`persist`](crate::persist) vocabulary. Restoring with
    /// [`load_state`](Ensemble::load_state) into an ensemble built from the
    /// same configuration reproduces bit-identical predictions.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_usize(out, self.bit_count);
        persist::put_usize(out, self.predictors.len());
        for predictor in &self.predictors {
            persist::put_str(out, predictor.name());
            let mut blob = Vec::new();
            predictor.save_state(&mut blob);
            persist::put_bytes(out, &blob);
        }
        persist::put_f32_slice(out, &self.weights);
        self.mistakes.save(out);
        persist::put_u32_slice(out, &self.cumulative_mistakes);
        persist::put_u64(out, self.ensemble_mistakes);
        persist::put_u64(out, self.equal_weight_mistakes);
        persist::put_u64(out, self.recent_outcomes);
        persist::put_u64(out, self.observations);
    }

    /// Restores state written by [`save_state`](Ensemble::save_state) into an
    /// ensemble constructed with the same configuration (same predictor
    /// complement, bit count, beta and mistake capacity). Returns `None` —
    /// leaving the ensemble fit only for [`reset`](Ensemble::reset) and
    /// re-warming — when the bytes describe a different shape or fail any
    /// predictor's own validation.
    pub fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        if reader.usize()? != self.bit_count || reader.usize()? != self.predictors.len() {
            return None;
        }
        for predictor in &mut self.predictors {
            if reader.str()? != predictor.name() {
                return None;
            }
            let blob = reader.bytes()?;
            let mut blob_reader = Reader::new(blob);
            predictor.load_state(&mut blob_reader)?;
            if !blob_reader.is_empty() {
                return None;
            }
        }
        self.weights = persist::f32_slice_exact(reader, self.weights.len())?;
        self.mistakes.load(reader)?;
        self.cumulative_mistakes =
            persist::u32_slice_exact(reader, self.cumulative_mistakes.len())?;
        self.ensemble_mistakes = reader.u64()?;
        self.equal_weight_mistakes = reader.u64()?;
        self.recent_outcomes = reader.u64()?;
        self.observations = reader.u64()?;
        Some(())
    }

    /// Resets every predictor and all weights (used when the recognizer
    /// abandons the current RIP).
    pub fn reset(&mut self) {
        for predictor in &mut self.predictors {
            predictor.reset();
        }
        self.weights.fill(1.0);
        self.mistakes.clear();
        self.cumulative_mistakes.fill(0);
        self.ensemble_mistakes = 0;
        self.equal_weight_mistakes = 0;
        self.recent_outcomes = 0;
        self.observations = 0;
    }
}

/// The weighted vote shared by [`Ensemble::predict_into`] and the retained
/// reference implementation: `confidence[j] = Σₚ w[j,p]·probs[p,j] / Σₚ
/// w[j,p]` with per-term clamping, accumulated in ascending predictor order.
pub(crate) fn combine_weighted(
    weights: &[f32],
    block_confidence: &[f32],
    bit_count: usize,
    p_count: usize,
    confidence: &mut [f32],
) {
    for (j, slot) in confidence.iter_mut().enumerate().take(bit_count) {
        let mut numerator = 0.0f32;
        let mut denominator = 0.0f32;
        for p in 0..p_count {
            let probability = block_confidence[p * bit_count + j].clamp(0.0, 1.0);
            let weight = weights[j * p_count + p];
            numerator += weight * probability;
            denominator += weight;
        }
        *slot = if denominator <= 0.0 { 0.5 } else { numerator / denominator };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ExcitationSchema;
    use crate::traits::default_predictors;

    /// A deliberately terrible predictor: always predicts the complement of
    /// the weatherman, to give the ensemble something to down-weight.
    struct Contrarian;
    impl BlockPredictor for Contrarian {
        fn name(&self) -> &'static str {
            "contrarian"
        }
        fn observe_transition(&mut self, _prev: &PackedObservation, _next: &PackedObservation) {}
        fn predict_block(
            &self,
            current: &PackedObservation,
            bits: &mut [u64],
            confidence: &mut [f32],
        ) {
            for (j, slot) in confidence.iter_mut().enumerate().take(current.bit_count()) {
                *slot = if current.bit(j) { 0.05 } else { 0.95 };
            }
            crate::features::pack_probabilities(&confidence[..current.bit_count()], bits);
        }
        fn reset(&mut self) {}
    }

    fn constant_schema(bits: usize) -> ExcitationSchema {
        ExcitationSchema::new(1, (0..bits).map(|b| (0, b as u8)).collect())
    }

    fn obs_of(word: u32, bits: usize) -> PackedObservation {
        let unpacked: Vec<bool> = (0..bits).map(|b| (word >> b) & 1 == 1).collect();
        PackedObservation::from_bits(&unpacked, vec![word])
    }

    fn unpack(bits: &[u64], count: usize) -> Vec<bool> {
        (0..count).map(|j| (bits[j / 64] >> (j % 64)) & 1 == 1).collect()
    }

    #[test]
    fn downweights_the_bad_predictor() {
        let schema = constant_schema(4);
        let mut predictors = default_predictors(&schema);
        predictors.push(Box::new(Contrarian));
        let contrarian_index = predictors.len() - 1;
        let mut ensemble = Ensemble::new(predictors, 4, 0.5, 1024);
        // A constant sequence: weatherman and mean are perfect, contrarian is
        // always wrong.
        let value = obs_of(0b1010, 4);
        for _ in 0..20 {
            ensemble.observe(&value, &value);
        }
        let matrix = ensemble.weight_matrix();
        for row in &matrix {
            assert!(row[contrarian_index] < 0.05, "contrarian still has weight {row:?}");
        }
        // And the ensemble's own predictions are correct.
        let (bits, _) = ensemble.predict_ml(&value);
        assert_eq!(unpack(&bits, 4), value.bits());
    }

    #[test]
    fn errors_track_equal_weight_vs_actual() {
        let schema = constant_schema(4);
        let mut predictors = default_predictors(&schema);
        // Enough contrarians to outvote the good predictors under equal
        // weighting (their confident wrong probabilities dominate the mean).
        for _ in 0..6 {
            predictors.push(Box::new(Contrarian));
        }
        let mut ensemble = Ensemble::new(predictors, 4, 0.5, 1024);
        let value = obs_of(0b0110, 4);
        for _ in 0..40 {
            ensemble.observe(&value, &value);
        }
        let errors = ensemble.errors();
        assert_eq!(errors.total_predictions, 40);
        // Equal weighting keeps being wrong; the weighted ensemble recovers.
        assert!(errors.equal_weight_error_rate > 0.6, "{errors:?}");
        assert!(errors.actual_error_rate < 0.35, "{errors:?}");
        assert!(errors.hindsight_optimal_error_rate <= errors.actual_error_rate + 1e-9);
    }

    #[test]
    fn regret_is_bounded_relative_to_best_predictor() {
        // A toggling bit: weatherman is always wrong, logistic learns it,
        // mean hovers at 0.5. The ensemble must end up close to hindsight
        // optimal, which is the RWMA guarantee Table 2 relies on.
        let schema = constant_schema(1);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 1, 0.5, 1024);
        let mut value = false;
        for _ in 0..300 {
            let prev = PackedObservation::from_bits(&[value], vec![value as u32]);
            value = !value;
            let next = PackedObservation::from_bits(&[value], vec![value as u32]);
            ensemble.observe(&prev, &next);
        }
        let errors = ensemble.errors();
        assert!(
            errors.actual_error_rate < errors.hindsight_optimal_error_rate + 0.15,
            "actual {:.3} vs hindsight {:.3}",
            errors.actual_error_rate,
            errors.hindsight_optimal_error_rate
        );
    }

    #[test]
    fn mistake_history_is_bounded() {
        let schema = constant_schema(2);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 2, 0.5, 8);
        let value = obs_of(0b01, 2);
        for _ in 0..100 {
            ensemble.observe(&value, &value);
        }
        assert_eq!(ensemble.observations(), 100);
        assert_eq!(ensemble.mistake_window(), 8);
        // Error statistics still work over the bounded window.
        let errors = ensemble.errors();
        assert_eq!(errors.total_predictions, 100);
        assert!(errors.hindsight_optimal_error_rate <= 1.0);
    }

    #[test]
    fn predict_top_orders_by_probability() {
        let schema = constant_schema(4);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 4, 0.5, 1024);
        let value = obs_of(0b1100, 4);
        for _ in 0..10 {
            ensemble.observe(&value, &value);
        }
        let top = ensemble.predict_top(&value, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1);
        assert!(top[0].1 >= top[2].1);
        assert_eq!(unpack(&top[0].0, 4), value.bits());
        // Alternates differ from the ML prediction in exactly one bit.
        let differences = (top[1].0[0] ^ top[0].0[0]).count_ones();
        assert_eq!(differences, 1);
    }

    #[test]
    fn reset_clears_history() {
        let schema = constant_schema(2);
        let mut ensemble = Ensemble::new(default_predictors(&schema), 2, 0.5, 1024);
        let value = obs_of(0b01, 2);
        ensemble.observe(&value, &value);
        assert_eq!(ensemble.observations(), 1);
        ensemble.reset();
        assert_eq!(ensemble.observations(), 0);
        assert_eq!(ensemble.errors(), EnsembleErrors::default());
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        let schema = constant_schema(1);
        Ensemble::new(default_predictors(&schema), 1, 1.5, 1024);
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let schema = constant_schema(4);
        let mut trained = Ensemble::new(default_predictors(&schema), 4, 0.5, 8);
        // A toggling sequence exercises every predictor, the mistake ring
        // (past its 8-slot capacity) and all whole-state counters.
        for i in 0u32..40 {
            trained.observe(&obs_of(i % 3, 4), &obs_of((i + 1) % 3, 4));
        }
        let mut bytes = Vec::new();
        trained.save_state(&mut bytes);

        let mut restored = Ensemble::new(default_predictors(&schema), 4, 0.5, 8);
        let mut reader = crate::persist::Reader::new(&bytes);
        restored.load_state(&mut reader).expect("roundtrip must restore");
        assert!(reader.is_empty(), "restore must consume the entire blob");

        assert_eq!(restored.observations(), trained.observations());
        assert_eq!(restored.mistake_window(), trained.mistake_window());
        assert_eq!(restored.weight_matrix(), trained.weight_matrix());
        assert_eq!(restored.errors(), trained.errors());
        let probe = obs_of(2, 4);
        assert_eq!(restored.predict_ml(&probe), trained.predict_ml(&probe));
        assert_eq!(restored.predict_distribution(&probe), trained.predict_distribution(&probe));

        // And the restored ensemble keeps learning identically.
        trained.observe(&obs_of(2, 4), &obs_of(0, 4));
        restored.observe(&obs_of(2, 4), &obs_of(0, 4));
        assert_eq!(restored.predict_ml(&probe), trained.predict_ml(&probe));
        assert_eq!(restored.errors(), trained.errors());
    }

    #[test]
    fn load_rejects_mismatched_shape_and_damage() {
        let schema = constant_schema(4);
        let mut trained = Ensemble::new(default_predictors(&schema), 4, 0.5, 8);
        for i in 0u32..10 {
            trained.observe(&obs_of(i, 4), &obs_of(i + 1, 4));
        }
        let mut bytes = Vec::new();
        trained.save_state(&mut bytes);

        // Wrong bit count.
        let mut narrow = Ensemble::new(default_predictors(&constant_schema(2)), 2, 0.5, 8);
        assert!(narrow.load_state(&mut crate::persist::Reader::new(&bytes)).is_none());

        // Different predictor complement (extra contrarian changes names).
        let mut predictors = default_predictors(&schema);
        predictors.push(Box::new(Contrarian));
        let mut other = Ensemble::new(predictors, 4, 0.5, 8);
        assert!(other.load_state(&mut crate::persist::Reader::new(&bytes)).is_none());

        // Truncation anywhere must be rejected, never panic.
        for cut in 0..bytes.len() {
            let mut fresh = Ensemble::new(default_predictors(&schema), 4, 0.5, 8);
            assert!(
                fresh.load_state(&mut crate::persist::Reader::new(&bytes[..cut])).is_none(),
                "truncation at {cut} must not restore"
            );
        }
    }
}
