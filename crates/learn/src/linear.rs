//! On-line linear (polynomial) regression over 32-bit words (§4.4.2).
//!
//! Where logistic regression treats every bit independently, this predictor
//! works at the feature level the paper describes for integer-valued
//! quantities such as loop induction variables and bump-allocated pointers:
//! it interprets each excited 32-bit word as a signed integer `φᵢ(x)` and
//! fits `φ̂ᵢ(x') = w₀ + Σₖ wₖ·φᵢ(x)ᵏ`.
//!
//! The model is trained on-line after every observation. We use the
//! recursive-least-squares form of on-line linear regression (accumulated
//! normal equations with exponential forgetting) rather than plain SGD: for
//! exactly affine sequences — `i, i+1, i+2, …`, `ptr, ptr+56, ptr+112, …` —
//! it converges to the *bit-exact* relationship after a handful of
//! observations, which is what the trajectory cache needs. The forgetting
//! factor plays the role of the learning rate: the paper runs several
//! instances with different hyper-parameters and lets the ensemble choose.
//!
//! The block port stores the per-word moment matrices and coefficients in
//! flat word-major arrays and trains every word in one call. The moments
//! deliberately stay `f64`: the normal equations of a near-collinear affine
//! sequence are ill-conditioned, and solving them in `f32` would lose the
//! bit-exact convergence that makes this predictor useful. Only the
//! bit-level confidences the ensemble consumes are `f32`.

use crate::features::{mask_tail, ExcitationSchema, PackedObservation};
use crate::persist::{self, Reader};
use crate::traits::BlockPredictor;

/// Normalisation applied to word values before regression, keeping the
/// accumulated moments well-conditioned for typical addresses and counters.
const SCALE: f64 = 65536.0;

/// Per-word recursive least-squares polynomial regression over flat,
/// word-major coefficient arrays.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    schema: ExcitationSchema,
    /// Polynomial degree `K` (1 = affine).
    degree: usize,
    /// Exponential forgetting applied to the moment matrices per observation.
    adaptivity: f64,
    /// Accumulated `Xᵀ X` per word: `word_count × dim × dim`, row major.
    xtx: Vec<f64>,
    /// Accumulated `Xᵀ y` per word: `word_count × dim`.
    xty: Vec<f64>,
    /// Solved coefficients per word: `word_count × dim` (refreshed after
    /// every observation).
    coefficients: Vec<f64>,
    /// Exponentially weighted mean absolute prediction error per word, in
    /// word units.
    residual: Vec<f64>,
    /// Observed transitions (shared by every word; all words train together).
    observations: u64,
}

fn powers_into(value: f64, degree: usize, x: &mut [f64]) {
    let mut acc = 1.0;
    for slot in x.iter_mut().take(degree + 1) {
        *slot = acc;
        acc *= value;
    }
}

/// Solves `A·w = b` for a small symmetric positive-definite system using
/// Gaussian elimination with partial pivoting. Returns `None` when the system
/// is singular (e.g. a constant word, which the ridge term normally prevents).
fn solve(a: &[f64], b: &[f64], dim: usize) -> Option<Vec<f64>> {
    let mut m = vec![0.0f64; dim * (dim + 1)];
    for row in 0..dim {
        for col in 0..dim {
            m[row * (dim + 1) + col] = a[row * dim + col];
        }
        m[row * (dim + 1) + dim] = b[row];
    }
    for col in 0..dim {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..dim {
            if m[row * (dim + 1) + col].abs() > m[pivot * (dim + 1) + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * (dim + 1) + col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for k in 0..=dim {
                m.swap(col * (dim + 1) + k, pivot * (dim + 1) + k);
            }
        }
        let diag = m[col * (dim + 1) + col];
        for row in 0..dim {
            if row == col {
                continue;
            }
            let factor = m[row * (dim + 1) + col] / diag;
            for k in col..=dim {
                m[row * (dim + 1) + k] -= factor * m[col * (dim + 1) + k];
            }
        }
    }
    Some((0..dim).map(|row| m[row * (dim + 1) + dim] / m[row * (dim + 1) + row]).collect())
}

impl LinearRegression {
    /// Creates a linear-regression predictor for the given excitation schema.
    ///
    /// `adaptivity` in `(0, 1)` controls how quickly old observations are
    /// forgotten (larger adapts faster but is noisier).
    ///
    /// # Panics
    /// Panics when `adaptivity` is outside `(0, 1)`.
    pub fn new(schema: ExcitationSchema, adaptivity: f64) -> Self {
        assert!(adaptivity > 0.0 && adaptivity < 1.0, "adaptivity must be in (0, 1)");
        let mut model = LinearRegression {
            schema,
            degree: 1,
            adaptivity,
            xtx: Vec::new(),
            xty: Vec::new(),
            coefficients: Vec::new(),
            residual: Vec::new(),
            observations: 0,
        };
        model.allocate();
        model
    }

    /// Sets the polynomial degree `K` (1 = affine, the default).
    ///
    /// # Panics
    /// Panics when `degree` is 0 or greater than 4.
    pub fn with_degree(mut self, degree: usize) -> Self {
        assert!((1..=4).contains(&degree), "degree must be between 1 and 4");
        self.degree = degree;
        self.allocate();
        self
    }

    fn allocate(&mut self) {
        let words = self.schema.word_count;
        let dim = self.degree + 1;
        self.xtx = vec![0.0; words * dim * dim];
        self.xty = vec![0.0; words * dim];
        self.coefficients = vec![0.0; words * dim];
        self.residual = vec![f64::INFINITY; words];
        self.observations = 0;
    }

    /// Predicted value of tracked word `w` given the current observation, or
    /// `None` before the model has converged to a usable fit.
    pub fn predict_word(&self, current: &PackedObservation, w: usize) -> Option<i64> {
        if self.observations < 2 || w >= self.schema.word_count {
            return None;
        }
        let dim = self.degree + 1;
        let mut x = [0.0f64; 5];
        powers_into(*current.words().get(w)? as i32 as f64 / SCALE, self.degree, &mut x);
        let coefficients = &self.coefficients[w * dim..(w + 1) * dim];
        let y: f64 = coefficients.iter().zip(x.iter()).map(|(c, xi)| c * xi).sum();
        Some((y * SCALE).round() as i64)
    }

    /// Exponentially weighted mean absolute error of word `w`, in word units.
    pub fn residual(&self, w: usize) -> f64 {
        self.residual.get(w).copied().unwrap_or(f64::INFINITY)
    }
}

impl BlockPredictor for LinearRegression {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn observe_transition(&mut self, prev: &PackedObservation, next: &PackedObservation) {
        if prev.words().len() != self.schema.word_count
            || next.words().len() != self.schema.word_count
        {
            return;
        }
        let dim = self.degree + 1;
        let keep = 1.0 - self.adaptivity;
        let mut x = [0.0f64; 5];
        for w in 0..self.schema.word_count {
            // Residual of the *previous* fit, before folding in this sample.
            if let Some(p) = self.predict_word(prev, w) {
                let err = (p - next.words()[w] as i32 as i64).abs() as f64;
                self.residual[w] = if self.residual[w].is_finite() {
                    0.9 * self.residual[w] + 0.1 * err
                } else {
                    err
                };
            }
            powers_into(prev.words()[w] as i32 as f64 / SCALE, self.degree, &mut x);
            let y = next.words()[w] as i32 as f64 / SCALE;
            let xtx = &mut self.xtx[w * dim * dim..(w + 1) * dim * dim];
            let xty = &mut self.xty[w * dim..(w + 1) * dim];
            for v in xtx.iter_mut() {
                *v *= keep;
            }
            for v in xty.iter_mut() {
                *v *= keep;
            }
            for row in 0..dim {
                for col in 0..dim {
                    xtx[row * dim + col] += x[row] * x[col];
                }
                xty[row] += x[row] * y;
            }
            // Ridge term keeps the system well-posed for constant words. It
            // is scaled relative to each diagonal entry so it never biases
            // the fit of well-conditioned (e.g. exactly affine) sequences.
            let mut ridge = xtx.to_vec();
            for d in 0..dim {
                let relative = ridge[d * dim + d].abs() * 1e-9;
                ridge[d * dim + d] += relative.max(1e-12);
            }
            if let Some(solved) = solve(&ridge, xty, dim) {
                self.coefficients[w * dim..(w + 1) * dim].copy_from_slice(&solved);
            }
        }
        self.observations += 1;
    }

    fn predict_block(&self, current: &PackedObservation, bits: &mut [u64], confidence: &mut [f32]) {
        // One word-level prediction per tracked word, then fan the word's bit
        // values and confidence out to the bits homed in it.
        for word in bits.iter_mut() {
            *word = 0;
        }
        let words = self.schema.word_count.min(current.words().len());
        let mut predicted: Vec<Option<(i64, f32)>> = Vec::with_capacity(words);
        for w in 0..words {
            predicted.push(self.predict_word(current, w).map(|value| {
                // Confidence tracks how well the word model has been doing.
                let residual = self.residual(w);
                let confidence = if residual < 0.5 {
                    0.97
                } else if residual < 4.0 {
                    0.75
                } else {
                    0.55
                };
                (value, confidence)
            }));
        }
        for (j, &(word, offset)) in self.schema.bit_homes.iter().enumerate() {
            let p = match predicted.get(word).copied().flatten() {
                Some((value, confidence)) => {
                    if (value as u64 >> offset) & 1 == 1 {
                        confidence
                    } else {
                        1.0 - confidence
                    }
                }
                None => 0.5,
            };
            confidence[j] = p;
            if p >= 0.5 {
                bits[j / 64] |= 1u64 << (j % 64);
            }
        }
        mask_tail(bits, self.schema.bit_count);
    }

    fn reset(&mut self) {
        self.allocate();
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        persist::put_usize(out, self.schema.word_count);
        persist::put_usize(out, self.degree);
        persist::put_u64(out, self.observations);
        persist::put_f64_slice(out, &self.xtx);
        persist::put_f64_slice(out, &self.xty);
        persist::put_f64_slice(out, &self.coefficients);
        persist::put_f64_slice(out, &self.residual);
    }

    fn load_state(&mut self, reader: &mut Reader<'_>) -> Option<()> {
        if reader.usize()? != self.schema.word_count || reader.usize()? != self.degree {
            return None;
        }
        let observations = reader.u64()?;
        let xtx = persist::f64_slice_exact(reader, self.xtx.len())?;
        let xty = persist::f64_slice_exact(reader, self.xty.len())?;
        let coefficients = persist::f64_slice_exact(reader, self.coefficients.len())?;
        let residual = persist::f64_slice_exact(reader, self.residual.len())?;
        self.observations = observations;
        self.xtx = xtx;
        self.xty = xty;
        self.coefficients = coefficients;
        self.residual = residual;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::packed_len;

    fn schema(words: usize) -> ExcitationSchema {
        let mut homes = Vec::new();
        for w in 0..words {
            for bit in 0..32 {
                homes.push((w, bit as u8));
            }
        }
        ExcitationSchema::new(words, homes)
    }

    fn obs_words(words: &[u32]) -> PackedObservation {
        let mut bits = Vec::new();
        for &w in words {
            for bit in 0..32 {
                bits.push((w >> bit) & 1 == 1);
            }
        }
        PackedObservation::from_bits(&bits, words.to_vec())
    }

    fn predict_probs(p: &LinearRegression, x: &PackedObservation) -> Vec<f32> {
        let mut bits = vec![0u64; packed_len(x.bit_count())];
        let mut confidence = vec![0.0f32; x.bit_count()];
        p.predict_block(x, &mut bits, &mut confidence);
        confidence
    }

    #[test]
    fn learns_an_induction_variable_exactly() {
        let mut p = LinearRegression::new(schema(1), 0.1);
        for i in 0u32..30 {
            p.observe_transition(&obs_words(&[i]), &obs_words(&[i + 1]));
        }
        assert_eq!(p.predict_word(&obs_words(&[30]), 0), Some(31));
        assert_eq!(p.predict_word(&obs_words(&[1000]), 0), Some(1001));
        assert!(p.residual(0) < 0.5);
    }

    #[test]
    fn learns_a_pointer_stride() {
        // Bump-allocated node addresses with a 132-byte stride, as in Ising.
        let mut p = LinearRegression::new(schema(1), 0.1);
        let base = 0x1_0000u32;
        for i in 0u32..40 {
            p.observe_transition(
                &obs_words(&[base + i * 132]),
                &obs_words(&[base + (i + 1) * 132]),
            );
        }
        assert_eq!(
            p.predict_word(&obs_words(&[base + 40 * 132]), 0),
            Some((base + 41 * 132) as i64)
        );
    }

    #[test]
    fn learns_a_constant_word() {
        let mut p = LinearRegression::new(schema(1), 0.1);
        for _ in 0..20 {
            p.observe_transition(&obs_words(&[7777]), &obs_words(&[7777]));
        }
        assert_eq!(p.predict_word(&obs_words(&[7777]), 0), Some(7777));
    }

    #[test]
    fn bit_predictions_follow_the_word_prediction() {
        let mut p = LinearRegression::new(schema(1), 0.1);
        for i in 0u32..40 {
            p.observe_transition(&obs_words(&[i]), &obs_words(&[i + 1]));
        }
        // From 7 (0b0111) the next value is 8 (0b1000).
        let current = obs_words(&[7]);
        let probs = predict_probs(&p, &current);
        assert!(probs[3] > 0.9); // bit 3 becomes 1
        assert!(probs[0] < 0.1); // bit 0 becomes 0
        assert!(probs[1] < 0.1);
    }

    #[test]
    fn negative_values_are_handled() {
        // A counter counting down through zero.
        let mut p = LinearRegression::new(schema(1), 0.1);
        for i in 0i32..30 {
            let a = (5 - i) as u32;
            let b = (4 - i) as u32;
            p.observe_transition(&obs_words(&[a]), &obs_words(&[b]));
        }
        assert_eq!(p.predict_word(&obs_words(&[(-30i32) as u32]), 0), Some(-31));
    }

    #[test]
    fn unseen_model_is_uncertain_and_reset_forgets() {
        let mut p = LinearRegression::new(schema(1), 0.1);
        assert_eq!(predict_probs(&p, &obs_words(&[3]))[0], 0.5);
        for i in 0u32..20 {
            p.observe_transition(&obs_words(&[i]), &obs_words(&[i + 1]));
        }
        assert!(p.predict_word(&obs_words(&[5]), 0).is_some());
        p.reset();
        assert!(p.predict_word(&obs_words(&[5]), 0).is_none());
    }

    #[test]
    fn quadratic_relationship_with_degree_two() {
        // next = current²/SCALE-ish relationships are rare in programs, but the
        // degree-2 model should at least fit a parabola on normalised inputs.
        let mut p = LinearRegression::new(schema(1), 0.05).with_degree(2);
        for i in 0u32..60 {
            let x = i * 100;
            let y = i * i;
            p.observe_transition(&obs_words(&[x]), &obs_words(&[y]));
        }
        let predicted = p.predict_word(&obs_words(&[50 * 100]), 0).unwrap();
        assert!((predicted - 2500).abs() <= 25, "predicted {predicted}");
    }

    #[test]
    #[should_panic(expected = "adaptivity")]
    fn rejects_bad_adaptivity() {
        LinearRegression::new(schema(1), 1.5);
    }
}
