//! The `weatherman` predictor: tomorrow will be like today (§4.4.2).
//!
//! "The weatherman predictor predicts that the next value of each bit will be
//! its current value." It is the perfect predictor for the large class of
//! state bytes that change *rarely* between recognized-IP occurrences — the
//! minimum-energy tracker in the Ising kernel, saturated loop bounds, flags
//! that settle — which is exactly where Figure 3 shows it earning weight.
//!
//! The block port is the cheapest predictor by far: the packed rounded
//! prediction is a `memcpy` of the current packed bits.

use crate::features::PackedObservation;
use crate::traits::BlockPredictor;

/// Predicts that each bit keeps its current value.
#[derive(Debug, Clone, Default)]
pub struct Weatherman {
    /// Confidence assigned to the persistence prediction.
    confidence: f32,
}

impl Weatherman {
    /// Creates a weatherman predictor with the default confidence (0.9).
    pub fn new() -> Self {
        Weatherman { confidence: 0.9 }
    }

    /// Creates a weatherman with an explicit confidence in `(0.5, 1.0]`.
    ///
    /// # Panics
    /// Panics when `confidence` is not greater than 0.5 and at most 1.0.
    pub fn with_confidence(confidence: f32) -> Self {
        assert!(confidence > 0.5 && confidence <= 1.0, "confidence must be in (0.5, 1.0]");
        Weatherman { confidence }
    }
}

impl BlockPredictor for Weatherman {
    fn name(&self) -> &'static str {
        "weatherman"
    }

    fn observe_transition(&mut self, _prev: &PackedObservation, _next: &PackedObservation) {
        // Stateless: persistence needs no training.
    }

    fn predict_block(&self, current: &PackedObservation, bits: &mut [u64], confidence: &mut [f32]) {
        // A caller sized for fewer bits than the observation (an ensemble
        // mid-arity-change; the other predictors tolerate it too) gets the
        // prefix rather than a slice panic.
        let words = bits.len().min(current.packed().len());
        bits[..words].copy_from_slice(&current.packed()[..words]);
        let persist = self.confidence;
        let flip = 1.0 - self.confidence;
        for (j, slot) in confidence.iter_mut().enumerate().take(current.bit_count()) {
            *slot = if (current.packed()[j / 64] >> (j % 64)) & 1 == 1 { persist } else { flip };
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::packed_len;

    fn predict(p: &Weatherman, x: &PackedObservation) -> (Vec<u64>, Vec<f32>) {
        let mut bits = vec![0u64; packed_len(x.bit_count())];
        let mut confidence = vec![0.0f32; x.bit_count()];
        p.predict_block(x, &mut bits, &mut confidence);
        (bits, confidence)
    }

    #[test]
    fn predicts_persistence() {
        let p = Weatherman::new();
        let x = PackedObservation::from_bits(&[true, false], vec![]);
        let (bits, confidence) = predict(&p, &x);
        assert_eq!(bits, x.packed());
        assert!(confidence[0] > 0.5);
        assert!(confidence[1] < 0.5);
    }

    #[test]
    fn confidence_is_configurable() {
        let p = Weatherman::with_confidence(0.99);
        let x = PackedObservation::from_bits(&[true], vec![]);
        let (_, confidence) = predict(&p, &x);
        assert!((confidence[0] - 0.99).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_useless_confidence() {
        Weatherman::with_confidence(0.3);
    }
}
