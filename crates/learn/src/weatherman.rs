//! The `weatherman` predictor: tomorrow will be like today (§4.4.2).
//!
//! "The weatherman predictor predicts that the next value of each bit will be
//! its current value." It is the perfect predictor for the large class of
//! state bytes that change *rarely* between recognized-IP occurrences — the
//! minimum-energy tracker in the Ising kernel, saturated loop bounds, flags
//! that settle — which is exactly where Figure 3 shows it earning weight.

use crate::features::Observation;
use crate::traits::BitPredictor;

/// Predicts that each bit keeps its current value.
#[derive(Debug, Clone, Default)]
pub struct Weatherman {
    /// Confidence assigned to the persistence prediction.
    confidence: f64,
}

impl Weatherman {
    /// Creates a weatherman predictor with the default confidence (0.9).
    pub fn new() -> Self {
        Weatherman { confidence: 0.9 }
    }

    /// Creates a weatherman with an explicit confidence in `(0.5, 1.0]`.
    ///
    /// # Panics
    /// Panics when `confidence` is not greater than 0.5 and at most 1.0.
    pub fn with_confidence(confidence: f64) -> Self {
        assert!(confidence > 0.5 && confidence <= 1.0, "confidence must be in (0.5, 1.0]");
        Weatherman { confidence }
    }
}

impl BitPredictor for Weatherman {
    fn name(&self) -> &'static str {
        "weatherman"
    }

    fn update(&mut self, _prev: &Observation, _j: usize, _actual: bool) {
        // Stateless: persistence needs no training.
    }

    fn predict(&self, current: &Observation, j: usize) -> f64 {
        if j < current.bit_count() && current.bit(j) {
            self.confidence
        } else {
            1.0 - self.confidence
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_persistence() {
        let p = Weatherman::new();
        let x = Observation::new(vec![true, false], vec![]);
        assert!(p.predict(&x, 0) > 0.5);
        assert!(p.predict(&x, 1) < 0.5);
    }

    #[test]
    fn confidence_is_configurable() {
        let p = Weatherman::with_confidence(0.99);
        let x = Observation::new(vec![true], vec![]);
        assert!((p.predict(&x, 0) - 0.99).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_useless_confidence() {
        Weatherman::with_confidence(0.3);
    }

    #[test]
    fn out_of_range_bit_defaults_to_zero_prediction() {
        let p = Weatherman::new();
        let x = Observation::new(vec![], vec![]);
        assert!(p.predict(&x, 3) < 0.5);
    }
}
