//! A minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! real crates.io `criterion` cannot be fetched. This crate implements the
//! small API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`] — with a simple
//! calibrate-then-sample timing loop that reports min/median/max
//! nanoseconds per iteration.
//!
//! `cargo bench -- --test` runs every benchmark exactly once (smoke mode),
//! mirroring real criterion's behaviour, which is what CI uses.
//!
//! # Machine-readable reports
//!
//! When the `CRITERION_JSON` environment variable names a file, every timed
//! benchmark appends one JSON object per line to it:
//!
//! ```json
//! {"id":"accelerate_collatz_small_workers_2","median_ns":2.6e8,"min_ns":2.5e8,"max_ns":2.8e8,"samples":10}
//! ```
//!
//! The JSON-lines format lets several bench binaries of one `cargo bench`
//! invocation share a single report file. CI's bench-regression gate feeds
//! the file to the `bench_gate` comparator in `asc-bench`.

#![forbid(unsafe_code)]

use std::io::Write;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Drives one benchmark routine: the routine calls [`Bencher::iter`] with the
/// closure to time, and the harness records total elapsed time per batch.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn with_iters(iters: u64) -> Self {
        Bencher { iters: iters.max(1), elapsed: Duration::ZERO }
    }

    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; ignore them.
                "--bench" | "--noplot" | "--quiet" | "-q" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion { sample_size: 20, test_mode, filter }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut bencher = Bencher::with_iters(1);
            f(&mut bencher);
            println!("test {id} ... ok");
            return;
        }
        // Calibrate the per-sample iteration count so one sample takes a few
        // milliseconds, then collect `sample_size` samples.
        let mut iters = 1u64;
        loop {
            let mut bencher = Bencher::with_iters(iters);
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(2) || iters >= 1 << 22 {
                break;
            }
            iters *= 4;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher::with_iters(iters);
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!("{id:<55} time: [{} {} {}]", format_ns(min), format_ns(median), format_ns(max));
        append_json_report(id, median, min, max, samples.len());
    }
}

/// Appends one JSON-lines record to the file named by `CRITERION_JSON`, if
/// set. Failures are reported on stderr but never fail the benchmark run —
/// the report is an artifact, not a correctness requirement.
fn append_json_report(id: &str, median_ns: f64, min_ns: f64, max_ns: f64, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    // The id is a bench name (ASCII identifiers and slashes); escape the two
    // JSON-special characters anyway so the record can never be malformed.
    let escaped = id.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{median_ns},\"min_ns\":{min_ns},\"max_ns\":{max_ns},\"samples\":{samples}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append to CRITERION_JSON file {path}: {error}");
    }
}

/// A set of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn format_ns(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.4} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.4} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.4} µs", nanos / 1e3)
    } else {
        format!("{nanos:.2} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut bencher = Bencher::with_iters(10);
        let mut count = 0u64;
        bencher.iter(|| {
            count += 1;
            count
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
