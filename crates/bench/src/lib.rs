//! # asc-bench — experiment harnesses reproducing the paper's evaluation
//!
//! One binary per table/figure of the paper (§5), plus Criterion
//! micro-benchmarks for the §5.3 implementation measurements:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 — recognizer statistics per benchmark |
//! | `table2` | Table 2 — prediction error rates and cache miss rates |
//! | `fig3`   | Figure 3 — ensemble weight matrices |
//! | `fig4`   | Figure 4 — Ising scaling (32-core server + Blue Gene/P) |
//! | `fig5`   | Figure 5 — 2mm scaling (32-core server) |
//! | `fig6`   | Figure 6 — Collatz scaling + single-core memoization |
//! | `cargo bench` | §5.3 — simulation rate, dependency-tracking overhead, cache lookup, predictor update, rollout latency |
//!
//! Every binary accepts an optional scale argument (`tiny`, `small`,
//! `medium`, `large`; default `small`) controlling the workload size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seed_dispatch;

use asc_core::cluster::{self, PlatformProfile, ScalingMode};
use asc_core::config::AscConfig;
use asc_core::runtime::{LascRuntime, RunReport};
use asc_workloads::registry::{build, Benchmark, Scale};

/// Parses the scale argument from the command line (defaults to `medium`,
/// which leaves recognition a small fraction of total work as in the paper;
/// use `small`/`tiny` for quick runs).
pub fn scale_from_args() -> Scale {
    match std::env::args().nth(1).unwrap_or_default().to_lowercase().as_str() {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "large" => Scale::Large,
        _ => Scale::Medium,
    }
}

/// The runtime configuration used by the experiment harnesses at each scale.
pub fn config_for(scale: Scale) -> AscConfig {
    match scale {
        Scale::Tiny => {
            AscConfig { explore_instructions: 6_000, min_superstep: 50, ..AscConfig::default() }
        }
        Scale::Small => {
            AscConfig { explore_instructions: 80_000, min_superstep: 200, ..AscConfig::default() }
        }
        Scale::Medium => {
            AscConfig { explore_instructions: 250_000, min_superstep: 500, ..AscConfig::default() }
        }
        Scale::Large => AscConfig {
            explore_instructions: 500_000,
            min_superstep: 1_000,
            ..AscConfig::default()
        },
    }
}

/// The configuration of the `accelerate_collatz_small_*` scaling benches and
/// the `planner_comparison` example: the paper's worker-pool regime, with
/// supersteps long enough (≥ `min_superstep` instructions) that executing
/// speculation dominates predicting it. Kept here so the bench and the
/// example can never drift apart.
pub fn small_collatz_config(workers: usize, planner: bool) -> AscConfig {
    let mut config = AscConfig {
        explore_instructions: 20_000,
        min_superstep: 5_000,
        rollout_depth: 8,
        workers,
        ..AscConfig::default()
    };
    config.planner.enabled = planner;
    config
}

/// Runs the measured (instrumented) execution of one benchmark.
///
/// # Panics
/// Panics when the workload cannot be built or the runtime fails — the
/// harnesses are top-level binaries where aborting with a message is the
/// desired behaviour.
pub fn measure(benchmark: Benchmark, scale: Scale) -> (RunReport, String) {
    let workload = build(benchmark, scale).expect("workload must build");
    let runtime = LascRuntime::new(config_for(scale)).expect("config must be valid");
    let report = runtime.measure(&workload.program).expect("measured run must succeed");
    assert!(
        workload.verify(&report.final_state),
        "{benchmark}: measured run produced a wrong result"
    );
    (report, workload.description.clone())
}

/// Formats a row of a fixed-width text table.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut line = format!("{label:<28}");
    for cell in cells {
        line.push_str(&format!(" {cell:>14}"));
    }
    line
}

/// Formats a floating-point number in scientific notation like the paper.
pub fn sci(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else {
        format!("{value:.1e}")
    }
}

/// Prints a scaling curve as a two-column series (cores, scaling).
pub fn print_curve(
    title: &str,
    report: &RunReport,
    profile: &PlatformProfile,
    mode: ScalingMode,
    cores: &[usize],
) {
    println!("# {title}");
    println!("{:>8} {:>12} {:>10}", "cores", "scaling", "hit_rate");
    for point in cluster::scaling_curve(report, profile, mode, cores) {
        println!("{:>8} {:>12.2} {:>10.3}", point.cores, point.scaling, point.hit_rate);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid_for_every_scale() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large] {
            config_for(scale).validate().unwrap();
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(23_000_000.0).contains('e'));
        let line = row("Total time", &["1".to_string(), "2".to_string()]);
        assert!(line.contains("Total time"));
        assert!(line.contains('2'));
    }

    #[test]
    fn tiny_measure_runs_end_to_end() {
        let (report, _) = measure(Benchmark::Collatz, Scale::Tiny);
        assert!(report.halted);
        assert!(!report.supersteps.is_empty());
    }
}
