//! A faithful replica of the seed's interpreter dispatch, kept as the
//! *permanent* comparison anchor for every dispatch-layer optimisation:
//! every state access branches on an `Option<&mut DepVector>` and every
//! retired instruction re-fetches and re-decodes its 8 raw bytes. The
//! `micro` bench measures the monomorphized tier-0 paths against it and the
//! `tier` bench measures block-threaded tier-1 dispatch against it; neither
//! may ever change this module, or the anchor stops anchoring.

use asc_tvm::deps::DepVector;
use asc_tvm::encode::decode;
use asc_tvm::error::{VmError, VmResult};
use asc_tvm::exec::StepOutcome;
use asc_tvm::isa::{Flags, Opcode, INSTRUCTION_BYTES, SP};
use asc_tvm::state::{StateVector, FLAGS_OFFSET, IP_OFFSET, REG_OFFSET};

struct Ctx<'a> {
    state: &'a mut StateVector,
    deps: Option<&'a mut DepVector>,
}

impl Ctx<'_> {
    #[inline]
    fn note_read(&mut self, index: usize, len: usize) {
        if let Some(deps) = self.deps.as_deref_mut() {
            deps.note_read_range(index, len);
        }
    }

    #[inline]
    fn note_write(&mut self, index: usize, len: usize) {
        if let Some(deps) = self.deps.as_deref_mut() {
            deps.note_write_range(index, len);
        }
    }

    #[inline]
    fn read_word_at(&mut self, index: usize) -> u32 {
        self.note_read(index, 4);
        self.state.word(index)
    }

    #[inline]
    fn write_word_at(&mut self, index: usize, value: u32) {
        self.note_write(index, 4);
        self.state.set_word(index, value);
    }

    #[inline]
    fn read_reg(&mut self, reg: u8) -> u32 {
        self.read_word_at(REG_OFFSET + reg as usize * 4)
    }

    #[inline]
    fn write_reg(&mut self, reg: u8, value: u32) {
        self.write_word_at(REG_OFFSET + reg as usize * 4, value);
    }

    fn fetch(&mut self, addr: u32) -> VmResult<[u8; INSTRUCTION_BYTES as usize]> {
        let index = self.state.mem_index(addr, INSTRUCTION_BYTES)?;
        self.note_read(index, INSTRUCTION_BYTES as usize);
        let mut bytes = [0u8; INSTRUCTION_BYTES as usize];
        bytes.copy_from_slice(&self.state.as_bytes()[index..index + INSTRUCTION_BYTES as usize]);
        Ok(bytes)
    }

    fn load_word(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 4)?;
        Ok(self.read_word_at(index))
    }

    fn store_word(&mut self, addr: u32, value: u32) -> VmResult<()> {
        let index = self.state.mem_index(addr, 4)?;
        self.write_word_at(index, value);
        Ok(())
    }

    fn load_byte(&mut self, addr: u32) -> VmResult<u32> {
        let index = self.state.mem_index(addr, 1)?;
        self.note_read(index, 1);
        Ok(self.state.byte(index) as u32)
    }

    fn store_byte(&mut self, addr: u32, value: u8) -> VmResult<()> {
        let index = self.state.mem_index(addr, 1)?;
        self.note_write(index, 1);
        self.state.set_byte(index, value);
        Ok(())
    }
}

fn alu(op: Opcode, lhs: u32, rhs: u32, addr: u32) -> VmResult<u32> {
    use Opcode::*;
    Ok(match op {
        Add => lhs.wrapping_add(rhs),
        Sub => lhs.wrapping_sub(rhs),
        Mul => lhs.wrapping_mul(rhs),
        Div => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_div(rhs as i32)) as u32
        }
        Rem => {
            if rhs == 0 {
                return Err(VmError::DivideByZero { addr });
            }
            ((lhs as i32).wrapping_rem(rhs as i32)) as u32
        }
        And => lhs & rhs,
        Or => lhs | rhs,
        Xor => lhs ^ rhs,
        Shl => lhs.wrapping_shl(rhs & 31),
        Shr => lhs.wrapping_shr(rhs & 31),
        Sar => ((lhs as i32).wrapping_shr(rhs & 31)) as u32,
        other => unreachable!("{other} is not an ALU opcode"),
    })
}

/// The seed's `transition`, byte-for-byte in structure.
pub fn transition(state: &mut StateVector, deps: Option<&mut DepVector>) -> VmResult<StepOutcome> {
    let mut ctx = Ctx { state, deps };

    let ip = ctx.read_word_at(IP_OFFSET);
    let raw = ctx.fetch(ip)?;
    let instruction = decode(&raw, ip)?;
    let next_ip = ip.wrapping_add(INSTRUCTION_BYTES);

    use Opcode::*;
    let outcome = match instruction.opcode {
        Halt => {
            ctx.write_word_at(IP_OFFSET, ip);
            return Ok(StepOutcome::Halted);
        }
        Nop => {
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        MovI => {
            ctx.write_reg(instruction.a, instruction.imm as u32);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Mov => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, v);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Neg => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, (v as i32).wrapping_neg() as u32);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Not => {
            let v = ctx.read_reg(instruction.b);
            ctx.write_reg(instruction.a, !v);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = ctx.read_reg(instruction.c);
            let value = alu(instruction.opcode, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        AddI | MulI | DivI | RemI | AndI | OrI | XorI | ShlI | ShrI | SarI => {
            let lhs = ctx.read_reg(instruction.b);
            let rhs = instruction.imm as u32;
            let op = match instruction.opcode {
                AddI => Add,
                MulI => Mul,
                DivI => Div,
                RemI => Rem,
                AndI => And,
                OrI => Or,
                XorI => Xor,
                ShlI => Shl,
                ShrI => Shr,
                SarI => Sar,
                _ => unreachable!("immediate ALU mapping"),
            };
            let value = alu(op, lhs, rhs, ip)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        LdW => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_word(addr)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        LdB => {
            let base = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            let value = ctx.load_byte(addr)?;
            ctx.write_reg(instruction.a, value);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        StW => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_word(addr, value)?;
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        StB => {
            let base = ctx.read_reg(instruction.a);
            let value = ctx.read_reg(instruction.b);
            let addr = base.wrapping_add(instruction.imm as u32);
            ctx.store_byte(addr, value as u8)?;
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Cmp => {
            let lhs = ctx.read_reg(instruction.a);
            let rhs = ctx.read_reg(instruction.b);
            ctx.write_word_at(FLAGS_OFFSET, Flags::compare(lhs, rhs).to_word());
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        CmpI => {
            let lhs = ctx.read_reg(instruction.a);
            ctx.write_word_at(FLAGS_OFFSET, Flags::compare(lhs, instruction.imm as u32).to_word());
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Jmp => {
            ctx.write_word_at(IP_OFFSET, instruction.imm as u32);
            StepOutcome::Continue
        }
        Jeq | Jne | Jlt | Jle | Jgt | Jge | Jltu | Jgeu => {
            let flags = Flags::from_word(ctx.read_word_at(FLAGS_OFFSET));
            let taken = match instruction.opcode {
                Jeq => flags.eq,
                Jne => !flags.eq,
                Jlt => flags.lt_signed,
                Jle => flags.lt_signed || flags.eq,
                Jgt => !flags.lt_signed && !flags.eq,
                Jge => !flags.lt_signed,
                Jltu => flags.lt_unsigned,
                Jgeu => !flags.lt_unsigned,
                _ => unreachable!("conditional jump mapping"),
            };
            ctx.write_word_at(IP_OFFSET, if taken { instruction.imm as u32 } else { next_ip });
            StepOutcome::Continue
        }
        JmpR => {
            let target = ctx.read_reg(instruction.a);
            ctx.write_word_at(IP_OFFSET, target);
            StepOutcome::Continue
        }
        Call => {
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, next_ip)?;
            ctx.write_reg(SP.index() as u8, sp);
            ctx.write_word_at(IP_OFFSET, instruction.imm as u32);
            StepOutcome::Continue
        }
        Ret => {
            let sp = ctx.read_reg(SP.index() as u8);
            let target = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_word_at(IP_OFFSET, target);
            StepOutcome::Continue
        }
        Push => {
            let value = ctx.read_reg(instruction.a);
            let sp = ctx.read_reg(SP.index() as u8).wrapping_sub(4);
            ctx.store_word(sp, value)?;
            ctx.write_reg(SP.index() as u8, sp);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
        Pop => {
            let sp = ctx.read_reg(SP.index() as u8);
            let value = ctx.load_word(sp)?;
            ctx.write_reg(SP.index() as u8, sp.wrapping_add(4));
            ctx.write_reg(instruction.a, value);
            ctx.write_word_at(IP_OFFSET, next_ip);
            StepOutcome::Continue
        }
    };
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_workloads::registry::{build, Benchmark, Scale};

    /// The replica and the current interpreter retire identical
    /// trajectories, so every timing comparison stays apples-to-apples.
    #[test]
    fn replica_matches_the_current_interpreter() {
        let workload = build(Benchmark::Collatz, Scale::Tiny).unwrap();
        let mut a = workload.program.initial_state().unwrap();
        let mut b = a.clone();
        for _ in 0..10_000 {
            let ra = transition(&mut a, None).unwrap();
            let rb = asc_tvm::exec::transition(&mut b, None).unwrap();
            assert_eq!(ra, rb);
            if ra == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(a, b);
    }
}
