//! Reproduces Figure 6: Collatz scaling on the 32-core server and Blue
//! Gene/P (left, centre) and single-core memoization on the laptop (right).

use asc_bench::{config_for, measure, print_curve, scale_from_args};
use asc_core::cluster::{blue_gene_core_counts, server_core_counts, PlatformProfile, ScalingMode};
use asc_core::config::AscConfig;
use asc_core::runtime::LascRuntime;
use asc_workloads::collatz;
use asc_workloads::registry::{collatz_params, Benchmark};

fn main() {
    let scale = scale_from_args();
    let (report, description) = measure(Benchmark::Collatz, scale);
    println!(
        "Figure 6: Collatz ({description}), {} supersteps, accuracy {:.3}\n",
        report.supersteps.len(),
        report.one_step_accuracy()
    );

    let server = PlatformProfile::server_32core();
    let cores = server_core_counts();
    println!("# Ideal scaling");
    for &c in &cores {
        println!("{c:>8} {:>12.2}", c as f64);
    }
    println!();
    print_curve(
        "LASC cycle-count scaling (32-core server)",
        &report,
        &server,
        ScalingMode::CycleCount,
        &cores,
    );
    print_curve("LASC scaling (32-core server)", &report, &server, ScalingMode::Lasc, &cores);

    let bluegene = PlatformProfile::blue_gene_p();
    let bg_cores = blue_gene_core_counts(16_384);
    print_curve(
        "LASC cycle-count scaling (Blue Gene/P)",
        &report,
        &bluegene,
        ScalingMode::CycleCount,
        &bg_cores,
    );
    print_curve("LASC scaling (Blue Gene/P)", &report, &bluegene, ScalingMode::Lasc, &bg_cores);

    // Rightmost plot: single-core generalized memoization on the laptop.
    let params = collatz_params(scale);
    let program = collatz::pure_program(&params).expect("pure collatz builds");
    let config = AscConfig { min_superstep: 8, ..config_for(scale) };
    let runtime = LascRuntime::new(config).expect("config valid");
    let (memo_report, series) = runtime.memoize(&program, 2.0).expect("memoization run");
    let verified = collatz::read_pure_result(&program, &memo_report.final_state).expect("result");
    assert_eq!(verified, params.count, "memoization must not change results");
    println!("# LASC single-core memoization (1-core laptop): instructions vs scaling");
    let step = (series.len() / 40).max(1);
    for (instructions, scaling) in series.iter().step_by(step) {
        println!("{instructions:>12} {scaling:>10.3}");
    }
    println!(
        "\nmemoized {} of {} instructions ({} cache hits)",
        memo_report.fast_forwarded_instructions,
        memo_report.total_instructions,
        memo_report.cache_stats.hits
    );
}
