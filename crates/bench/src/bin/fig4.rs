//! Reproduces Figure 4: Ising scaling on the 32-core server and Blue Gene/P.

use asc_bench::{measure, print_curve, scale_from_args};
use asc_core::cluster::{blue_gene_core_counts, server_core_counts, PlatformProfile, ScalingMode};
use asc_workloads::handpar::amdahl_speedup;
use asc_workloads::registry::Benchmark;

fn main() {
    let scale = scale_from_args();
    let (report, description) = measure(Benchmark::Ising, scale);
    println!(
        "Figure 4: Ising ({description}), {} supersteps, accuracy {:.3}\n",
        report.supersteps.len(),
        report.one_step_accuracy()
    );

    let server = PlatformProfile::server_32core();
    let cores = server_core_counts();
    println!("# Ideal scaling");
    for &c in &cores {
        println!("{c:>8} {:>12.2}", c as f64);
    }
    println!();
    println!("# Hand-parallelized scaling (Amdahl, partition pass = converge fraction)");
    let sequential_fraction =
        report.converge_instructions as f64 / report.total_instructions.max(1) as f64;
    for &c in &cores {
        println!("{c:>8} {:>12.2}", amdahl_speedup(c, sequential_fraction));
    }
    println!();
    print_curve(
        "LASC cycle-count scaling (32-core server)",
        &report,
        &server,
        ScalingMode::CycleCount,
        &cores,
    );
    print_curve(
        "LASC+oracle scaling (32-core server)",
        &report,
        &server,
        ScalingMode::Oracle,
        &cores,
    );
    print_curve("LASC scaling (32-core server)", &report, &server, ScalingMode::Lasc, &cores);

    let bluegene = PlatformProfile::blue_gene_p();
    let bg_cores = blue_gene_core_counts(4096);
    print_curve(
        "LASC cycle-count scaling (Blue Gene/P)",
        &report,
        &bluegene,
        ScalingMode::CycleCount,
        &bg_cores,
    );
    print_curve("LASC scaling (Blue Gene/P)", &report, &bluegene, ScalingMode::Lasc, &bg_cores);
}
