//! CI bench-regression gate: compares a fresh Criterion JSON-lines report
//! (see the `CRITERION_JSON` support in the in-repo `criterion` shim)
//! against a committed baseline and fails when any gated benchmark's
//! fastest-iteration time regressed beyond the tolerance.
//!
//! ```sh
//! CRITERION_JSON=BENCH_planner.json cargo bench -p asc-bench --bench scaling
//! cargo run -p asc-bench --bin bench_gate -- BENCH_planner.json bench/baseline.json
//! ```
//!
//! Only benchmarks present in the *baseline* are gated; the current report
//! may contain more. A gated benchmark missing from the current report is an
//! error (a renamed or deleted bench must not silently pass the gate). No
//! dependencies: the JSON-lines records are flat objects with known keys,
//! parsed by hand.
//!
//! **Caveat — the baseline is machine-relative.** `bench/baseline.json`
//! records absolute times from whatever host committed it, so the gate is
//! only meaningful on comparable hardware: on a faster CI runner a real
//! regression can hide inside the hardware delta, and on a slower one the
//! gate fails with no code change. When the runner hardware class changes,
//! re-record the baseline there (run the `CRITERION_JSON` command above on
//! the runner and commit the result) rather than widening the tolerance.
//! Until the committed baseline comes from the CI runner class itself, the
//! CI gate step runs with `continue-on-error` — advisory, not blocking; the
//! refresh procedure is documented next to that step in
//! `.github/workflows/ci.yml`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default allowed slowdown before the gate fails: current ≤ baseline × 1.2.
const DEFAULT_TOLERANCE: f64 = 0.20;

/// One parsed benchmark record. The gate compares `min_ns` — the fastest
/// observed iteration — because it is by far the most stable statistic on
/// shared CI runners: medians absorb scheduler noise in the slow direction
/// only, so two identical builds can differ by 20% in median while their
/// minima agree within a few percent.
#[derive(Debug, Clone, Copy)]
struct Record {
    min_ns: f64,
}

/// Extracts the string value of `"key":"…"` from a flat JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut value = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object
/// line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a JSON-lines bench report into id → record, keeping the last
/// record per id (a re-run bench supersedes its earlier appearance).
fn parse_report(text: &str, path: &str) -> Result<BTreeMap<String, Record>, String> {
    let mut records = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = string_field(line, "id")
            .ok_or_else(|| format!("{path}:{}: no \"id\" field in {line:?}", index + 1))?;
        let min_ns = number_field(line, "min_ns")
            .ok_or_else(|| format!("{path}:{}: no \"min_ns\" field in {line:?}", index + 1))?;
        if !(min_ns.is_finite() && min_ns > 0.0) {
            return Err(format!("{path}:{}: non-positive minimum for {id}", index + 1));
        }
        records.insert(id, Record { min_ns });
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

fn format_ms(nanos: f64) -> String {
    format!("{:.1}ms", nanos / 1e6)
}

fn run(current_path: &str, baseline_path: &str, tolerance: f64) -> Result<bool, String> {
    let current_text = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read current report {current_path}: {e}"))?;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let current = parse_report(&current_text, current_path)?;
    let baseline = parse_report(&baseline_text, baseline_path)?;

    let mut failed = false;
    println!(
        "{:<45} {:>10} {:>10} {:>8}  verdict (tolerance +{:.0}%)",
        "benchmark",
        "baseline",
        "current",
        "ratio",
        tolerance * 100.0
    );
    for (id, base) in &baseline {
        let Some(now) = current.get(id) else {
            println!("{id:<45} {:>10} {:>10} {:>8}  MISSING from current report", "-", "-", "-");
            failed = true;
            continue;
        };
        let ratio = now.min_ns / base.min_ns;
        let regressed = ratio > 1.0 + tolerance;
        println!(
            "{:<45} {:>10} {:>10} {:>7.2}x  {}",
            id,
            format_ms(base.min_ns),
            format_ms(now.min_ns),
            ratio,
            if regressed { "REGRESSED" } else { "ok" }
        );
        failed |= regressed;
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a non-negative number (e.g. 0.2)");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [current, baseline] = paths.as_slice() else {
        eprintln!("usage: bench_gate [--tolerance 0.2] <current.json> <baseline.json>");
        return ExitCode::from(2);
    };
    match run(current, baseline, tolerance) {
        Ok(false) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!("bench gate FAILED: regression beyond {:.0}%", tolerance * 100.0);
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench gate error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_lines() {
        let text = concat!(
            "{\"id\":\"a/b\",\"median_ns\":1500000,\"min_ns\":1,\"max_ns\":2,\"samples\":10}\n",
            "{\"id\":\"c\",\"median_ns\":2.5e8,\"min_ns\":1,\"max_ns\":2,\"samples\":10}\n",
        );
        let report = parse_report(text, "test").unwrap();
        assert_eq!(report.len(), 2);
        assert!((report["a/b"].min_ns - 1.0).abs() < 1e-9);
        assert!((report["c"].min_ns - 1.0).abs() < 1e-9);
    }

    #[test]
    fn later_records_supersede_earlier_ones() {
        let text = concat!("{\"id\":\"a\",\"min_ns\":100}\n", "{\"id\":\"a\",\"min_ns\":200}\n",);
        let report = parse_report(text, "test").unwrap();
        assert_eq!(report["a"].min_ns, 200.0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_report("{\"min_ns\":1}\n", "test").is_err());
        assert!(parse_report("{\"id\":\"a\",\"min_ns\":-4}\n", "test").is_err());
        assert!(parse_report("", "test").is_err());
    }

    #[test]
    fn escaped_ids_round_trip() {
        let text = "{\"id\":\"we\\\"ird\\\\name\",\"min_ns\":5}\n";
        let report = parse_report(text, "test").unwrap();
        assert!(report.contains_key("we\"ird\\name"));
    }

    #[test]
    fn gate_logic_spots_regressions() {
        let base = Record { min_ns: 100.0 };
        // 19% slower passes at 20% tolerance, 21% fails.
        assert!(119.0 / base.min_ns <= 1.2);
        assert!(121.0 / base.min_ns > 1.2);
    }
}
