//! CI bench-regression gate: compares a fresh Criterion JSON-lines report
//! (see the `CRITERION_JSON` support in the in-repo `criterion` shim)
//! against a committed baseline and fails when any gated benchmark's
//! fastest-iteration time regressed beyond the tolerance.
//!
//! ```sh
//! CRITERION_JSON=BENCH_planner.json cargo bench -p asc-bench --bench scaling
//! cargo run -p asc-bench --bin bench_gate -- BENCH_planner.json bench/baseline.json
//! ```
//!
//! Only benchmarks present in the *baseline* are gated; the current report
//! may contain more. A gated benchmark missing from the current report is an
//! error (a renamed or deleted bench must not silently pass the gate). No
//! dependencies: the JSON-lines records are flat objects with known keys,
//! parsed by hand.
//!
//! **Caveat — the baseline is machine-relative.** `bench/baseline.json`
//! records absolute times from whatever host committed it, so the gate is
//! only meaningful on comparable hardware: on a faster CI runner a real
//! regression can hide inside the hardware delta, and on a slower one the
//! gate fails with no code change. When the runner hardware class changes,
//! re-record the baseline there (run the `CRITERION_JSON` command above on
//! the runner and commit the result) rather than widening the tolerance.
//! Until the committed baseline comes from the CI runner class itself, the
//! CI gate step runs with `continue-on-error` — advisory, not blocking; the
//! refresh procedure is documented next to that step in
//! `.github/workflows/ci.yml`.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default allowed slowdown before the gate fails: current ≤ baseline × 1.2.
const DEFAULT_TOLERANCE: f64 = 0.20;

/// One parsed benchmark record. The gate compares `min_ns` — the fastest
/// observed iteration — because it is by far the most stable statistic on
/// shared CI runners: medians absorb scheduler noise in the slow direction
/// only, so two identical builds can differ by 20% in median while their
/// minima agree within a few percent.
#[derive(Debug, Clone, Copy)]
struct Record {
    min_ns: f64,
}

/// Extracts the string value of `"key":"…"` from a flat JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut value = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object
/// line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a JSON-lines bench report into id → record, keeping the last
/// record per id (a re-run bench supersedes its earlier appearance).
fn parse_report(text: &str, path: &str) -> Result<BTreeMap<String, Record>, String> {
    let mut records = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let id = string_field(line, "id")
            .ok_or_else(|| format!("{path}:{}: no \"id\" field in {line:?}", index + 1))?;
        let min_ns = number_field(line, "min_ns")
            .ok_or_else(|| format!("{path}:{}: no \"min_ns\" field in {line:?}", index + 1))?;
        if !(min_ns.is_finite() && min_ns > 0.0) {
            return Err(format!("{path}:{}: non-positive minimum for {id}", index + 1));
        }
        records.insert(id, Record { min_ns });
    }
    if records.is_empty() {
        return Err(format!("{path}: no benchmark records found"));
    }
    Ok(records)
}

/// Formats a duration with a unit scaled to its magnitude: the gated
/// benchmarks span ~50ns (cache probes) to ~200ms (accelerate runs), and a
/// fixed-millisecond rendering would print every sub-millisecond benchmark
/// as "0.0ms".
fn format_time(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.2}s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.1}ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.1}µs", nanos / 1e3)
    } else {
        format!("{nanos:.0}ns")
    }
}

/// One gated benchmark's comparison: baseline time against the current
/// report (`None`: the benchmark vanished from the current report, which
/// fails the gate).
struct GateRow {
    id: String,
    baseline_ns: f64,
    current_ns: Option<f64>,
}

impl GateRow {
    fn ratio(&self) -> Option<f64> {
        self.current_ns.map(|now| now / self.baseline_ns)
    }

    /// A missing benchmark or one beyond tolerance fails the gate.
    fn failed(&self, tolerance: f64) -> bool {
        self.ratio().is_none_or(|ratio| ratio > 1.0 + tolerance)
    }

    fn verdict(&self, tolerance: f64) -> &'static str {
        match self.ratio() {
            None => "MISSING from current report",
            Some(_) if self.failed(tolerance) => "REGRESSED",
            Some(_) => "ok",
        }
    }
}

/// Compares every baseline benchmark against the current report.
fn compare(
    baseline: &BTreeMap<String, Record>,
    current: &BTreeMap<String, Record>,
) -> Vec<GateRow> {
    baseline
        .iter()
        .map(|(id, base)| GateRow {
            id: id.clone(),
            baseline_ns: base.min_ns,
            current_ns: current.get(id).map(|now| now.min_ns),
        })
        .collect()
}

/// The per-benchmark delta table as GitHub-flavoured markdown, for
/// `$GITHUB_STEP_SUMMARY`: a failing gate names the offending benchmark in
/// the job summary instead of a bare pass/fail in the log.
fn summary_markdown(rows: &[GateRow], tolerance: f64) -> String {
    let failed = rows.iter().any(|row| row.failed(tolerance));
    let mut out = format!(
        "### Bench gate: {} (tolerance +{:.0}%)\n\n\
         | benchmark | baseline | current | ratio | verdict |\n\
         |---|---:|---:|---:|---|\n",
        if failed { "FAILED" } else { "passed" },
        tolerance * 100.0
    );
    for row in rows {
        let (current, ratio) = match (row.current_ns, row.ratio()) {
            (Some(now), Some(ratio)) => (format_time(now), format!("{ratio:.2}x")),
            _ => ("-".to_string(), "-".to_string()),
        };
        let verdict = row.verdict(tolerance);
        let emphasis = if row.failed(tolerance) { "**" } else { "" };
        out.push_str(&format!(
            "| {} | {} | {current} | {ratio} | {emphasis}{verdict}{emphasis} |\n",
            row.id,
            format_time(row.baseline_ns),
        ));
    }
    out
}

/// Appends the markdown delta table to the file `$GITHUB_STEP_SUMMARY`
/// names, when running under GitHub Actions. Failures only warn: the
/// summary is cosmetic, the exit code is the gate.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, markdown.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append to GITHUB_STEP_SUMMARY {path}: {error}");
    }
}

fn run(current_path: &str, baseline_path: &str, tolerance: f64) -> Result<bool, String> {
    let current_text = std::fs::read_to_string(current_path)
        .map_err(|e| format!("cannot read current report {current_path}: {e}"))?;
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let current = parse_report(&current_text, current_path)?;
    let baseline = parse_report(&baseline_text, baseline_path)?;

    let rows = compare(&baseline, &current);
    println!(
        "{:<45} {:>10} {:>10} {:>8}  verdict (tolerance +{:.0}%)",
        "benchmark",
        "baseline",
        "current",
        "ratio",
        tolerance * 100.0
    );
    for row in &rows {
        match (row.current_ns, row.ratio()) {
            (Some(now), Some(ratio)) => println!(
                "{:<45} {:>10} {:>10} {:>7.2}x  {}",
                row.id,
                format_time(row.baseline_ns),
                format_time(now),
                ratio,
                row.verdict(tolerance)
            ),
            _ => println!(
                "{:<45} {:>10} {:>10} {:>8}  {}",
                row.id,
                "-",
                "-",
                "-",
                row.verdict(tolerance)
            ),
        }
    }
    append_step_summary(&summary_markdown(&rows, tolerance));
    Ok(rows.iter().any(|row| row.failed(tolerance)))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut paths = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tolerance" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a non-negative number (e.g. 0.2)");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [current, baseline] = paths.as_slice() else {
        eprintln!("usage: bench_gate [--tolerance 0.2] <current.json> <baseline.json>");
        return ExitCode::from(2);
    };
    match run(current, baseline, tolerance) {
        Ok(false) => {
            println!("bench gate passed");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!("bench gate FAILED: regression beyond {:.0}%", tolerance * 100.0);
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("bench gate error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_lines() {
        let text = concat!(
            "{\"id\":\"a/b\",\"median_ns\":1500000,\"min_ns\":1,\"max_ns\":2,\"samples\":10}\n",
            "{\"id\":\"c\",\"median_ns\":2.5e8,\"min_ns\":1,\"max_ns\":2,\"samples\":10}\n",
        );
        let report = parse_report(text, "test").unwrap();
        assert_eq!(report.len(), 2);
        assert!((report["a/b"].min_ns - 1.0).abs() < 1e-9);
        assert!((report["c"].min_ns - 1.0).abs() < 1e-9);
    }

    #[test]
    fn later_records_supersede_earlier_ones() {
        let text = concat!("{\"id\":\"a\",\"min_ns\":100}\n", "{\"id\":\"a\",\"min_ns\":200}\n",);
        let report = parse_report(text, "test").unwrap();
        assert_eq!(report["a"].min_ns, 200.0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_report("{\"min_ns\":1}\n", "test").is_err());
        assert!(parse_report("{\"id\":\"a\",\"min_ns\":-4}\n", "test").is_err());
        assert!(parse_report("", "test").is_err());
    }

    #[test]
    fn escaped_ids_round_trip() {
        let text = "{\"id\":\"we\\\"ird\\\\name\",\"min_ns\":5}\n";
        let report = parse_report(text, "test").unwrap();
        assert!(report.contains_key("we\"ird\\name"));
    }

    #[test]
    fn gate_logic_spots_regressions() {
        let base = Record { min_ns: 100.0 };
        // 19% slower passes at 20% tolerance, 21% fails.
        assert!(119.0 / base.min_ns <= 1.2);
        assert!(121.0 / base.min_ns > 1.2);
    }

    #[test]
    fn rows_compare_baseline_against_current() {
        let baseline = parse_report(
            "{\"id\":\"a\",\"min_ns\":100}\n{\"id\":\"b\",\"min_ns\":100}\n{\"id\":\"gone\",\"min_ns\":100}\n",
            "base",
        )
        .unwrap();
        let current = parse_report(
            "{\"id\":\"a\",\"min_ns\":110}\n{\"id\":\"b\",\"min_ns\":150}\n{\"id\":\"extra\",\"min_ns\":5}\n",
            "cur",
        )
        .unwrap();
        let rows = compare(&baseline, &current);
        // Only baseline benchmarks are gated; extras in the current report
        // are ignored.
        assert_eq!(rows.len(), 3);
        let by_id = |id: &str| rows.iter().find(|r| r.id == id).unwrap();
        assert!(!by_id("a").failed(0.2));
        assert!(by_id("b").failed(0.2), "50% regression must fail");
        assert!(by_id("gone").failed(0.2), "a vanished benchmark must fail");
        assert_eq!(by_id("gone").verdict(0.2), "MISSING from current report");
    }

    #[test]
    fn step_summary_markdown_names_the_offender() {
        let baseline = parse_report(
            "{\"id\":\"fast\",\"min_ns\":100}\n{\"id\":\"slow\",\"min_ns\":100}\n",
            "b",
        )
        .unwrap();
        let current = parse_report(
            "{\"id\":\"fast\",\"min_ns\":90}\n{\"id\":\"slow\",\"min_ns\":200}\n",
            "c",
        )
        .unwrap();
        let markdown = summary_markdown(&compare(&baseline, &current), 0.2);
        assert!(markdown.contains("Bench gate: FAILED"));
        assert!(markdown.contains("| fast | 100ns | 90ns | 0.90x | ok |"));
        assert!(markdown.contains("| slow | 100ns | 200ns | 2.00x | **REGRESSED** |"));

        let healthy = summary_markdown(
            &compare(
                &baseline,
                &parse_report(
                    "{\"id\":\"fast\",\"min_ns\":90}\n{\"id\":\"slow\",\"min_ns\":100}\n",
                    "c",
                )
                .unwrap(),
            ),
            0.2,
        );
        assert!(healthy.contains("Bench gate: passed"));
        assert!(!healthy.contains("REGRESSED"));
    }
}
