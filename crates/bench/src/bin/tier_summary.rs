//! CI tier-up summary: renders the JSON-lines `TierStats` records the
//! determinism suite emits via `ASC_TIER_OUT` (one line per benchmark ×
//! execution mode) as a table — to stdout, and as GitHub-flavoured markdown
//! appended to `$GITHUB_STEP_SUMMARY` next to the dispatch-economics table.
//!
//! ```sh
//! ASC_TIER_OUT=TIER_stats.json cargo test -q --test determinism tier
//! cargo run -p asc-bench --bin tier_summary -- TIER_stats.json
//! ```
//!
//! The interesting column is *tier-1 share*: the fraction of all retired
//! instructions that went through block-threaded dispatch of compiled,
//! fused micro-op blocks instead of single-step tier-0 dispatch. A healthy
//! run shows a high share on every loop-shaped benchmark with few
//! invalidations. Exit code 2 on unreadable or empty input so a
//! silently-missing artifact fails the CI step; otherwise the summary is
//! informational and always exits 0.

use std::process::ExitCode;

/// One parsed `TierStats` emission.
#[derive(Debug, Clone)]
struct TierRow {
    benchmark: String,
    mode: String,
    blocks_compiled: u64,
    blocks_invalidated: u64,
    fused_ops: u64,
    tier1_instructions: u64,
    tier0_instructions: u64,
    tier1_share: f64,
}

/// Extracts the string value of `"key":"…"` from a flat JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut value = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object
/// line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_rows(text: &str, path: &str) -> Result<Vec<TierRow>, String> {
    let mut rows = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let field = |key: &str| {
            number_field(line, key)
                .ok_or_else(|| format!("{path}:{}: no \"{key}\" field in {line:?}", index + 1))
        };
        rows.push(TierRow {
            benchmark: string_field(line, "benchmark")
                .ok_or_else(|| format!("{path}:{}: no \"benchmark\" field", index + 1))?,
            mode: string_field(line, "mode")
                .ok_or_else(|| format!("{path}:{}: no \"mode\" field", index + 1))?,
            blocks_compiled: field("blocks_compiled")? as u64,
            blocks_invalidated: field("blocks_invalidated")? as u64,
            fused_ops: field("fused_ops")? as u64,
            tier1_instructions: field("tier1_instructions")? as u64,
            tier0_instructions: field("tier0_instructions")? as u64,
            tier1_share: field("tier1_share")?,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no tier records found"));
    }
    Ok(rows)
}

/// Instruction counts with a magnitude-scaled unit.
fn format_count(count: u64) -> String {
    let value = count as f64;
    if value >= 1e9 {
        format!("{:.2}G", value / 1e9)
    } else if value >= 1e6 {
        format!("{:.1}M", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.1}k", value / 1e3)
    } else {
        format!("{count}")
    }
}

/// The tier-up table as GitHub-flavoured markdown for
/// `$GITHUB_STEP_SUMMARY`.
fn summary_markdown(rows: &[TierRow]) -> String {
    let tier1: u64 = rows.iter().map(|r| r.tier1_instructions).sum();
    let total: u64 = rows.iter().map(|r| r.tier1_instructions + r.tier0_instructions).sum();
    let share = if total == 0 { 0.0 } else { tier1 as f64 / total as f64 };
    let mut out = format!(
        "### Tier-up execution ({:.1}% of {} instructions block-threaded across {} runs)\n\n\
         | benchmark | mode | blocks | invalidated | fused ops | tier-1 | tier-0 | tier-1 share |\n\
         |---|---|---:|---:|---:|---:|---:|---:|\n",
        share * 100.0,
        format_count(total),
        rows.len(),
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.1}% |\n",
            row.benchmark,
            row.mode,
            row.blocks_compiled,
            row.blocks_invalidated,
            format_count(row.fused_ops),
            format_count(row.tier1_instructions),
            format_count(row.tier0_instructions),
            row.tier1_share * 100.0,
        ));
    }
    out
}

/// Appends the markdown table to the file `$GITHUB_STEP_SUMMARY` names,
/// when running under GitHub Actions. Failures only warn: the summary is
/// cosmetic.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, markdown.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append to GITHUB_STEP_SUMMARY {path}: {error}");
    }
}

fn run(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read tier stats {path}: {e}"))?;
    let rows = parse_rows(&text, path)?;
    println!(
        "{:<10} {:<8} {:>7} {:>12} {:>10} {:>10} {:>10} {:>7}",
        "benchmark", "mode", "blocks", "invalidated", "fused", "tier-1", "tier-0", "share"
    );
    for row in &rows {
        println!(
            "{:<10} {:<8} {:>7} {:>12} {:>10} {:>10} {:>10} {:>6.1}%",
            row.benchmark,
            row.mode,
            row.blocks_compiled,
            row.blocks_invalidated,
            format_count(row.fused_ops),
            format_count(row.tier1_instructions),
            format_count(row.tier0_instructions),
            row.tier1_share * 100.0,
        );
    }
    append_step_summary(&summary_markdown(&rows));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: tier_summary <TIER_stats.json>");
        return ExitCode::from(2);
    };
    match run(path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("tier summary error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"benchmark\":\"Collatz\",\"mode\":\"workers\",\
         \"blocks_compiled\":3,\"blocks_invalidated\":0,\"fused_ops\":7,\
         \"tier1_instructions\":1531042,\"tier0_instructions\":10421,\
         \"tier1_share\":0.993239}";

    #[test]
    fn parses_emitted_records() {
        let rows = parse_rows(LINE, "test").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].benchmark, "Collatz");
        assert_eq!(rows[0].mode, "workers");
        assert_eq!(rows[0].blocks_compiled, 3);
        assert_eq!(rows[0].blocks_invalidated, 0);
        assert_eq!(rows[0].fused_ops, 7);
        assert_eq!(rows[0].tier1_instructions, 1_531_042);
        assert_eq!(rows[0].tier0_instructions, 10_421);
        assert!((rows[0].tier1_share - 0.993239).abs() < 1e-9);
    }

    #[test]
    fn empty_or_malformed_input_is_an_error() {
        assert!(parse_rows("", "test").is_err());
        assert!(parse_rows("{\"mode\":\"inline\"}", "test").is_err());
    }

    #[test]
    fn markdown_shares_the_tiered_fraction() {
        let rows = parse_rows(&format!("{LINE}\n{LINE}\n"), "test").unwrap();
        let markdown = summary_markdown(&rows);
        assert!(markdown.contains("Tier-up execution (99.3% of 3.1M instructions"));
        assert!(markdown.contains("| Collatz | workers | 3 | 0 | 7 | 1.5M | 10.4k | 99.3% |"));
    }

    #[test]
    fn counts_scale_units() {
        assert_eq!(format_count(950), "950");
        assert_eq!(format_count(67_231), "67.2k");
        assert_eq!(format_count(32_000_000), "32.0M");
        assert_eq!(format_count(2_500_000_000), "2.50G");
    }
}
