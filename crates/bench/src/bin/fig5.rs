//! Reproduces Figure 5: Polybench 2mm scaling on the 32-core server.

use asc_bench::{measure, print_curve, scale_from_args};
use asc_core::cluster::{server_core_counts, PlatformProfile, ScalingMode};
use asc_workloads::registry::Benchmark;

fn main() {
    let scale = scale_from_args();
    let (report, description) = measure(Benchmark::Mm2, scale);
    println!(
        "Figure 5: 2mm ({description}), {} supersteps, accuracy {:.3}\n",
        report.supersteps.len(),
        report.one_step_accuracy()
    );
    let server = PlatformProfile::server_32core();
    let cores = server_core_counts();
    println!("# Ideal scaling");
    for &c in &cores {
        println!("{c:>8} {:>12.2}", c as f64);
    }
    println!();
    print_curve(
        "LASC cycle-count scaling (32-core server)",
        &report,
        &server,
        ScalingMode::CycleCount,
        &cores,
    );
    print_curve(
        "LASC+oracle scaling (32-core server)",
        &report,
        &server,
        ScalingMode::Oracle,
        &cores,
    );
    print_curve("LASC scaling (32-core server)", &report, &server, ScalingMode::Lasc, &cores);
}
