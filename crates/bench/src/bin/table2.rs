//! Reproduces Table 2: prediction error rates and cache miss rates.

use asc_bench::{config_for, measure, row, scale_from_args};
use asc_core::cluster::{simulate, PlatformProfile, ScalingMode};
use asc_core::runtime::LascRuntime;
use asc_workloads::registry::{build, Benchmark};

fn main() {
    let scale = scale_from_args();
    println!("Table 2: prediction error rates and cache miss rates (scale {scale:?})\n");
    let reports: Vec<_> = Benchmark::ALL.iter().map(|&b| (b, measure(b, scale))).collect();

    let names: Vec<String> = reports.iter().map(|(b, _)| b.name().to_string()).collect();
    println!("{}", row("", &names));
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    let errors: Vec<_> =
        reports.iter().map(|(_, (r, _))| r.ensemble_errors.unwrap_or_default()).collect();
    println!(
        "{}",
        row(
            "Equal-weight error rate",
            &errors.iter().map(|e| pct(e.equal_weight_error_rate)).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "Hindsight-optimal error",
            &errors.iter().map(|e| pct(e.hindsight_optimal_error_rate)).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "Actual (RWMA) error rate",
            &errors.iter().map(|e| pct(e.actual_error_rate)).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "Total predictions",
            &errors.iter().map(|e| e.total_predictions.to_string()).collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "Incorrect predictions",
            &errors.iter().map(|e| e.incorrect_predictions.to_string()).collect::<Vec<_>>()
        )
    );
    // Cache miss rate at 32 cores, from the cluster replay of the trace.
    let profile = PlatformProfile::server_32core();
    let miss: Vec<String> = reports
        .iter()
        .map(|(_, (r, _))| {
            let point = simulate(r, &profile, ScalingMode::Lasc, 32);
            format!("{:.1}%", (1.0 - point.hit_rate) * 100.0)
        })
        .collect();
    println!("{}", row("Cache miss rate (32 cores)", &miss));
    // In-process accelerated runs (real cache in the loop) as a cross-check.
    let accel: Vec<String> = Benchmark::ALL
        .iter()
        .map(|&b| {
            let workload = build(b, scale).expect("workload");
            let runtime = LascRuntime::new(config_for(scale)).expect("config");
            match runtime.accelerate(&workload.program) {
                Ok(report) => {
                    assert!(workload.verify(&report.final_state));
                    format!("{:.1}%", report.cache_stats.miss_rate() * 100.0)
                }
                Err(_) => "n/a".to_string(),
            }
        })
        .collect();
    println!("{}", row("In-process miss rate", &accel));
}
