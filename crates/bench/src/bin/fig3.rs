//! Reproduces Figure 3: RWMA weight matrices (predictors × excited bits).

use asc_bench::{measure, scale_from_args};
use asc_workloads::registry::Benchmark;

fn main() {
    let scale = scale_from_args();
    for &benchmark in &Benchmark::ALL {
        let (report, _) = measure(benchmark, scale);
        let Some((names, matrix)) = report.weight_matrix else {
            println!("{benchmark}: no weight matrix (predictors never trained)");
            continue;
        };
        println!(
            "# Figure 3 — {benchmark}: rows = predictors, columns = {} excited bits",
            matrix.len()
        );
        // ASCII heat map: one row per predictor, one character per bit.
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        for (p, name) in names.iter().enumerate() {
            let mut line = format!("{name:>12} |");
            for weights in &matrix {
                let w = weights.get(p).copied().unwrap_or(0.0);
                let shade = shades
                    [((w * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1)];
                line.push(shade);
            }
            println!("{line}|");
        }
        // Average weight per predictor (summary row).
        for (p, name) in names.iter().enumerate() {
            let mean: f64 = matrix.iter().map(|w| w.get(p).copied().unwrap_or(0.0)).sum::<f64>()
                / matrix.len().max(1) as f64;
            println!("{name:>12}: mean weight {mean:.3}");
        }
        println!();
    }
}
