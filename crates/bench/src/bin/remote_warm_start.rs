//! Two-process warm-start scenario driver for the CI `remote-tier` job.
//!
//! Three subcommands compose the scenario (no flags framework — positional
//! `--key value` pairs parsed by hand, offline-container style):
//!
//! * `record --snapshot S --out A.txt` — process A: runs collatz
//!   accelerated, saves its trajectory cache to `S`, and writes its final
//!   hit rate and instruction volume to `A.txt` as `key=value` lines.
//! * `serve --snapshot S --addr-out ADDR.txt` — a cache-peer process:
//!   binds an ephemeral loopback port, pre-warms its store from `S`,
//!   writes `host:port` to `ADDR.txt`, then serves until killed.
//! * `replay --baseline A.txt [--snapshot S] [--peer ADDR] [--window 0.2]
//!   [--min-ratio 0.8]` — process B: runs the same program under an
//!   instruction budget of `window × A_total`, warm-started from the
//!   snapshot and/or the peer, and **fails (exit 1) unless its
//!   first-window hit rate reaches `min-ratio × A_final_rate`** — the
//!   acceptance criterion for the warm start being real.
//!
//! The same binary also backs local reproduction:
//!
//! ```sh
//! cargo run -p asc-bench --bin remote_warm_start -- record \
//!     --snapshot /tmp/warm.snap --out /tmp/a.txt
//! cargo run -p asc-bench --bin remote_warm_start -- serve \
//!     --snapshot /tmp/warm.snap --addr-out /tmp/addr.txt &
//! cargo run -p asc-bench --bin remote_warm_start -- replay \
//!     --baseline /tmp/a.txt --peer "$(cat /tmp/addr.txt)"
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use asc_core::config::AscConfig;
use asc_core::remote::CachePeer;
use asc_core::runtime::{LascRuntime, RunReport};
use asc_workloads::registry::{build, Benchmark, Scale};

/// The scenario's fixed workload: collatz is the paper's cleanest
/// high-hit-rate benchmark, so its warm start is unambiguous to assert on.
fn workload() -> asc_workloads::registry::BuiltWorkload {
    build(Benchmark::Collatz, Scale::Tiny).expect("collatz tiny builds")
}

fn base_config() -> AscConfig {
    AscConfig {
        explore_instructions: 5_000,
        evaluation_occurrences: 6,
        evaluation_training: 10,
        candidate_count: 8,
        min_superstep: 50,
        rollout_depth: 8,
        ..AscConfig::default()
    }
}

fn hit_rate(report: &RunReport) -> f64 {
    report.cache_stats.hits as f64 / report.cache_stats.queries.max(1) as f64
}

/// Parses `--key value` pairs after the subcommand.
fn parse_args(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut parsed = HashMap::new();
    let mut iter = args.iter();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --key, got {key}"));
        };
        let Some(value) = iter.next() else {
            return Err(format!("--{name} needs a value"));
        };
        parsed.insert(name.to_string(), value.clone());
    }
    Ok(parsed)
}

fn read_baseline(path: &str) -> Result<HashMap<String, String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Ok(text
        .lines()
        .filter_map(|line| line.split_once('='))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect())
}

fn run_record(args: &HashMap<String, String>) -> Result<ExitCode, String> {
    let snapshot = args.get("snapshot").ok_or("record needs --snapshot")?;
    let out = args.get("out").ok_or("record needs --out")?;
    let workload = workload();
    let mut config = base_config();
    config.remote.enabled = true;
    config.remote.snapshot_save = Some(PathBuf::from(snapshot));
    let report = LascRuntime::new(config)
        .map_err(|e| e.to_string())?
        .accelerate(&workload.program)
        .map_err(|e| e.to_string())?;
    if !report.halted || !workload.verify(&report.final_state) {
        return Err("record run did not complete correctly".into());
    }
    let remote = report.remote.expect("remote tier was enabled");
    if remote.snapshot_saved == 0 {
        return Err(format!("record run saved no entries ({remote:?})"));
    }
    let rate = hit_rate(&report);
    std::fs::write(
        out,
        format!(
            "hit_rate={rate}\ntotal_instructions={}\nsnapshot_saved={}\n",
            report.total_instructions, remote.snapshot_saved
        ),
    )
    .map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "record: hit_rate={rate:.4} total={} saved={}",
        report.total_instructions, remote.snapshot_saved
    );
    Ok(ExitCode::SUCCESS)
}

fn run_serve(args: &HashMap<String, String>) -> Result<ExitCode, String> {
    let addr_out = args.get("addr-out").ok_or("serve needs --addr-out")?;
    let peer = CachePeer::bind("127.0.0.1:0", 1 << 18).map_err(|e| format!("bind: {e}"))?;
    if let Some(snapshot) = args.get("snapshot") {
        let (loaded, rejected) = peer
            .load_snapshot(std::path::Path::new(snapshot))
            .map_err(|e| format!("load {snapshot}: {e}"))?;
        println!("serve: loaded={loaded} rejected={rejected}");
        if loaded == 0 {
            return Err("peer loaded no entries from the snapshot".into());
        }
    }
    std::fs::write(addr_out, peer.local_addr().to_string())
        .map_err(|e| format!("write {addr_out}: {e}"))?;
    println!("serve: listening on {}", peer.local_addr());
    // Serve until killed: the accept thread owns the work; this thread just
    // keeps the process (and the `CachePeer`) alive.
    loop {
        std::thread::park();
    }
}

fn run_replay(args: &HashMap<String, String>) -> Result<ExitCode, String> {
    let baseline = read_baseline(args.get("baseline").ok_or("replay needs --baseline")?)?;
    let a_rate: f64 =
        baseline.get("hit_rate").and_then(|v| v.parse().ok()).ok_or("baseline missing hit_rate")?;
    let a_total: u64 = baseline
        .get("total_instructions")
        .and_then(|v| v.parse().ok())
        .ok_or("baseline missing total_instructions")?;
    let window: f64 =
        args.get("window").map_or(Ok(0.2), |v| v.parse().map_err(|_| "bad --window"))?;
    let min_ratio: f64 =
        args.get("min-ratio").map_or(Ok(0.8), |v| v.parse().map_err(|_| "bad --min-ratio"))?;

    let workload = workload();
    let mut config = base_config();
    config.remote.enabled = true;
    config.instruction_budget = ((a_total as f64 * window) as u64).max(50_000);
    if let Some(snapshot) = args.get("snapshot") {
        config.remote.snapshot_load = Some(PathBuf::from(snapshot));
    }
    if let Some(peer) = args.get("peer") {
        config.remote.peer = Some(peer.clone());
    }
    if config.remote.snapshot_load.is_none() && config.remote.peer.is_none() {
        return Err("replay needs --snapshot and/or --peer".into());
    }
    let report = LascRuntime::new(config)
        .map_err(|e| e.to_string())?
        .accelerate(&workload.program)
        .map_err(|e| e.to_string())?;
    let remote = report.remote.expect("remote tier was enabled");
    let b_rate = hit_rate(&report);
    let floor = min_ratio * a_rate;
    println!(
        "replay: first-window hit_rate={b_rate:.4} (A final {a_rate:.4}, floor {floor:.4}) \
         remote={remote:?}"
    );
    if remote.snapshot_loaded == 0 && remote.remote_hits == 0 {
        eprintln!("replay: warm start never engaged (no snapshot entries, no peer hits)");
        return Ok(ExitCode::FAILURE);
    }
    if b_rate < floor {
        eprintln!("replay: FAILED — warm start too cold ({b_rate:.4} < {floor:.4})");
        return Ok(ExitCode::FAILURE);
    }
    println!("replay: OK");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: remote_warm_start <record|serve|replay> --key value ...");
        return ExitCode::FAILURE;
    };
    let result = parse_args(rest).and_then(|parsed| match command.as_str() {
        "record" => run_record(&parsed),
        "serve" => run_serve(&parsed),
        "replay" => run_replay(&parsed),
        other => Err(format!("unknown subcommand {other}")),
    });
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("remote_warm_start {command}: {message}");
            ExitCode::FAILURE
        }
    }
}
