//! CI kill–resume summary: renders the JSON-lines scenario records the
//! `kill_resume_soak` driver emits via `--out`/`$ASC_CKPT_OUT` (one line
//! per crash/resume, damage-sweep and graceful-shutdown scenario) as a
//! table — to stdout, and as GitHub-flavoured markdown appended to
//! `$GITHUB_STEP_SUMMARY` next to the economics and tier tables.
//!
//! ```sh
//! cargo run --release -p asc-bench --features fault-inject \
//!     --bin kill_resume_soak -- --out CKPT_soak.json
//! cargo run -p asc-bench --bin ckpt_summary -- CKPT_soak.json
//! ```
//!
//! The load-bearing column is *bit-identical*: every scenario must report
//! `true`, and the parser treats any `false` — or an unreadable or empty
//! artifact — as exit code 2 so a silently-missing soak fails the CI step.

use std::process::ExitCode;

/// One parsed soak-scenario emission.
#[derive(Debug, Clone)]
struct SoakRow {
    scenario: String,
    benchmark: String,
    mode: String,
    seed: Option<u64>,
    kill_at: Option<u64>,
    detail: String,
    bit_identical: bool,
}

/// Extracts the string value of `"key":"…"` from a flat JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut value = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object
/// line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the boolean value of `"key":true|false` from a flat JSON
/// object line.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn parse_rows(text: &str, path: &str) -> Result<Vec<SoakRow>, String> {
    let mut rows = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let scenario = string_field(line, "scenario")
            .ok_or_else(|| format!("{path}:{}: no \"scenario\" field in {line:?}", index + 1))?;
        let detail = match scenario.as_str() {
            "damage-sweep" => string_field(line, "case").unwrap_or_default(),
            "graceful-shutdown" => number_field(line, "flushed_saves")
                .map(|saves| format!("{saves} flushed"))
                .unwrap_or_default(),
            _ => String::new(),
        };
        rows.push(SoakRow {
            scenario,
            benchmark: string_field(line, "benchmark").unwrap_or_else(|| "-".into()),
            mode: string_field(line, "mode").unwrap_or_else(|| "-".into()),
            seed: number_field(line, "seed").map(|v| v as u64),
            kill_at: number_field(line, "kill_at").map(|v| v as u64),
            detail,
            bit_identical: bool_field(line, "bit_identical")
                .ok_or_else(|| format!("{path}:{}: no \"bit_identical\" field", index + 1))?,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no soak records found"));
    }
    Ok(rows)
}

fn optional(value: Option<u64>) -> String {
    value.map_or_else(|| "-".into(), |v| v.to_string())
}

/// The soak table as GitHub-flavoured markdown for `$GITHUB_STEP_SUMMARY`.
fn summary_markdown(rows: &[SoakRow]) -> String {
    let identical = rows.iter().filter(|r| r.bit_identical).count();
    let mut out = format!(
        "### Kill–resume soak ({identical}/{} scenarios bit-identical)\n\n\
         | scenario | benchmark | mode | seed | kill at | detail | bit-identical |\n\
         |---|---|---|---:|---:|---|---|\n",
        rows.len(),
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} |\n",
            row.scenario,
            row.benchmark,
            row.mode,
            optional(row.seed),
            optional(row.kill_at),
            if row.detail.is_empty() { "-" } else { &row.detail },
            if row.bit_identical { "yes" } else { "**NO**" },
        ));
    }
    out
}

/// Appends the markdown table to the file `$GITHUB_STEP_SUMMARY` names,
/// when running under GitHub Actions. Failures only warn: the summary is
/// cosmetic.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, markdown.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append to GITHUB_STEP_SUMMARY {path}: {error}");
    }
}

fn run(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read soak records {path}: {e}"))?;
    let rows = parse_rows(&text, path)?;
    println!(
        "{:<18} {:<10} {:<8} {:>5} {:>8} {:<14} {:>13}",
        "scenario", "benchmark", "mode", "seed", "kill-at", "detail", "bit-identical"
    );
    for row in &rows {
        println!(
            "{:<18} {:<10} {:<8} {:>5} {:>8} {:<14} {:>13}",
            row.scenario,
            row.benchmark,
            row.mode,
            optional(row.seed),
            optional(row.kill_at),
            if row.detail.is_empty() { "-" } else { &row.detail },
            if row.bit_identical { "yes" } else { "NO" },
        );
    }
    append_step_summary(&summary_markdown(&rows));
    let broken = rows.iter().filter(|r| !r.bit_identical).count();
    if broken > 0 {
        return Err(format!("{broken} scenario(s) were not bit-identical"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: ckpt_summary <CKPT_soak.json>");
        return ExitCode::from(2);
    };
    match run(path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("kill-resume summary error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"scenario\":\"kill-resume\",\"benchmark\":\"Collatz\",\
         \"mode\":\"workers\",\"seed\":3,\"kill_at\":107,\"resumed\":true,\
         \"bit_identical\":true}";
    const DAMAGE: &str =
        "{\"scenario\":\"damage-sweep\",\"case\":\"older-intact\",\"bit_identical\":true}";
    const GRACEFUL: &str =
        "{\"scenario\":\"graceful-shutdown\",\"flushed_saves\":1,\"bit_identical\":true}";

    #[test]
    fn parses_emitted_records() {
        let text = format!("{LINE}\n{DAMAGE}\n{GRACEFUL}\n");
        let rows = parse_rows(&text, "test").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].scenario, "kill-resume");
        assert_eq!(rows[0].benchmark, "Collatz");
        assert_eq!(rows[0].mode, "workers");
        assert_eq!(rows[0].seed, Some(3));
        assert_eq!(rows[0].kill_at, Some(107));
        assert!(rows[0].bit_identical);
        assert_eq!(rows[1].detail, "older-intact");
        assert_eq!(rows[2].detail, "1 flushed");
    }

    #[test]
    fn empty_or_malformed_input_is_an_error() {
        assert!(parse_rows("", "test").is_err());
        assert!(parse_rows("{\"benchmark\":\"Collatz\"}", "test").is_err());
        assert!(parse_rows("{\"scenario\":\"kill-resume\"}", "test").is_err());
    }

    #[test]
    fn a_divergent_scenario_is_flagged_in_markdown() {
        let bad = LINE.replace("\"bit_identical\":true", "\"bit_identical\":false");
        let rows = parse_rows(&format!("{LINE}\n{bad}\n"), "test").unwrap();
        assert!(!rows[1].bit_identical);
        let markdown = summary_markdown(&rows);
        assert!(markdown.contains("1/2 scenarios bit-identical"));
        assert!(markdown.contains("**NO**"));
    }
}
