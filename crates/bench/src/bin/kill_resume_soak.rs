//! Kill–resume soak driver for the CI `kill-resume-soak` job: proves that
//! a run killed dead at a random occurrence ordinal — SIGKILL-style, no
//! destructors — resumes from its newest intact checkpoint to a final
//! state **bit-identical** to the uninterrupted run.
//!
//! Requires `--features fault-inject` (the crash point is the in-process
//! abort hook, so the kill lands at a *deterministic* ordinal instead of a
//! racy external `kill -9`; `std::process::abort` raises SIGABRT, which is
//! exactly as un-catchable for user code as SIGKILL — no `Drop`, no
//! `atexit`, no flush).
//!
//! Scenarios, one JSON line each to `--out` (or `$ASC_CKPT_OUT`):
//!
//! * `kill-resume` — per seed × benchmark (mode rotated so every benchmark
//!   × {inline, workers, planner} pair is covered): run a reference
//!   in-process, crash a checkpointed child at a seeded ordinal, resume it
//!   in a fresh process, and demand the reference's exact final state and
//!   instruction total.
//! * `damage-sweep` — corrupt the newest checkpoint after the crash: the
//!   resume must fall back to the older intact file and still match;
//!   corrupt *every* file and the resume must cold-start and still match.
//! * `graceful-shutdown` — SIGTERM a child that is stalled mid-run: its
//!   signal handler requests shutdown, the run flushes a final checkpoint
//!   and exits cleanly, and the follow-up resume completes bit-identically.
//!
//! The separate `overhead` subcommand asserts the bench-gate bound: with
//! checkpointing on, the min-of-5 wall clock of the `accelerate_collatz
//! _small` configuration stays within 5% of checkpointing off.
//!
//! ```sh
//! cargo run --release -p asc-bench --features fault-inject \
//!     --bin kill_resume_soak -- --out CKPT_soak.json
//! cargo run --release -p asc-bench --features fault-inject \
//!     --bin kill_resume_soak -- overhead
//! ```

use std::process::ExitCode;

#[cfg(feature = "fault-inject")]
mod soak {
    use std::collections::HashMap;
    use std::io::Write;
    use std::os::unix::process::ExitStatusExt;
    use std::path::{Path, PathBuf};
    use std::process::{Command, ExitCode};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use asc_bench::small_collatz_config;
    use asc_core::config::AscConfig;
    use asc_core::runtime::{LascRuntime, RunReport};
    use asc_core::FaultPlan;
    use asc_learn::rng::{Rng, XorShiftRng};
    use asc_workloads::registry::{build, Benchmark, Scale};

    const MODES: [&str; 3] = ["inline", "workers", "planner"];
    const INTERVAL: u64 = 4;

    /// The determinism suite's run shape: small enough that a full matrix
    /// of subprocess scenarios stays in CI budget, large enough that every
    /// run crosses dozens of occurrence boundaries (checkpoint opportunities).
    fn mode_config(benchmark: Benchmark, mode: &str) -> AscConfig {
        let mut config = AscConfig {
            explore_instructions: if benchmark == Benchmark::Ising { 25_000 } else { 5_000 },
            evaluation_occurrences: 6,
            evaluation_training: 10,
            candidate_count: 8,
            min_superstep: 50,
            rollout_depth: 8,
            ..AscConfig::default()
        };
        match mode {
            "inline" => {}
            "workers" => config.workers = 4,
            "planner" => {
                config.workers = 4;
                config.planner.enabled = true;
            }
            other => panic!("unknown mode {other:?}"),
        }
        config
    }

    fn scale_of(benchmark: Benchmark) -> Scale {
        match benchmark {
            Benchmark::Ising => Scale::Small,
            _ => Scale::Tiny,
        }
    }

    fn parse_benchmark(name: &str) -> Result<Benchmark, String> {
        Benchmark::ALL
            .into_iter()
            .find(|b| format!("{b}") == name)
            .ok_or_else(|| format!("unknown benchmark {name:?}"))
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn reference_run(benchmark: Benchmark, mode: &str) -> RunReport {
        let workload = build(benchmark, scale_of(benchmark)).expect("workload builds");
        let report = LascRuntime::new(mode_config(benchmark, mode))
            .expect("config is valid")
            .accelerate(&workload.program)
            .expect("reference run succeeds");
        assert!(report.halted, "{benchmark}/{mode}: reference did not halt");
        assert!(workload.verify(&report.final_state), "{benchmark}/{mode}: wrong reference");
        report
    }

    fn scenario_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asc-soak-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn checkpoint_files(dir: &Path) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "asc"))
            .collect();
        files.sort();
        files
    }

    // ------------------------------------------------------------------
    // Child side: one checkpointed run, optionally crashed or stalled.
    // ------------------------------------------------------------------

    /// SIGTERM/SIGINT latch — a signal handler may only do async-signal-safe
    /// work, so it sets this flag and the bridge thread forwards it to the
    /// runtime's shutdown flag.
    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    fn install_signal_handlers() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    pub fn run_child(args: &HashMap<String, String>) -> Result<(), String> {
        let benchmark = parse_benchmark(args.get("--benchmark").ok_or("missing --benchmark")?)?;
        let mode = args.get("--mode").ok_or("missing --mode")?;
        let dir = PathBuf::from(args.get("--dir").ok_or("missing --dir")?);
        let result_path = args.get("--result").ok_or("missing --result")?;
        let kill_at: Option<u64> = args.get("--kill-at").map(|v| v.parse().unwrap());
        let graceful = args.contains_key("--graceful");

        let mut config = mode_config(benchmark, mode);
        config.checkpoint.enabled = true;
        config.checkpoint.directory = Some(dir);
        config.checkpoint.interval = INTERVAL;
        config.checkpoint.keep = 3;
        config.checkpoint.resume = true;
        if let Some(at) = kill_at {
            config.fault =
                Some(FaultPlan { seed: 1, abort_at_occurrence: Some(at), ..FaultPlan::default() });
        }
        if graceful {
            // A deterministic mid-run window for the parent's SIGTERM: the
            // run stalls at occurrence 10 until the watchdog frees it, so
            // the signal always lands while the run is in flight. Only the
            // shutdown flush may save — the interval never fires.
            config.fault =
                Some(FaultPlan { seed: 1, stall_at_occurrence: Some(10), ..FaultPlan::default() });
            config.watchdog.deadline_ms = 1_500;
            config.watchdog.poll_ms = 50;
            config.checkpoint.interval = u64::MAX;
            install_signal_handlers();
        }

        let workload = build(benchmark, scale_of(benchmark)).expect("workload builds");
        let mut runtime = LascRuntime::new(config).map_err(|e| format!("bad config: {e}"))?;
        if graceful {
            let flag = Arc::new(AtomicBool::new(false));
            runtime.set_shutdown_flag(Arc::clone(&flag));
            std::thread::spawn(move || loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    flag.store(true, Ordering::SeqCst);
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            });
        }
        let report =
            runtime.accelerate(&workload.program).map_err(|e| format!("run failed: {e}"))?;
        if report.halted {
            assert!(workload.verify(&report.final_state), "child produced a wrong result");
        }

        let stats = report.checkpoints.expect("checkpointing was on");
        let body = format!(
            "halted={}\nstate={}\ntotal={}\nsaves={}\nresumed={}\nrejected={}\n",
            report.halted,
            hex(report.final_state.as_bytes()),
            report.total_instructions,
            stats.saves,
            stats.resumed,
            stats.rejected_files,
        );
        std::fs::write(result_path, body).map_err(|e| format!("cannot write result: {e}"))?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Parent side: scenarios.
    // ------------------------------------------------------------------

    struct ChildResult {
        halted: bool,
        state: String,
        total: u64,
        saves: u64,
        resumed: bool,
        rejected: u64,
    }

    fn read_result(path: &Path) -> Result<ChildResult, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("no child result {path:?}: {e}"))?;
        let mut fields = HashMap::new();
        for line in text.lines() {
            if let Some((key, value)) = line.split_once('=') {
                fields.insert(key.to_string(), value.to_string());
            }
        }
        let get = |key: &str| {
            fields.get(key).cloned().ok_or_else(|| format!("child result missing {key}"))
        };
        Ok(ChildResult {
            halted: get("halted")? == "true",
            state: get("state")?,
            total: get("total")?.parse().map_err(|e| format!("bad total: {e}"))?,
            saves: get("saves")?.parse().map_err(|e| format!("bad saves: {e}"))?,
            resumed: get("resumed")? == "true",
            rejected: get("rejected")?.parse().map_err(|e| format!("bad rejected: {e}"))?,
        })
    }

    fn child_command(benchmark: Benchmark, mode: &str, dir: &Path, result: &Path) -> Command {
        let exe = std::env::current_exe().expect("own executable path");
        let mut command = Command::new(exe);
        command.args([
            "child",
            "--benchmark",
            &format!("{benchmark}"),
            "--mode",
            mode,
            "--dir",
            dir.to_str().expect("utf-8 temp path"),
            "--result",
            result.to_str().expect("utf-8 temp path"),
        ]);
        command
    }

    /// Crash a checkpointed child at `kill_at`, halving the ordinal until
    /// the crash lands before the run completes (the seeded ordinal can
    /// overshoot a short run). Returns the ordinal that crashed.
    fn crash_child(
        benchmark: Benchmark,
        mode: &str,
        dir: &Path,
        result: &Path,
        mut kill_at: u64,
    ) -> Result<u64, String> {
        for _ in 0..8 {
            let _ = std::fs::remove_dir_all(dir);
            let output = child_command(benchmark, mode, dir, result)
                .arg("--kill-at")
                .arg(kill_at.to_string())
                .output()
                .map_err(|e| format!("cannot spawn crash child: {e}"))?;
            if output.status.signal() == Some(6) {
                return Ok(kill_at);
            }
            if output.status.success() {
                // The run finished before the ordinal; aim earlier.
                kill_at = (kill_at / 2).max(INTERVAL + 1);
                continue;
            }
            return Err(format!(
                "crash child died wrong ({:?}): {}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        Err(format!("{benchmark}/{mode}: no ordinal crashed the run"))
    }

    fn resume_child(
        benchmark: Benchmark,
        mode: &str,
        dir: &Path,
        result: &Path,
    ) -> Result<ChildResult, String> {
        let output = child_command(benchmark, mode, dir, result)
            .output()
            .map_err(|e| format!("cannot spawn resume child: {e}"))?;
        if !output.status.success() {
            return Err(format!(
                "resume child failed ({:?}): {}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        read_result(result)
    }

    fn assert_matches(
        label: &str,
        reference: &RunReport,
        resumed: &ChildResult,
    ) -> Result<(), String> {
        if !resumed.halted {
            return Err(format!("{label}: resumed run did not halt"));
        }
        if resumed.state != hex(reference.final_state.as_bytes()) {
            return Err(format!("{label}: resumed final state diverged from the reference"));
        }
        if resumed.total != reference.total_instructions {
            return Err(format!(
                "{label}: instruction accounting diverged ({} vs {})",
                resumed.total, reference.total_instructions
            ));
        }
        Ok(())
    }

    fn kill_resume_scenario(
        benchmark: Benchmark,
        mode: &str,
        seed: u64,
        rng: &mut XorShiftRng,
    ) -> Result<String, String> {
        let label = format!("{benchmark}/{mode}/seed{seed}");
        let reference = reference_run(benchmark, mode);
        let dir = scenario_dir(&format!("kill-{benchmark}-{mode}-{seed}"));
        let result = dir.with_extension("result");

        // Past the first interval boundary (so a checkpoint exists to
        // resume from), randomly deep into the run.
        let kill_at = INTERVAL + 1 + rng.next_u64() % 120;
        let kill_at = crash_child(benchmark, mode, &dir, &result, kill_at)?;
        if checkpoint_files(&dir).is_empty() {
            return Err(format!("{label}: crashed run left no checkpoint"));
        }

        let resumed = resume_child(benchmark, mode, &dir, &result)?;
        if !resumed.resumed {
            return Err(format!("{label}: second leg started cold"));
        }
        assert_matches(&label, &reference, &resumed)?;
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&result);
        Ok(format!(
            "{{\"scenario\":\"kill-resume\",\"benchmark\":\"{benchmark}\",\"mode\":\"{mode}\",\
             \"seed\":{seed},\"kill_at\":{kill_at},\"resumed\":true,\"bit_identical\":true}}"
        ))
    }

    fn damage_scenario(rng: &mut XorShiftRng) -> Result<Vec<String>, String> {
        let (benchmark, mode) = (Benchmark::Collatz, "workers");
        let reference = reference_run(benchmark, mode);
        let dir = scenario_dir("damage");
        let result = dir.with_extension("result");
        crash_child(benchmark, mode, &dir, &result, 40)?;
        let files = checkpoint_files(&dir);
        if files.len() < 2 {
            return Err(format!("damage sweep needs ≥ 2 checkpoints, got {}", files.len()));
        }

        // Corrupt the newest file: the resume must fall back to the older
        // intact checkpoint, count the damage, and still match bit-for-bit.
        let newest = files.last().unwrap();
        let mut bytes = std::fs::read(newest).map_err(|e| format!("read {newest:?}: {e}"))?;
        let index = (rng.next_u64() as usize) % bytes.len();
        bytes[index] ^= 1 + (rng.next_u64() as u8 % 255);
        std::fs::write(newest, &bytes).map_err(|e| format!("write {newest:?}: {e}"))?;
        let fell_back = resume_child(benchmark, mode, &dir, &result)?;
        if !fell_back.resumed || fell_back.rejected == 0 {
            return Err(format!(
                "damaged newest was not detected (resumed={}, rejected={})",
                fell_back.resumed, fell_back.rejected
            ));
        }
        assert_matches("damage/older-intact", &reference, &fell_back)?;

        // Corrupt every checkpoint: the resume must cold-start — never load
        // a wrong state — and still reach the identical final state.
        for file in checkpoint_files(&dir) {
            let mut bytes = std::fs::read(&file).map_err(|e| format!("read {file:?}: {e}"))?;
            let index = (rng.next_u64() as usize) % bytes.len();
            bytes[index] ^= 1 + (rng.next_u64() as u8 % 255);
            std::fs::write(&file, &bytes).map_err(|e| format!("write {file:?}: {e}"))?;
        }
        let cold = resume_child(benchmark, mode, &dir, &result)?;
        if cold.resumed {
            return Err("a fully damaged directory still claimed a resume".into());
        }
        assert_matches("damage/cold-start", &reference, &cold)?;
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&result);
        Ok(vec![
            "{\"scenario\":\"damage-sweep\",\"case\":\"older-intact\",\"bit_identical\":true}"
                .into(),
            "{\"scenario\":\"damage-sweep\",\"case\":\"cold-start\",\"bit_identical\":true}".into(),
        ])
    }

    fn graceful_scenario() -> Result<String, String> {
        let (benchmark, mode) = (Benchmark::Collatz, "workers");
        let reference = reference_run(benchmark, mode);
        let dir = scenario_dir("graceful");
        let result = dir.with_extension("result");

        let mut child = child_command(benchmark, mode, &dir, &result)
            .arg("--graceful")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn graceful child: {e}"))?;
        // The child is parked on its injected stall by now; the SIGTERM
        // lands mid-run by construction.
        std::thread::sleep(Duration::from_millis(400));
        let term = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .map_err(|e| format!("cannot send SIGTERM: {e}"))?;
        if !term.success() {
            let _ = child.kill();
            return Err("kill -TERM failed".into());
        }
        let output =
            child.wait_with_output().map_err(|e| format!("graceful child vanished: {e}"))?;
        if !output.status.success() {
            return Err(format!(
                "graceful child did not exit cleanly ({:?}): {}",
                output.status,
                String::from_utf8_lossy(&output.stderr)
            ));
        }
        let stopped = read_result(&result)?;
        if stopped.halted {
            return Err("SIGTERM child ran to completion — the signal landed too late".into());
        }
        if stopped.saves == 0 {
            return Err("graceful shutdown flushed no checkpoint".into());
        }

        let resumed = resume_child(benchmark, mode, &dir, &result)?;
        if !resumed.resumed {
            return Err("resume after graceful shutdown started cold".into());
        }
        assert_matches("graceful", &reference, &resumed)?;
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&result);
        Ok(format!(
            "{{\"scenario\":\"graceful-shutdown\",\"flushed_saves\":{},\"bit_identical\":true}}",
            stopped.saves
        ))
    }

    fn campaign(out: Option<&str>, seeds: &[u64]) -> Result<(), String> {
        let mut lines = Vec::new();
        for (seed_index, &seed) in seeds.iter().enumerate() {
            let mut rng = XorShiftRng::new(0x50a4_0000 ^ seed.wrapping_mul(0x9e37));
            for (bench_index, benchmark) in Benchmark::ALL.into_iter().enumerate() {
                // Rotate the mode with the seed so three seeds cover every
                // benchmark × {inline, workers, planner} pair exactly once.
                let mode = MODES[(seed_index + bench_index) % MODES.len()];
                let line = kill_resume_scenario(benchmark, mode, seed, &mut rng)?;
                println!("{line}");
                lines.push(line);
            }
        }
        let mut rng = XorShiftRng::new(0xda3a_6e00 ^ seeds.first().copied().unwrap_or(1));
        for line in damage_scenario(&mut rng)? {
            println!("{line}");
            lines.push(line);
        }
        let line = graceful_scenario()?;
        println!("{line}");
        lines.push(line);

        if let Some(path) = out {
            let mut file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            for line in &lines {
                writeln!(file, "{line}").map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        Ok(())
    }

    /// The bench-gate bound: checkpointing on (default interval) must stay
    /// within `tolerance` of checkpointing off on the `accelerate_collatz_
    /// small` configuration's min-of-5 wall clock. Runs interleave so slow
    /// drift (thermal, noisy neighbours) cancels out of the comparison.
    fn overhead(tolerance: f64) -> Result<(), String> {
        let workload = build(Benchmark::Collatz, Scale::Small).expect("workload builds");
        let off_config = small_collatz_config(0, false);
        let mut on_config = off_config.clone();
        on_config.checkpoint.enabled = true;
        on_config.checkpoint.directory = Some(scenario_dir("overhead"));

        let time = |config: &AscConfig| -> Duration {
            let runtime = LascRuntime::new(config.clone()).expect("config is valid");
            let started = Instant::now();
            let report = runtime.accelerate(&workload.program).expect("run succeeds");
            assert!(report.halted && workload.verify(&report.final_state));
            started.elapsed()
        };
        let (mut off_min, mut on_min) = (Duration::MAX, Duration::MAX);
        for _ in 0..5 {
            off_min = off_min.min(time(&off_config));
            on_min = on_min.min(time(&on_config));
        }
        if let Some(dir) = &on_config.checkpoint.directory {
            let _ = std::fs::remove_dir_all(dir);
        }

        let ratio = on_min.as_secs_f64() / off_min.as_secs_f64();
        println!(
            "{{\"scenario\":\"checkpoint-overhead\",\"off_min_ns\":{},\"on_min_ns\":{},\
             \"ratio\":{ratio:.4},\"tolerance\":{tolerance}}}",
            off_min.as_nanos(),
            on_min.as_nanos(),
        );
        if ratio > 1.0 + tolerance {
            return Err(format!(
                "checkpointing costs {:.1}% on accelerate_collatz_small minima (bound {:.0}%)",
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
        Ok(())
    }

    pub fn main() -> ExitCode {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let outcome = match args.first().map(String::as_str) {
            Some("child") => {
                let mut map = HashMap::new();
                let mut rest = args[1..].iter();
                while let Some(key) = rest.next() {
                    if key == "--graceful" {
                        map.insert(key.clone(), String::new());
                    } else {
                        map.insert(key.clone(), rest.next().cloned().unwrap_or_default());
                    }
                }
                run_child(&map)
            }
            Some("overhead") => {
                let tolerance = args
                    .iter()
                    .position(|a| a == "--tolerance")
                    .and_then(|i| args.get(i + 1))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0.05);
                overhead(tolerance)
            }
            _ => {
                let out = args
                    .iter()
                    .position(|a| a == "--out")
                    .and_then(|i| args.get(i + 1).cloned())
                    .or_else(|| std::env::var("ASC_CKPT_OUT").ok());
                let seeds: Vec<u64> = std::env::var("ASC_SOAK_SEEDS")
                    .unwrap_or_else(|_| "1,2,3".into())
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                campaign(out.as_deref(), &seeds)
            }
        };
        match outcome {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("kill-resume soak error: {message}");
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(feature = "fault-inject")]
fn main() -> ExitCode {
    soak::main()
}

#[cfg(not(feature = "fault-inject"))]
fn main() -> ExitCode {
    eprintln!(
        "kill_resume_soak needs the deterministic crash hook: \
         rebuild with --features fault-inject"
    );
    ExitCode::from(2)
}
