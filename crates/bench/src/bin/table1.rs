//! Reproduces Table 1: recognizer statistics for each benchmark.

use asc_bench::{measure, row, scale_from_args, sci};
use asc_workloads::registry::{build, Benchmark};

fn main() {
    let scale = scale_from_args();
    println!("Table 1: recognizer statistics (scale {scale:?})\n");
    let reports: Vec<_> = Benchmark::ALL.iter().map(|&b| (b, measure(b, scale))).collect();

    let names: Vec<String> = reports.iter().map(|(b, _)| b.name().to_string()).collect();
    println!("{}", row("", &names));
    let cell = |f: &dyn Fn(&asc_core::runtime::RunReport, &str) -> String| -> Vec<String> {
        reports.iter().map(|(_, (r, d))| f(r, d)).collect()
    };
    println!("{}", row("Total time (instr)", &cell(&|r, _| sci(r.total_instructions as f64))));
    println!(
        "{}",
        row("Converge time (instr)", &cell(&|r, _| sci(r.converge_instructions as f64)))
    );
    println!("{}", row("Average jump (instr)", &cell(&|r, _| sci(r.mean_superstep()))));
    println!("{}", row("State vector size (bits)", &cell(&|r, _| sci(r.state_bits as f64))));
    println!(
        "{}",
        row("Cache query size (bits)", &cell(&|r, _| format!("{:.0}", r.mean_query_bits())))
    );
    let source_lines: Vec<String> = reports
        .iter()
        .map(|(b, _)| {
            build(*b, scale)
                .map(|w| w.program.source_lines().to_string())
                .unwrap_or_else(|_| "?".to_string())
        })
        .collect();
    println!("{}", row("Lines of source", &source_lines));
    println!("{}", row("Workload", &cell(&|_, d| d.to_string())));
    println!("{}", row("Unique IP values", &cell(&|r, _| r.unique_ips.to_string())));
    println!("{}", row("Excited bits", &cell(&|r, _| r.excited_bits.to_string())));
}
