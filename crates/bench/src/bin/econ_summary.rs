//! CI dispatch-economics summary: renders the JSON-lines `EconomicsStats`
//! records the determinism suite emits via `ASC_ECON_OUT` (one line per
//! benchmark × execution mode) as a table — to stdout, and as
//! GitHub-flavoured markdown appended to `$GITHUB_STEP_SUMMARY` next to the
//! bench-delta table.
//!
//! ```sh
//! ASC_ECON_OUT=ECON_stats.json cargo test -q --test determinism economics
//! cargo run -p asc-bench --bin econ_summary -- ECON_stats.json
//! ```
//!
//! The interesting column is *saved*: the estimated instruction-equivalents
//! of futile speculation the value model refused to execute
//! (`Σ overhead × superstep` over suppressed candidates). A healthy gated
//! run shows large savings on the chaotic workload (logistic map) and
//! near-zero suppression everywhere else. Exit code 2 on unreadable or
//! empty input so a silently-missing artifact fails the CI step; otherwise
//! the summary is informational and always exits 0.

use std::process::ExitCode;

/// One parsed `EconomicsStats` emission.
#[derive(Debug, Clone)]
struct EconRow {
    benchmark: String,
    mode: String,
    dispatched: u64,
    suppressed: u64,
    probes: u64,
    lookups: u64,
    hits: u64,
    realized_hit_rate: f64,
    suppressed_cost: f64,
    last_horizon: u64,
}

/// Extracts the string value of `"key":"…"` from a flat JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let mut value = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object
/// line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_rows(text: &str, path: &str) -> Result<Vec<EconRow>, String> {
    let mut rows = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let field = |key: &str| {
            number_field(line, key)
                .ok_or_else(|| format!("{path}:{}: no \"{key}\" field in {line:?}", index + 1))
        };
        rows.push(EconRow {
            benchmark: string_field(line, "benchmark")
                .ok_or_else(|| format!("{path}:{}: no \"benchmark\" field", index + 1))?,
            mode: string_field(line, "mode")
                .ok_or_else(|| format!("{path}:{}: no \"mode\" field", index + 1))?,
            dispatched: field("dispatched")? as u64,
            suppressed: field("suppressed")? as u64,
            probes: field("probes")? as u64,
            lookups: field("lookups")? as u64,
            hits: field("hits")? as u64,
            realized_hit_rate: field("realized_hit_rate")?,
            suppressed_cost: field("suppressed_cost")?,
            last_horizon: field("last_horizon")? as u64,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no economics records found"));
    }
    Ok(rows)
}

/// Instruction-equivalents with a magnitude-scaled unit.
fn format_cost(cost: f64) -> String {
    if cost >= 1e9 {
        format!("{:.2}G", cost / 1e9)
    } else if cost >= 1e6 {
        format!("{:.1}M", cost / 1e6)
    } else if cost >= 1e3 {
        format!("{:.1}k", cost / 1e3)
    } else {
        format!("{cost:.0}")
    }
}

/// The dispatch-economics table as GitHub-flavoured markdown for
/// `$GITHUB_STEP_SUMMARY`.
fn summary_markdown(rows: &[EconRow]) -> String {
    let saved: f64 = rows.iter().map(|r| r.suppressed_cost).sum();
    let mut out = format!(
        "### Dispatch economics ({} saved instruction-equivalents across {} runs)\n\n\
         | benchmark | mode | dispatched | suppressed | probes | hits/lookups | realized rate | saved | horizon |\n\
         |---|---|---:|---:|---:|---:|---:|---:|---:|\n",
        format_cost(saved),
        rows.len(),
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {}/{} | {:.1}% | {} | {} |\n",
            row.benchmark,
            row.mode,
            row.dispatched,
            row.suppressed,
            row.probes,
            row.hits,
            row.lookups,
            row.realized_hit_rate * 100.0,
            format_cost(row.suppressed_cost),
            row.last_horizon,
        ));
    }
    out
}

/// Appends the markdown table to the file `$GITHUB_STEP_SUMMARY` names,
/// when running under GitHub Actions. Failures only warn: the summary is
/// cosmetic.
fn append_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, markdown.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append to GITHUB_STEP_SUMMARY {path}: {error}");
    }
}

fn run(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read econ stats {path}: {e}"))?;
    let rows = parse_rows(&text, path)?;
    println!(
        "{:<10} {:<8} {:>10} {:>10} {:>7} {:>14} {:>9} {:>8} {:>8}",
        "benchmark",
        "mode",
        "dispatched",
        "suppressed",
        "probes",
        "hits/lookups",
        "rate",
        "saved",
        "horizon"
    );
    for row in &rows {
        println!(
            "{:<10} {:<8} {:>10} {:>10} {:>7} {:>14} {:>8.1}% {:>8} {:>8}",
            row.benchmark,
            row.mode,
            row.dispatched,
            row.suppressed,
            row.probes,
            format!("{}/{}", row.hits, row.lookups),
            row.realized_hit_rate * 100.0,
            format_cost(row.suppressed_cost),
            row.last_horizon,
        );
    }
    append_step_summary(&summary_markdown(&rows));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: econ_summary <ECON_stats.json>");
        return ExitCode::from(2);
    };
    match run(path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("econ summary error: {message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"benchmark\":\"Logistic\",\"mode\":\"inline\",\"considered\":1599,\
         \"dispatched\":735,\"suppressed\":864,\"probes\":13,\"lookups\":1153,\"hits\":0,\
         \"realized_hit_rate\":0.000002,\"expected_value\":12474.2,\
         \"suppressed_cost\":67231.7,\"last_horizon\":1}";

    #[test]
    fn parses_emitted_records() {
        let rows = parse_rows(LINE, "test").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].benchmark, "Logistic");
        assert_eq!(rows[0].mode, "inline");
        assert_eq!(rows[0].dispatched, 735);
        assert_eq!(rows[0].suppressed, 864);
        assert_eq!(rows[0].probes, 13);
        assert!((rows[0].suppressed_cost - 67231.7).abs() < 1e-6);
        assert_eq!(rows[0].last_horizon, 1);
    }

    #[test]
    fn empty_or_malformed_input_is_an_error() {
        assert!(parse_rows("", "test").is_err());
        assert!(parse_rows("{\"mode\":\"inline\"}", "test").is_err());
    }

    #[test]
    fn markdown_totals_the_savings() {
        let rows = parse_rows(&format!("{LINE}\n{LINE}\n"), "test").unwrap();
        let markdown = summary_markdown(&rows);
        assert!(markdown.contains("Dispatch economics (134.5k saved"));
        assert!(markdown.contains("| Logistic | inline | 735 | 864 | 13 | 0/1153 |"));
    }

    #[test]
    fn costs_scale_units() {
        assert_eq!(format_cost(950.0), "950");
        assert_eq!(format_cost(67231.7), "67.2k");
        assert_eq!(format_cost(3.2e7), "32.0M");
        assert_eq!(format_cost(2.5e9), "2.50G");
    }
}
