//! Predictor-bank micro-benchmarks: µs/occurrence for training (`observe` /
//! `observe_incremental`) and maximum-likelihood rollout, at the two
//! excitation widths the paper's benchmarks actually produce (~128 and ~224
//! tracked bits, §4.4). These are the numbers behind the ROADMAP "cheapen
//! prediction" item: the planner's sustainable occurrence-ingest rate is
//! bounded by the per-occurrence training cost measured here.
//!
//! The occurrence trace is synthetic but shaped like the real thing: a fixed
//! set of 32-bit words mutates every occurrence with the four patterns the
//! predictor complement targets — loop counters (linear), bump-allocated
//! pointers (linear with stride), chaotic values (nothing learns these;
//! they exercise the mistake-mask path) and toggling flag words (logistic).
//!
//! Run with `CRITERION_JSON=BENCH_predictor.json cargo bench -p asc-bench
//! --bench predictor` to produce the report the CI bench gate compares
//! against `bench/baseline.json`.

use asc_core::config::AscConfig;
use asc_core::predictor_bank::PredictorBank;
use asc_tvm::machine::Machine;
use asc_tvm::state::StateVector;
use asc_workloads::registry::{build, Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Occurrences per recorded trace (and per timed batch for the observe
/// benches, so ns/iteration ÷ `TRACE_LEN` = ns/occurrence).
const TRACE_LEN: usize = 64;

/// A deterministic word-mixing hash (splitmix-style) for the chaotic words.
fn mix(seed: u64) -> u32 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Builds a trace of occurrence states in which exactly `words` aligned
/// 32-bit memory words change between consecutive occurrences, so the
/// excitation map freezes to `32 * words` tracked bits.
fn trace(words: usize, occurrences: usize) -> Vec<StateVector> {
    let mut states = Vec::with_capacity(occurrences);
    let base = StateVector::new(8 * 1024).expect("bench state allocates");
    for i in 0..occurrences {
        let mut state = base.clone();
        for w in 0..words {
            let value = match w % 4 {
                0 => (i as u32).wrapping_mul(w as u32 + 3),
                1 => 0x1_0000u32.wrapping_add((i * 132 * (w + 1)) as u32),
                2 => mix((i as u64) << 32 | w as u64),
                _ => {
                    if i % 2 == 0 {
                        0x0F0F_0F0F
                    } else {
                        0xF0F0_F0F0
                    }
                }
            };
            state.store_word((w * 4) as u32, value).expect("bench store in range");
        }
        states.push(state);
    }
    states
}

/// Warms a bank until its excitation map is frozen and the ensemble has
/// trained over the whole trace once.
fn warmed_bank(states: &[StateVector], config: &AscConfig) -> PredictorBank {
    let mut bank = PredictorBank::new(0, config);
    for state in states {
        bank.observe(state);
    }
    assert!(bank.is_ready(), "bench bank must be ready after the trace");
    bank
}

fn bench_observe(c: &mut Criterion) {
    let config = AscConfig::for_tests();
    for words in [4usize, 7] {
        let bits = words * 32;
        let states = trace(words, TRACE_LEN);
        let mut full = warmed_bank(&states, &config);
        assert_eq!(full.excited_bits(), bits, "trace must excite exactly {bits} bits");
        let mut group = c.benchmark_group("predictor_observe");
        // One iteration = TRACE_LEN occurrences through the *full* path
        // (excitation diff + drift scan + ensemble training).
        group.bench_function(format!("full_{bits}"), |b| {
            b.iter(|| {
                full.break_stream();
                for state in &states {
                    full.observe(black_box(state));
                }
                full.observations()
            })
        });
        // The planner's hot path: ensemble training only.
        let mut incremental = warmed_bank(&states, &config);
        group.bench_function(format!("incremental_{bits}"), |b| {
            b.iter(|| {
                incremental.break_stream();
                for state in &states {
                    incremental.observe_incremental(black_box(state));
                }
                incremental.observations()
            })
        });
        group.finish();
    }
}

fn bench_observe_logistic_map(c: &mut Criterion) {
    // Real occurrence states from the logistic-map kernel's outer-loop head:
    // the chaotic map value and checksum words give a *high-entropy*
    // excitation pattern where every predictor is wrong on most bits — the
    // worst case for the mistake-mask training path (maximal XOR masks, every
    // multiplicative update fires).
    let workload = build(Benchmark::LogisticMap, Scale::Tiny).unwrap();
    let rip = workload.program.symbol("outer").expect("kernel has an outer loop head");
    let mut machine = Machine::load(&workload.program).unwrap();
    let mut states = Vec::with_capacity(TRACE_LEN);
    while states.len() < TRACE_LEN {
        machine.run_until_ip(rip, 1_000_000).unwrap();
        assert!(!machine.is_halted(), "trace ended before {TRACE_LEN} occurrences");
        states.push(machine.state().clone());
    }
    let config = AscConfig::for_tests();
    let mut bank = warmed_bank(&states, &config);
    c.bench_function("predictor_observe/logistic_map_chaotic", |b| {
        b.iter(|| {
            bank.break_stream();
            for state in &states {
                bank.observe_incremental(black_box(state));
            }
            bank.observations()
        })
    });
}

fn bench_rollout(c: &mut Criterion) {
    let config = AscConfig::for_tests();
    let mut group = c.benchmark_group("predictor_rollout");
    for words in [4usize, 7] {
        let bits = words * 32;
        let states = trace(words, TRACE_LEN);
        let bank = warmed_bank(&states, &config);
        let anchor = states.last().expect("trace is non-empty").clone();
        // One iteration = an 8-deep maximum-likelihood rollout, the planner's
        // per-replan cost.
        group.bench_function(format!("depth8_{bits}"), |b| {
            b.iter(|| bank.rollout(black_box(&anchor), 8).len())
        });
    }
    group.finish();
}

criterion_group!(
    name = predictor;
    config = Criterion::default().sample_size(10);
    targets = bench_observe, bench_observe_logistic_map, bench_rollout
);
criterion_main!(predictor);
