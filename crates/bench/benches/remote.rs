//! Remote-tier benchmarks: the costs the distributed cache adds at a run's
//! edges and on its miss path.
//!
//! * **snapshot_save / snapshot_load** — the warm-start tier's edge costs
//!   over a ~2k-entry cache: one full codec encode (checksummed frames) to
//!   a temp file, and the decode+verify+insert replay back out of it.
//! * **remote_lookup_hit / remote_lookup_miss** — one GET round trip
//!   against a loopback `CachePeer`: frame encode, socket write, the
//!   peer's hash-indexed probe, reply decode and checksum verification.
//!   This is the latency a local cache miss pays before falling back to
//!   executing the superstep, so it is the number the deadline config must
//!   be read against.
//!
//! All four feed `bench/baseline.json` through the blocking CI bench gate.

use asc_core::cache::{CacheEntry, TrajectoryCache};
use asc_core::remote::{codec, snapshot, CachePeer};
use asc_tvm::delta::{PositionSchema, SparseBytes};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Write;

const RIP: u32 = 32;

fn entry(deps: Vec<(u32, u8)>, instructions: u64) -> CacheEntry {
    CacheEntry::new(
        RIP,
        SparseBytes::from_pairs(deps),
        SparseBytes::from_pairs(vec![(200, 1)]),
        instructions,
    )
}

/// ~2k entries over one shared shape — the hit-heavy steady state whose
/// snapshot a warm start replays.
fn populated_cache() -> TrajectoryCache {
    let cache = TrajectoryCache::with_layout(1 << 14, 16, 0);
    for i in 0..2000u32 {
        let value = (i % 251) as u8;
        let tag = (i / 251) as u8;
        cache.insert(entry(vec![(100, value), (101, tag), (4, 0)], 500));
    }
    cache
}

fn bench_snapshot(c: &mut Criterion) {
    let cache = populated_cache();
    let path = std::env::temp_dir().join(format!("asc-bench-snapshot-{}", std::process::id()));

    c.bench_function("snapshot_save_2k", |b| {
        b.iter(|| snapshot::save(black_box(&cache), black_box(&path)).unwrap())
    });

    snapshot::save(&cache, &path).unwrap();
    c.bench_function("snapshot_load_2k", |b| {
        b.iter(|| {
            let fresh = TrajectoryCache::with_layout(1 << 14, 16, 0);
            let load = snapshot::load(black_box(&fresh), black_box(&path)).unwrap();
            assert!(load.complete && load.rejected == 0);
            load.loaded
        })
    });
    std::fs::remove_file(&path).ok();
}

/// One blocking GET round trip over an established loopback connection —
/// the client half hand-rolled so the bench isolates wire cost from the
/// runtime's backoff bookkeeping.
fn get_round_trip(stream: &mut std::net::TcpStream, pairs: &[(u64, u64)]) -> Option<CacheEntry> {
    let request = codec::encode_frame(codec::FrameKind::Get, &codec::encode_get(RIP, pairs));
    stream.write_all(&request).unwrap();
    let reply = codec::read_frame(stream).unwrap().expect("peer reply");
    match reply.kind {
        codec::FrameKind::GetHit => codec::decode_entry(&reply.payload),
        codec::FrameKind::GetMiss => None,
        other => panic!("unexpected reply {other:?}"),
    }
}

fn bench_remote_lookup(c: &mut Criterion) {
    let peer = CachePeer::bind("127.0.0.1:0", 1 << 14).unwrap();
    let mut feed = std::net::TcpStream::connect(peer.local_addr()).unwrap();
    feed.set_nodelay(true).unwrap();
    let cache = populated_cache();
    cache.for_each_entry(|e| {
        let framed = codec::encode_frame(codec::FrameKind::Put, &codec::encode_entry(e));
        feed.write_all(&framed).unwrap();
    });
    // Drain a STATS reply as the flush barrier before timing anything.
    feed.write_all(&codec::encode_frame(codec::FrameKind::StatsRequest, &[])).unwrap();
    codec::read_frame(&mut feed).unwrap().expect("stats reply");
    assert_eq!(peer.len(), cache.len());

    // The query pairs a real client would derive from its schema catalog.
    let hit_entry = entry(vec![(100, 0), (101, 0), (4, 0)], 500);
    let schema = PositionSchema::of(&hit_entry.start);
    let mut hit_state = asc_tvm::state::StateVector::new(4096).unwrap();
    for (position, value) in hit_entry.start.iter() {
        hit_state.set_byte(position as usize, value);
    }
    let hit_pairs =
        vec![(schema.hash(), schema.hash_values_of(&hit_state).expect("schema covers state"))];
    let miss_pairs = vec![(schema.hash() ^ 0xdead_beef, 1u64)];

    let mut stream = std::net::TcpStream::connect(peer.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    c.bench_function("remote_lookup_hit", |b| {
        b.iter(|| {
            let entry = get_round_trip(&mut stream, black_box(&hit_pairs));
            assert!(entry.is_some(), "hit query must hit");
            entry.unwrap().instructions
        })
    });
    c.bench_function("remote_lookup_miss", |b| {
        b.iter(|| {
            assert!(get_round_trip(&mut stream, black_box(&miss_pairs)).is_none());
        })
    });
    drop(stream);
    drop(feed);
    peer.shutdown();
}

criterion_group!(
    name = remote;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot, bench_remote_lookup
);
criterion_main!(remote);
